"""The declared metric-name registry (checked by ``tmo-lint --flow``).

Metric names feed :func:`repro.sim.metrics.metrics_digest`, the bench
regression gate and the chaos verdicts, so they are interface, not
incidental strings. Every ``/``-namespaced name recorded anywhere in
the tree must be declared here; the TMO016 lint rule statically
collects the literals flowing into ``MetricsRecorder.record`` /
``Series.record`` (including through wrappers and bound-method
aliases) and fails the flow pass on drift — unregistered names,
near-miss typos, and names recorded but never read.

Adding a metric is a three-line workflow (see LINTING.md):

1. declare the name below — ``METRIC_NAMES`` for a host-wide series,
   ``PER_CGROUP_METRICS`` for a ``<cgroup>/<suffix>`` family,
   ``DYNAMIC_NAMESPACES`` when the tail is runtime data;
2. record it at the producing site;
3. read it from a test or analysis — or, when it is genuinely
   operator-facing only, list it in ``UNREAD_OK`` with a reason.

Names without a ``/`` are ad-hoc local recorders (scratch series in
tests and analyses) and are out of the registry's scope.

The fleetd query surface (:mod:`repro.fleetd.rollup`) records
**nothing**: it reduces already-declared series (the PSI/refault/
offload families below) through the recorder's non-registering read
path, so no rollup-side names belong here — the registry stays the
record-side contract.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: Host-wide series: full name -> one-line description.
METRIC_NAMES: Dict[str, str] = {
    "host/free_bytes": "free RAM on the host",
    "host/used_bytes": "RAM in use across all cgroups",
    "host/zswap_pool_bytes": "compressed pool size (zswap backends)",
    "fs/read_rate": "filesystem reads per second",
    "fs/read_latency_p90": "p90 filesystem read latency (seconds)",
    "swap/out_rate_mb_s": "swap-out write rate (MB/s)",
    "swap/stored_bytes": "bytes resident in the swap backend",
    "senpai/stale": "senpai skipped a period on stale telemetry",
    "senpai/errors": "cumulative senpai control-file error skips",
    "senpai/degraded": "breaker state (0 closed, 0.5 half-open, 1 open)",
    "faults/active": "number of fault-plan events currently active",
    "supervisor/crashes": "cumulative supervised-controller crashes",
    "supervisor/hang_kills": "cumulative watchdog kills of hung controllers",
    "supervisor/restarts": "cumulative supervised-controller restarts",
    "supervisor/alive": "whether the supervised controller is running",
    "supervisor/quarantined":
        "1.0 at the edge where the restart budget is exhausted and "
        "the controller is abandoned",
    "supervisor/unquarantined":
        "cumulative manual un-quarantine operations, recorded at each "
        "re-admission edge",
    "fleetd/generation":
        "policy generation the control plane applied to this host "
        "(recorded at rollout apply/rollback/recovery edges)",
}

#: Per-cgroup families recorded as ``<cgroup>/<suffix>``: suffix ->
#: one-line description.
PER_CGROUP_METRICS: Dict[str, str] = {
    "resident_bytes": "resident set (anon + file) of the cgroup",
    "anon_bytes": "anonymous memory charged to the cgroup",
    "file_bytes": "file cache charged to the cgroup",
    "swap_bytes": "swapped-out bytes charged to the cgroup",
    "zswap_bytes": "compressed bytes charged to the cgroup",
    "promotion_rate": "pages promoted back from swap per second",
    "refaults": "file refaults per second",
    "rps": "workload work units completed per second",
    "oom": "1.0 on a tick where the cgroup OOMed",
    "psi_mem_some_avg10": "memory some avg10 at tick time",
    "psi_io_some_avg10": "io some avg10 at tick time",
    "psi_mem_some_total": "cumulative memory some stall (seconds)",
    "psi_io_some_total": "cumulative io some stall (seconds)",
    "senpai_reclaim": "bytes senpai reclaimed from the cgroup",
    "senpai_pressure": "pressure senpai computed for the cgroup",
    "senpai_ratio": "auto-tuned reclaim ratio for the cgroup",
    "gswap_reclaim": "bytes gswap reclaimed from the cgroup",
    "memory_max": "memory.max limit applied by the limits controller",
}

#: Namespaces whose tails are runtime data (``faults/<event kind>``):
#: namespace -> one-line description.
DYNAMIC_NAMESPACES: Dict[str, str] = {
    "faults": "per-kind fault-injection activity, keyed by event kind",
}

#: Declared names that are recorded for operators (CSV exports,
#: dashboards) without a reader in the test/analysis tree.
UNREAD_OK: FrozenSet[str] = frozenset({
    # Host dashboards: exported to CSV for figure plots, asserted
    # only indirectly through the metrics digest.
    "host/used_bytes",
    "host/zswap_pool_bytes",
    "fs/read_rate",
    "swap/stored_bytes",
    # Per-cgroup families sampled by exports, not read individually.
    "anon_bytes",
    "zswap_bytes",
    "refaults",
    "psi_io_some_avg10",
    "psi_mem_some_total",
    "psi_io_some_total",
    "gswap_reclaim",
})
