"""One simulated server.

A :class:`Host` assembles the substrate — memory manager, PSI, offload
backends, CPU model — hosts workload containers, and runs controllers
(Senpai, g-swap, ...) against them in a deterministic tick loop.

Per tick:

1. every workload runs one quantum, resolving faults through the MM and
   reporting stall time split by pressure kind;
2. the scheduler model apportions CPU and lays each thread's run/stall
   segments onto the PSI timeline as exact state transitions;
3. devices fold their utilisation windows, reclaim-balance rate EMAs
   update, controllers poll, metrics record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from repro.backends.filesystem import FilesystemBackend
from repro.backends.nvm import make_cxl, make_nvm
from repro.backends.ssd import SsdSwapBackend, make_ssd_device
from repro.backends.tiered import TieredBackend
from repro.backends.zswap import ZswapBackend
from repro.kernel.controlfs import ControlFs
from repro.kernel.mm import MemoryManager
from repro.kernel.reclaim import (
    LegacyReclaimPolicy,
    ReclaimPolicy,
    TmoReclaimPolicy,
)
from repro.psi.tracker import PsiSystem, PsiTask
from repro.psi.types import Resource, TaskFlags
from repro.sim.clock import Clock
from repro.sim.invariants import InvariantChecker, checking_enabled
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import derive_rng
from repro.workloads.apps import AppProfile
from repro.workloads.base import TickResult, Workload

_GB = 1 << 30
_MB = 1 << 20


class Controller(Protocol):
    """Anything that observes the host and drives offloading."""

    def poll(self, host: "Host", now: float) -> None:
        """Called once per tick; the controller keeps its own schedule."""
        ...


class UnknownWorkloadError(KeyError):
    """An operation named a workload the host does not currently run.

    Subclasses :class:`KeyError` so callers that treated the old
    dict-lookup failure as a KeyError keep working.
    """


@dataclass
class HostConfig:
    """Hardware and substrate configuration of one server.

    Defaults model the paper's experimental hosts: production Skylake
    with 64 GB of DRAM (Section 4.2), one NVMe SSD shared by the
    filesystem and swap.

    Attributes:
        ram_gb: physical DRAM.
        ncpu: logical CPUs.
        page_size_bytes: bytes per simulated page (granularity knob).
        seed: master seed; everything stochastic derives from it.
        backend: ``"ssd"``, ``"zswap"`` or ``None`` (file-only mode).
        ssd_model: catalog letter for the host's SSD (A..G).
        swap_gb: swap partition size when backend is ``"ssd"``.
        zswap_algorithm / zswap_allocator: pool configuration.
        zswap_max_frac: cap on the pool as a fraction of RAM.
        reclaim_policy: ``"tmo"`` or ``"legacy"`` balance algorithm.
        tick_s: simulation quantum.
        check_invariants: run :mod:`repro.sim.invariants` after every
            tick. ``None`` (the default) defers to the
            ``TMO_CHECK_INVARIANTS`` environment variable.
    """

    ram_gb: float = 64.0
    ncpu: int = 36
    page_size_bytes: int = 4 * _MB
    seed: int = 1234
    backend: Optional[str] = "zswap"
    ssd_model: str = "C"
    swap_gb: float = 32.0
    zswap_algorithm: str = "zstd"
    zswap_allocator: str = "zsmalloc"
    zswap_max_frac: float = 0.25
    reclaim_policy: str = "tmo"
    tick_s: float = 1.0
    check_invariants: Optional[bool] = None

    @property
    def ram_bytes(self) -> int:
        return int(self.ram_gb * _GB)


@dataclass
class HostedWorkload:
    """A workload container plus its PSI plumbing."""

    workload: Workload
    cgroup_name: str
    psi_tasks: List[PsiTask]
    last_tick: Optional[TickResult] = None


#: Segment kinds in the per-thread tick timeline, mapped to PSI flags.
_SEGMENT_FLAGS: Tuple[TaskFlags, ...] = (
    TaskFlags.RUNNING,
    TaskFlags.MEMSTALL,
    TaskFlags.MEMSTALL | TaskFlags.IOSTALL,
    TaskFlags.IOSTALL,
    TaskFlags.RUNNABLE,
    TaskFlags.NONE,
)


class Host:
    """A simulated server running containers under optional controllers."""

    def __init__(self, config: HostConfig = HostConfig()) -> None:
        self.config = config
        self.clock = Clock()
        self.psi = PsiSystem(ncpu=config.ncpu)
        self.metrics = MetricsRecorder()
        self._controllers: List[Controller] = []
        self._hosted: Dict[str, HostedWorkload] = {}
        self._tick_index = 0
        self._prev_device_stats: Dict[str, Tuple[int, int, int]] = {}
        # Scratch buffers reused by _feed_psi every tick, so the hot
        # path allocates no per-tick lists.
        self._psi_events: List[  # tmo-lint: transient -- per-tick scratch
            Tuple[float, int, PsiTask, TaskFlags]
        ] = []
        self._psi_durations: List[float] = [0.0] * len(_SEGMENT_FLAGS)
        # Per-workload metric names, interned once instead of rebuilding
        # ~13 f-strings per workload every tick.
        self._metric_names: Dict[  # tmo-lint: transient -- interned names
            str, Tuple[str, ...]
        ] = {}

        # --- devices: the filesystem SSD is always present; when the
        # backend is SSD swap, swap shares the same physical device.
        fs_device = make_ssd_device(
            config.ssd_model, derive_rng(config.seed, "device:fs")
        )
        self.fs = FilesystemBackend(
            config.ssd_model, derive_rng(config.seed, "backend:fs"),
            device=fs_device,
        )
        if config.backend == "ssd":
            swap_backend = SsdSwapBackend(
                config.ssd_model,
                derive_rng(config.seed, "backend:swap"),
                capacity_bytes=int(config.swap_gb * _GB),
                device=fs_device,  # shared physical SSD (Figure 6 layout)
            )
        elif config.backend == "zswap":
            swap_backend = ZswapBackend(
                derive_rng(config.seed, "backend:zswap"),
                algorithm=config.zswap_algorithm,
                allocator=config.zswap_allocator,
                max_pool_bytes=int(config.zswap_max_frac * config.ram_bytes),
            )
        elif config.backend == "tiered":
            # Section 5.2's hierarchy: zswap over SSD swap.
            swap_backend = TieredBackend(
                zswap=ZswapBackend(
                    derive_rng(config.seed, "backend:zswap"),
                    algorithm=config.zswap_algorithm,
                    allocator=config.zswap_allocator,
                    max_pool_bytes=int(
                        config.zswap_max_frac * config.ram_bytes
                    ),
                ),
                ssd=SsdSwapBackend(
                    config.ssd_model,
                    derive_rng(config.seed, "backend:swap"),
                    capacity_bytes=int(config.swap_gb * _GB),
                    device=fs_device,
                ),
            )
        elif config.backend == "nvm":
            swap_backend = make_nvm(
                derive_rng(config.seed, "backend:nvm"),
                capacity_bytes=int(config.swap_gb * _GB),
            )
        elif config.backend == "cxl":
            swap_backend = make_cxl(
                derive_rng(config.seed, "backend:cxl"),
                capacity_bytes=int(config.swap_gb * _GB),
            )
        elif config.backend is None:
            swap_backend = None
        else:
            raise ValueError(
                f"unknown backend {config.backend!r}; "
                "use 'ssd', 'zswap', 'tiered', 'nvm', 'cxl' or None"
            )
        self.swap_backend = swap_backend

        policy = self._make_policy(config.reclaim_policy)
        self.mm = MemoryManager(
            ram_bytes=config.ram_bytes,
            page_size_bytes=config.page_size_bytes,
            fs=self.fs,
            swap_backend=swap_backend,
            policy=policy,
        )
        #: The cgroupfs-style control surface (for file-based daemons).
        self.controlfs = ControlFs(self.mm, self.psi)
        #: Debug-mode state cross-checker; None unless enabled via
        #: config or TMO_CHECK_INVARIANTS.
        self.invariants: Optional[InvariantChecker] = (
            InvariantChecker()
            if checking_enabled(config.check_invariants)
            else None
        )

    @staticmethod
    def _make_policy(name: str) -> ReclaimPolicy:
        if name == "tmo":
            return TmoReclaimPolicy()
        if name == "legacy":
            return LegacyReclaimPolicy()
        raise ValueError(
            f"unknown reclaim policy {name!r}; use 'tmo' or 'legacy'"
        )

    # ------------------------------------------------------------------
    # assembly

    def add_workload(
        self,
        workload_cls,
        profile: Optional[AppProfile] = None,
        name: Optional[str] = None,
        size_scale: float = 1.0,
        **workload_kwargs,
    ) -> Workload:
        """Create a container, its PSI domain and its workload.

        Args:
            workload_cls: :class:`Workload` or a subclass; subclasses that
                bake in their own profile (e.g. WebWorkload) may be passed
                with ``profile=None``.
            profile: app profile for plain workloads.
            name: cgroup name; defaults to a slug of the profile name.
            size_scale: footprint multiplier (lets small hosts run the
                production profiles).
        """
        if profile is not None:
            workload_kwargs.setdefault("profile", profile)
        cgroup_name = name or self._slug(
            profile.name if profile is not None else workload_cls.__name__
        )
        comp = profile.compress_ratio if profile is not None else 3.0
        self.mm.create_cgroup(cgroup_name, compressibility=comp)
        self.psi.add_group(cgroup_name, now=self.clock.now)
        workload = workload_cls(
            self.mm, cgroup_name=cgroup_name, seed=self.config.seed,
            **workload_kwargs,
        )
        workload.start(self.clock.now, size_scale=size_scale)
        tasks = [
            self.psi.add_task(f"{cgroup_name}/t{i}", cgroup_name)
            for i in range(workload.profile.nthreads)
        ]
        self._hosted[cgroup_name] = HostedWorkload(
            workload=workload, cgroup_name=cgroup_name, psi_tasks=tasks
        )
        return workload

    @staticmethod
    def _slug(name: str) -> str:
        return name.lower().replace(" ", "-")

    def add_controller(self, controller: Controller) -> Controller:
        self._controllers.append(controller)
        return controller

    def controllers(self) -> List[Controller]:
        """The attached controllers, in polling order.

        The public view — the fault injector uses it to find controller
        fault seams, and the checkpoint layer to encode controller
        state, without reaching into host internals.
        """
        return list(self._controllers)

    # ------------------------------------------------------------------
    # checkpoint/restore (repro.checkpoint)

    def snapshot(self) -> Dict[str, object]:
        """Snapshot the full host state into a versioned envelope.

        The envelope is a JSON-clean dict (schema version, SHA-256
        payload digest, payload); see :mod:`repro.checkpoint`. A host
        restored from it continues bit-identically to this one.
        """
        from repro.checkpoint import snapshot_host

        return snapshot_host(self)

    @classmethod
    def restore(cls, envelope: Dict[str, object]) -> "Host":
        """Rebuild a host from a :meth:`snapshot` envelope.

        Raises :class:`repro.checkpoint.SnapshotError` on a schema
        version mismatch, digest mismatch, or malformed document —
        before any construction, never yielding a half-restored host.
        """
        from repro.checkpoint import restore_host

        return restore_host(envelope)

    def workload(self, name: str) -> Workload:
        return self._hosted[name].workload

    def hosted(self) -> List[HostedWorkload]:
        return list(self._hosted.values())

    def has_workload(self, name: str) -> bool:
        """Whether a container of this name is currently running.

        The public membership test — controllers must use this (or
        :meth:`hosted`) instead of reaching into host internals.
        """
        return name in self._hosted

    def kill_workload(self, name: str, missing_ok: bool = False) -> int:
        """Terminate a container (a userspace OOM-killer action).

        Releases every page the container holds (resident and
        offloaded), settles its PSI tasks to idle, and stops ticking its
        workload. The cgroup itself remains, like a dead but not yet
        removed container. Returns the number of pages released.

        Args:
            missing_ok: when True, killing an already-dead container is
                a no-op returning 0; when False (the default) it raises
                :class:`UnknownWorkloadError` (a ``KeyError``), so a
                racing killer gets a clean, documented signal.
        """
        hosted = self._hosted.pop(name, None)
        if hosted is None:
            if missing_ok:
                return 0
            raise UnknownWorkloadError(name)
        for task in hosted.psi_tasks:
            self.psi.remove_task(task.name, self.clock.now)
        return self.mm.release_cgroup_pages(name)

    # ------------------------------------------------------------------
    # workload-event hooks (used by repro.faults and tests)

    def restart_workload(self, name: str) -> None:
        """Restart a container in place (code push / crash loop).

        The workload drops its entire page population and rebuilds it
        at its current footprint — the restart-storm primitive of the
        fault injector.
        """
        try:
            hosted = self._hosted[name]
        except KeyError:
            raise UnknownWorkloadError(name) from None
        hosted.workload.restart(self.clock.now)

    def spike_workload(self, name: str, grow_frac: float) -> int:
        """Queue a sudden footprint spike on a container.

        The extra anonymous pages (``grow_frac`` of the current
        population) are allocated during the workload's next tick, so
        the resulting allocation stalls and possible OOM land in its
        tick accounting like organic growth. Returns the queued count.
        """
        try:
            hosted = self._hosted[name]
        except KeyError:
            raise UnknownWorkloadError(name) from None
        return hosted.workload.request_spike(grow_frac)

    # ------------------------------------------------------------------
    # the tick loop

    def step(self) -> None:
        """Advance the host by one tick."""
        dt = self.config.tick_s
        now0 = self.clock.now
        results: Dict[str, TickResult] = {}
        for name, hosted in self._hosted.items():
            results[name] = hosted.workload.tick(now0, dt)
            hosted.last_tick = results[name]

        self._feed_psi(results, now0, dt)
        self.clock.advance(dt)
        now1 = self.clock.now
        self.psi.tick(now1)
        self.mm.on_tick(now1, dt)
        for controller in self._controllers:
            controller.poll(self, now1)
        self._record(results, now1, dt)
        self._tick_index += 1
        if self.invariants is not None:
            self.invariants.check(self)

    def run(self, duration_s: float) -> None:
        """Run the host loop for ``duration_s`` of virtual time.

        The loop is driven by an integer tick count derived once from
        the duration, never by float comparisons against the
        accumulating clock: with a tick like 0.1 s (not exactly
        representable) the sum drifts, and an epsilon compare
        eventually executes one tick too many or too few on long runs.
        """
        dt = self.config.tick_s
        ratio = duration_s / dt
        nticks = int(ratio)
        # A genuine fractional remainder gets one more (partial-period)
        # tick, exactly like the old loop; division noise does not.
        if ratio - nticks > 1e-9 * max(1.0, ratio):
            nticks += 1
        for _ in range(nticks):
            self.step()

    @property
    def tick_count(self) -> int:
        """Ticks executed since construction (exact, integer)."""
        return self._tick_index

    # ------------------------------------------------------------------
    # scheduler model -> PSI transitions

    def _feed_psi(
        self, results: Dict[str, TickResult], now0: float, dt: float
    ) -> None:
        """Lay each thread's run/stall segments onto the PSI timeline.

        Hot path: the event and duration buffers are reused across
        ticks, segments that would not change a task's flags are not
        emitted (``set_flags`` would be a no-op), and events carry a
        sequence number so plain tuple sorting reproduces the stable
        time order without a key function.
        """
        capacity = self.config.ncpu * dt
        demand = sum(r.cpu_seconds for r in results.values())
        cpu_share = 1.0 if demand <= capacity else capacity / demand

        events = self._psi_events
        events.clear()
        durations = self._psi_durations
        nseg = len(durations)
        seq = 0
        for name, hosted in self._hosted.items():
            tick = results[name]
            nthreads = max(1, len(hosted.psi_tasks))
            run_demand = tick.cpu_seconds / nthreads
            run = run_demand * cpu_share
            wait = run_demand - run
            durations[0] = run
            durations[1] = tick.stall_mem_s / nthreads
            durations[2] = tick.stall_both_s / nthreads
            durations[3] = tick.stall_io_s / nthreads
            durations[4] = wait
            busy = (
                durations[0] + durations[1] + durations[2]
                + durations[3] + durations[4]
            )
            if busy > dt:
                scale = dt / busy
                for i in range(5):
                    durations[i] *= scale
                busy = dt
            durations[5] = dt - busy  # idle remainder

            for t_idx, task in enumerate(hosted.psi_tasks):
                rotation = (t_idx + self._tick_index) % nseg
                cursor = now0
                last_flags = task.flags
                for step in range(nseg):
                    seg = rotation + step
                    if seg >= nseg:
                        seg -= nseg
                    dur = durations[seg]
                    if dur <= 1e-12:
                        continue
                    flags = _SEGMENT_FLAGS[seg]
                    if flags != last_flags:
                        events.append((cursor, seq, task, flags))
                        seq += 1
                        last_flags = flags
                    cursor += dur

        events.sort()
        for when, _, task, flags in events:
            task.set_flags(flags, when)

    # ------------------------------------------------------------------
    # metrics

    def _device_delta(self, label: str, stats) -> Tuple[int, int, int]:
        """Reads/writes/bytes-written deltas since the last tick."""
        prev = self._prev_device_stats.get(label, (0, 0, 0))
        current = (stats.reads, stats.writes, stats.bytes_written)
        self._prev_device_stats[label] = current
        return (
            current[0] - prev[0],
            current[1] - prev[1],
            current[2] - prev[2],
        )

    def _intern_metric_names(self, name: str) -> Tuple[str, ...]:
        """Build and memoize one workload's metric-series names.

        Out-of-line from :meth:`_record`'s per-workload loop so the
        string formatting happens once per workload lifetime, not once
        per tick (TMO018 keeps it out of the hot loop).
        """
        names = tuple(
            f"{name}/{suffix}" for suffix in (
                "resident_bytes", "anon_bytes", "file_bytes",
                "swap_bytes", "zswap_bytes", "promotion_rate",
                "refaults", "rps", "oom",
                "psi_mem_some_avg10", "psi_io_some_avg10",
                "psi_mem_some_total", "psi_io_some_total",
            )
        )
        self._metric_names[name] = names
        return names

    def _record(
        self, results: Dict[str, TickResult], now: float, dt: float
    ) -> None:
        rec = self.metrics.record
        rec("host/free_bytes", now, self.mm.free_bytes())
        rec("host/used_bytes", now, self.mm.used_bytes())
        rec("host/zswap_pool_bytes", now, self.mm.zswap_pool_bytes)

        fs_reads, _, _ = self._device_delta("fs", self.fs.stats)
        rec("fs/read_rate", now, fs_reads / dt)
        rec(
            "fs/read_latency_p90",
            now,
            self.fs.stats.latencies.percentile(90.0),
        )
        if self.swap_backend is not None:
            _, _, wbytes = self._device_delta(
                "swap", self.swap_backend.stats
            )
            rec("swap/out_rate_mb_s", now, wbytes / dt / _MB)
            rec("swap/stored_bytes", now, self.swap_backend.stored_bytes)

        for name, hosted in self._hosted.items():
            cg = self.mm.cgroup(name)
            tick = results[name]
            names = self._metric_names.get(name)
            if names is None:
                names = self._intern_metric_names(name)
            (n_resident, n_anon, n_file, n_swap, n_zswap, n_promo,
             n_refaults, n_rps, n_oom, n_mem10, n_io10, n_memtot,
             n_iotot) = names
            rec(n_resident, now, cg.resident_bytes)
            rec(n_anon, now, cg.anon_bytes)
            rec(n_file, now, cg.file_bytes)
            rec(n_swap, now, cg.swap_bytes)
            rec(n_zswap, now, cg.zswap_bytes)
            promotions = tick.count("swapin") + tick.count("zswapin")
            rec(n_promo, now, promotions / dt)
            rec(n_refaults, now, tick.count("refault") / dt)
            rec(n_rps, now, tick.work_done / dt)
            rec(n_oom, now, 1.0 if tick.oom else 0.0)
            group = self.psi.group(name)
            mem_avg10, mem_total = group.quick_read(Resource.MEMORY, now)
            io_avg10, io_total = group.quick_read(Resource.IO, now)
            rec(n_mem10, now, mem_avg10)
            rec(n_io10, now, io_avg10)
            rec(n_memtot, now, mem_total)
            rec(n_iotot, now, io_total)
