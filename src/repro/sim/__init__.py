"""Simulation substrate: virtual clock, RNG discipline, metrics, host assembly.

The simulator is a deterministic tick-fluid hybrid: workloads execute in
fixed quanta, faults draw latencies from device models, and the PSI tracker
receives exact state-transition timestamps derived from each quantum.
"""

from repro.sim.ab import ABReport, ABTest, SeriesDelta
from repro.sim.clock import Clock
from repro.sim.invariants import InvariantChecker, InvariantViolation
from repro.sim.metrics import MetricsRecorder, Series
from repro.sim.rng import derive_rng, derive_seed

__all__ = [
    "ABReport",
    "ABTest",
    "SeriesDelta",
    "Clock",
    "InvariantChecker",
    "InvariantViolation",
    "MetricsRecorder",
    "Series",
    "derive_rng",
    "derive_seed",
]
