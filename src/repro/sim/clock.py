"""Virtual time for the simulator.

All components share one :class:`Clock`. Time is a float number of seconds
since simulation start. The clock only moves forward, in explicit steps
driven by the host loop; nothing in the library reads wall-clock time, which
keeps every run deterministic and replayable.
"""

from __future__ import annotations


class Clock:
    """A monotonically advancing virtual clock.

    >>> clock = Clock()
    >>> clock.now
    0.0
    >>> clock.advance(1.5)
    >>> clock.now
    1.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)  # tmo-lint: transient -- via advance_to()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds.

        Raises:
            ValueError: if ``dt`` is negative; the clock never rewinds.
        """
        if dt < 0:
            raise ValueError(f"clock cannot move backwards (dt={dt})")
        self._now += dt

    def advance_to(self, when: float) -> None:
        """Move time forward to the absolute timestamp ``when``.

        Raises:
            ValueError: if ``when`` is in the past.
        """
        if when < self._now:
            raise ValueError(
                f"clock cannot rewind from {self._now} to {when}"
            )
        self._now = float(when)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
