"""Debug-mode runtime invariant checking.

The simulator maintains several redundant views of the same state —
byte counters on cgroups, page objects in the MM, LRU membership,
PSI stall integrals. In normal runs the redundancy is what makes the
experiments cheap to record; in debug runs it is an opportunity to
cross-check. :class:`InvariantChecker` walks those views after every
host tick and raises :class:`InvariantViolation` on the first
disagreement, pointing at the tick that corrupted state rather than
the (much later) metric that exposed it.

Enable it per host with ``HostConfig(check_invariants=True)`` or
globally with the ``TMO_CHECK_INVARIANTS`` environment variable
(``1``/``true``/``yes``/``on``). The checks cost one full page-table
walk per tick, so they default to off.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.kernel.page import PageKind, PageState
from repro.psi.types import Resource

#: Environment variable that switches checking on for every host whose
#: config leaves ``check_invariants`` unset.
ENV_FLAG = "TMO_CHECK_INVARIANTS"

_TRUTHY = ("1", "true", "yes", "on")

#: Slack for floating-point comparisons on PSI fractions and stall
#: integrals. Stall times accumulate as sums of tick segments, so exact
#: equality is not meaningful (see TMO006 in docs/LINTING.md).
EPS = 1e-9


def env_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``TMO_CHECK_INVARIANTS`` asks for checking."""
    env = os.environ if environ is None else environ
    return env.get(ENV_FLAG, "").strip().lower() in _TRUTHY


def checking_enabled(config_flag: Optional[bool]) -> bool:
    """Resolve a host's ``check_invariants`` setting against the env."""
    if config_flag is not None:
        return config_flag
    return env_enabled()


class InvariantViolation(AssertionError):
    """A redundant state view disagreed with the authoritative one."""


class InvariantChecker:
    """Cross-checks a host's state views after each tick.

    Stateless checks (page conservation, LRU accounting, DRAM budget,
    PSI bounds) inspect the current tick only; the monotonicity check
    keeps the previous tick's PSI stall totals, so one checker instance
    should stay attached to one host for its lifetime.
    """

    def __init__(self) -> None:
        # (group name, resource, kind) -> last observed stall total.
        self._psi_totals: Dict[Tuple[str, Resource, str], float] = {}

    # ------------------------------------------------------------------

    def check(self, host) -> None:
        """Run every invariant against ``host``; raise on the first failure."""
        now = host.clock.now
        self.check_page_conservation(host.mm)
        self.check_lru_accounting(host.mm)
        self.check_dram_budget(host.mm)
        self.check_psi(host.psi, now)

    # ------------------------------------------------------------------
    # memory accounting

    def check_page_conservation(self, mm) -> None:
        """Cgroup byte counters must equal page-population counts.

        Every live page is in exactly one state; multiplying the
        per-state population by the page size must reproduce the byte
        counters the charge/uncharge paths maintain incrementally.
        """
        psize = mm.page_size_bytes
        # Per-cgroup tallies are allocated up front so the per-page loop
        # only increments counters (the checker runs every tick under
        # TMO_CHECK_INVARIANTS, inside the lint's hot region).
        tallies: Dict[str, Dict[str, int]] = {
            cgroup.name: {"anon": 0, "file": 0, "swap": 0, "zswap": 0}
            for cgroup in mm.cgroups()
        }
        for page in mm.pages():
            tally = tallies.get(page.cgroup)
            if tally is None:
                # A page charged to no known cgroup has no byte counters
                # to cross-check; the per-cgroup LRU check catches it.
                continue
            if page.state is PageState.RESIDENT:
                key = "anon" if page.kind is PageKind.ANON else "file"
                tally[key] += 1
            elif page.state is PageState.SWAPPED:
                tally["swap"] += 1
            elif page.state is PageState.ZSWAPPED:
                tally["zswap"] += 1
            # EVICTED/ABSENT pages hold no charged bytes anywhere.

        for cgroup in mm.cgroups():
            tally = tallies[cgroup.name]
            for key, actual in (
                ("anon", cgroup.anon_bytes),
                ("file", cgroup.file_bytes),
                ("swap", cgroup.swap_bytes),
                ("zswap", cgroup.zswap_bytes),
            ):
                expected = tally[key] * psize
                if actual != expected:
                    raise InvariantViolation(
                        f"cgroup {cgroup.name!r}: {key}_bytes is "
                        f"{actual} but its page population implies "
                        f"{expected} ({tally[key]} pages x {psize} B)"
                    )
                if actual < 0:
                    raise InvariantViolation(
                        f"cgroup {cgroup.name!r}: {key}_bytes is "
                        f"negative ({actual})"
                    )

    def check_lru_accounting(self, mm) -> None:
        """Each LRU must hold exactly the resident pages of its kind."""
        psize = mm.page_size_bytes
        for cgroup in mm.cgroups():
            for kind in (PageKind.ANON, PageKind.FILE):
                lru_bytes = len(cgroup.lru[kind]) * psize
                counter = (
                    cgroup.anon_bytes
                    if kind is PageKind.ANON
                    else cgroup.file_bytes
                )
                if lru_bytes != counter:
                    raise InvariantViolation(
                        f"cgroup {cgroup.name!r}: {kind.name} LRU holds "
                        f"{len(cgroup.lru[kind])} pages ({lru_bytes} B) "
                        f"but the byte counter says {counter} B"
                    )

    def check_dram_budget(self, mm) -> None:
        """Used DRAM (resident + zswap pool) must fit in physical RAM."""
        if mm.zswap_pool_bytes < 0:
            raise InvariantViolation(
                f"zswap pool size is negative ({mm.zswap_pool_bytes} B)"
            )
        free = mm.free_bytes()
        if free < 0:
            raise InvariantViolation(
                f"DRAM overcommitted: used {mm.used_bytes()} B of "
                f"{mm.ram_bytes} B (free would be {free} B)"
            )

    # ------------------------------------------------------------------
    # pressure accounting

    def check_psi(self, psi, now_s: float) -> None:
        """PSI averages must be sane fractions and totals monotone.

        ``full`` counts instants when *every* task stalls, a subset of
        the instants ``some`` counts, so full <= some holds for both
        the running averages and the cumulative stall integrals.
        """
        for group in psi.groups():
            for resource in (Resource.MEMORY, Resource.IO):
                sample = group.sample(resource, now_s)
                pairs = (
                    ("avg10", sample.some_avg10, sample.full_avg10),
                    ("avg60", sample.some_avg60, sample.full_avg60),
                    ("avg300", sample.some_avg300, sample.full_avg300),
                )
                for window, some, full in pairs:
                    for label, value in (("some", some), ("full", full)):
                        if not (-EPS <= value <= 1.0 + EPS):
                            raise InvariantViolation(
                                f"psi {group.name}/{resource.name}: "
                                f"{label}_{window} = {value} is outside "
                                "[0, 1]"
                            )
                    if full > some + EPS:
                        raise InvariantViolation(
                            f"psi {group.name}/{resource.name}: "
                            f"full_{window} ({full}) exceeds "
                            f"some_{window} ({some})"
                        )
                if sample.full_total > sample.some_total + EPS:
                    raise InvariantViolation(
                        f"psi {group.name}/{resource.name}: full_total "
                        f"({sample.full_total}) exceeds some_total "
                        f"({sample.some_total})"
                    )
                for kind, total in (
                    ("some", sample.some_total),
                    ("full", sample.full_total),
                ):
                    key = (group.name, resource, kind)
                    prev = self._psi_totals.get(key, 0.0)
                    if total < prev - EPS:
                        raise InvariantViolation(
                            f"psi {group.name}/{resource.name}: "
                            f"{kind}_total went backwards "
                            f"({prev} -> {total})"
                        )
                    self._psi_totals[key] = total
