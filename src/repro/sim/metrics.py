"""Time-series recording for experiments.

Every benchmark in this repo regenerates one of the paper's figures; the
figure data is a set of named series sampled over simulated time. The
:class:`MetricsRecorder` collects those samples and offers the reductions
(means, percentiles, window slices) the benchmark tables need.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Initial sample capacity of a series buffer; doubles on overflow.
_INITIAL_CAPACITY = 16


class Series:
    """A single named time series of ``(time, value)`` samples.

    Samples live in amortised-doubling numpy buffers, so the per-tick
    :meth:`record` call is an array store instead of two list appends
    and :meth:`as_arrays` hands out views without converting. The
    ``times``/``values`` properties still present plain Python lists
    for the callers (tests, CSV export, checkpoints) that want them.
    """

    __slots__ = ("name", "_t_buf", "_v_buf", "_n")

    def __init__(
        self,
        name: str,
        times: Optional[Sequence[float]] = None,
        values: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        times = [] if times is None else list(times)
        values = [] if values is None else list(values)
        if len(times) != len(values):
            raise ValueError(
                f"series {name!r}: {len(times)} times vs "
                f"{len(values)} values"
            )
        n = len(times)
        capacity = max(_INITIAL_CAPACITY, n)
        # tmo-lint: transient markers: the checkpoint codec round-trips
        # a series through the times/values properties, not the buffers.
        self._t_buf = np.empty(capacity, dtype=np.float64)  # tmo-lint: transient
        self._v_buf = np.empty(capacity, dtype=np.float64)  # tmo-lint: transient
        self._t_buf[:n] = times
        self._v_buf[:n] = values
        self._n = n  # tmo-lint: transient -- restored via times/values

    @property
    def times(self) -> List[float]:
        """Sample times as a plain list (a copy; do not append to it)."""
        return self._t_buf[: self._n].tolist()

    @property
    def values(self) -> List[float]:
        """Sample values as a plain list (a copy; do not append to it)."""
        return self._v_buf[: self._n].tolist()

    def record(self, t: float, value: float) -> None:
        """Append one sample; time must be non-decreasing."""
        n = self._n
        t_buf = self._t_buf
        if n and t < t_buf[n - 1]:
            raise ValueError(
                f"series {self.name!r}: time went backwards "
                f"({t_buf[n - 1]} -> {t})"
            )
        if n == len(t_buf):
            self._t_buf = t_buf = np.concatenate(
                [t_buf, np.empty(n, dtype=np.float64)]
            )
            self._v_buf = np.concatenate(
                [self._v_buf, np.empty(n, dtype=np.float64)]
            )
        t_buf[n] = t
        self._v_buf[n] = value
        self._n = n + 1

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"Series(name={self.name!r}, samples={self._n})"

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as read-only numpy array views."""
        times = self._t_buf[: self._n]
        values = self._v_buf[: self._n]
        times.flags.writeable = False
        values.flags.writeable = False
        return times, values

    def window(self, start: float, end: float) -> "Series":
        """Return the sub-series with ``start <= t < end``.

        Times are non-decreasing (enforced by :meth:`record`), so the
        window is one contiguous slice found by bisection.
        """
        t = self._t_buf[: self._n]
        lo = int(np.searchsorted(t, start, side="left"))
        hi = int(np.searchsorted(t, end, side="left"))
        return Series(
            self.name,
            times=t[lo:hi],
            values=self._v_buf[lo:hi],
        )

    def mean(self) -> float:
        """Mean of all sample values (nan when empty)."""
        n = self._n
        return float(self._v_buf[:n].mean()) if n else float("nan")

    def last(self) -> float:
        """Most recent value (nan when empty)."""
        return float(self._v_buf[self._n - 1]) if self._n else float("nan")

    def min(self) -> float:
        return float(self._v_buf[: self._n].min()) if self._n else float("nan")

    def max(self) -> float:
        return float(self._v_buf[: self._n].max()) if self._n else float("nan")

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sample values."""
        if not self._n:
            return float("nan")
        return float(np.percentile(self._v_buf[: self._n], q))


class MetricsRecorder:
    """A collection of named series, created lazily on first record."""

    def __init__(self) -> None:
        self._series: Dict[str, Series] = {}

    def record(self, name: str, t: float, value: float) -> None:
        """Record one sample on the series called ``name``.

        Inlines :meth:`Series.record` (buffer store + monotonicity
        check): this runs a couple dozen times per simulated tick.
        """
        series = self._series.get(name)
        if series is None:
            series = Series(name)
            self._series[name] = series
        n = series._n
        t_buf = series._t_buf
        if n and t < t_buf[n - 1]:
            raise ValueError(
                f"series {name!r}: time went backwards "
                f"({t_buf[n - 1]} -> {t})"
            )
        if n == len(t_buf):
            series._t_buf = t_buf = np.concatenate(
                [t_buf, np.empty(n, dtype=np.float64)]
            )
            series._v_buf = np.concatenate(
                [series._v_buf, np.empty(n, dtype=np.float64)]
            )
        t_buf[n] = t
        series._v_buf[n] = value
        series._n = n + 1

    def series(self, name: str) -> Series:
        """Fetch a series by name, registering it if never recorded.

        The returned series is always the recorder's own: a ``record()``
        on it is visible to later fetches, rather than vanishing into a
        detached throwaway object.

        This is the *write-side* fetch: asking for an unknown name
        creates it, which changes :func:`metrics_digest`. Query paths
        (health gates, fleet rollups, status surfaces) must use
        :meth:`get` or :meth:`read_window` instead, so that observing a
        live host never perturbs the digests the chaos verdicts and
        crash-equivalence checks hang on.
        """
        series = self._series.get(name)
        if series is None:
            series = Series(name)
            self._series[name] = series
        return series

    def get(self, name: str) -> Optional[Series]:
        """Fetch a series by name *without* registering it.

        The read-side counterpart of :meth:`series`: an unknown name
        returns ``None`` and leaves the recorder untouched, so query
        paths are digest-neutral (query-twice == query-never).
        """
        return self._series.get(name)

    def read_window(self, name: str, start: float, end: float) -> Series:
        """Non-registering windowed read: ``start <= t < end``.

        An unknown name yields an empty *detached* series (recording on
        it does not reach this recorder) instead of registering a
        phantom empty series the way ``series(name).window(...)`` would.
        """
        series = self._series.get(name)
        if series is None:
            return Series(name)
        return series.window(start, end)

    def names(self) -> Iterable[str]:
        return self._series.keys()

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def summary(
        self, names: Optional[Iterable[str]] = None
    ) -> Dict[str, Optional[float]]:
        """Mean of each requested series (all series by default).

        Read-only: unknown names are *not* registered (they used to
        leave phantom empty series behind, silently mutating
        :func:`metrics_digest` from a query path). Unknown or empty
        series map to ``None`` — JSON-safe ``null`` — never to the
        bare ``NaN`` token, which is invalid JSON on the wire.
        """
        wanted = list(names) if names is not None else list(self._series)
        out: Dict[str, Optional[float]] = {}
        for name in wanted:
            series = self._series.get(name)
            out[name] = (
                series.mean() if series is not None and len(series)
                else None
            )
        return out


def metrics_digest(metrics: MetricsRecorder) -> str:
    """SHA-256 over every series' name, times and values, in name order.

    Bit-level: floats are packed as IEEE doubles, so two digests match
    only when every sample of every series is byte-identical. This is
    the equivalence check behind crash-restore verification and the
    parallel-vs-serial fleet contract.
    """
    sha = hashlib.sha256()
    for name in sorted(metrics.names()):
        series = metrics.series(name)
        sha.update(name.encode())
        sha.update(struct.pack("<q", len(series)))
        # One interleaved (t, v) float64 array hashed in a single call:
        # little-endian IEEE doubles, byte-identical to packing each
        # sample with struct.pack("<dd", t, v).
        times, values = series.as_arrays()
        interleaved = np.empty((len(series), 2), dtype="<f8")
        interleaved[:, 0] = times
        interleaved[:, 1] = values
        sha.update(interleaved.tobytes())
    return sha.hexdigest()
