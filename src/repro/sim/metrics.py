"""Time-series recording for experiments.

Every benchmark in this repo regenerates one of the paper's figures; the
figure data is a set of named series sampled over simulated time. The
:class:`MetricsRecorder` collects those samples and offers the reductions
(means, percentiles, window slices) the benchmark tables need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


@dataclass
class Series:
    """A single named time series of ``(time, value)`` samples."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        """Append one sample; time must be non-decreasing."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time went backwards "
                f"({self.times[-1]} -> {t})"
            )
        self.times.append(float(t))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as numpy arrays."""
        return np.asarray(self.times), np.asarray(self.values)

    def window(self, start: float, end: float) -> "Series":
        """Return the sub-series with ``start <= t < end``."""
        out = Series(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                out.times.append(t)
                out.values.append(v)
        return out

    def mean(self) -> float:
        """Mean of all sample values (nan when empty)."""
        return float(np.mean(self.values)) if self.values else float("nan")

    def last(self) -> float:
        """Most recent value (nan when empty)."""
        return self.values[-1] if self.values else float("nan")

    def min(self) -> float:
        return float(np.min(self.values)) if self.values else float("nan")

    def max(self) -> float:
        return float(np.max(self.values)) if self.values else float("nan")

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sample values."""
        if not self.values:
            return float("nan")
        return float(np.percentile(self.values, q))


class MetricsRecorder:
    """A collection of named series, created lazily on first record."""

    def __init__(self) -> None:
        self._series: Dict[str, Series] = {}

    def record(self, name: str, t: float, value: float) -> None:
        """Record one sample on the series called ``name``."""
        series = self._series.get(name)
        if series is None:
            series = Series(name)
            self._series[name] = series
        series.record(t, value)

    def series(self, name: str) -> Series:
        """Fetch a series by name; empty series if never recorded."""
        return self._series.get(name, Series(name))

    def names(self) -> Iterable[str]:
        return self._series.keys()

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def summary(self, names: Optional[Iterable[str]] = None) -> Dict[str, float]:
        """Mean of each requested series (all series by default)."""
        wanted = list(names) if names is not None else list(self._series)
        return {name: self.series(name).mean() for name in wanted}
