"""A/B testing harness.

Section 4.2: "Our production load-testing framework provides high
fidelity A/B tests and we use it to guide our hardware and software
optimizations." The simulator's determinism makes A/B exact: two hosts
built from the same seed see identical workload randomness, so any
difference in a metric is attributable to the configuration delta.

Usage::

    ab = ABTest(
        control=lambda: build_host(backend=None),
        treatment=lambda: build_host(backend="zswap"),
    )
    report = ab.run(duration_s=3600.0)
    delta = report.compare("app/rps", window=(1800.0, 3600.0))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.sim.host import Host


@dataclass(frozen=True)
class SeriesDelta:
    """Mean comparison of one metric between the two arms."""

    name: str
    control_mean: float
    treatment_mean: float

    @property
    def delta(self) -> float:
        return self.treatment_mean - self.control_mean

    @property
    def delta_frac(self) -> float:
        """Relative change; nan when the control mean is zero."""
        if self.control_mean == 0:
            return float("nan")
        return self.delta / self.control_mean


@dataclass
class ABReport:
    """The two completed hosts plus comparison helpers."""

    control: Host
    treatment: Host
    duration_s: float

    def compare(
        self,
        series_name: str,
        window: Optional[Tuple[float, float]] = None,
    ) -> SeriesDelta:
        """Mean-compare one recorded series between the arms."""
        if window is None:
            window = (0.0, self.duration_s)
        control = self.control.metrics.series(series_name).window(*window)
        treatment = self.treatment.metrics.series(series_name).window(
            *window
        )
        if len(control) == 0 or len(treatment) == 0:
            raise KeyError(
                f"series {series_name!r} has no samples in {window}"
            )
        return SeriesDelta(
            name=series_name,
            control_mean=control.mean(),
            treatment_mean=treatment.mean(),
        )


class ABTest:
    """Runs a control and a treatment host over the same duration.

    The factories must build hosts from identical seeds (same
    ``HostConfig.seed`` and same workload names) differing only in the
    configuration under test; the harness checks the seeds match.
    """

    def __init__(
        self,
        control: Callable[[], Host],
        treatment: Callable[[], Host],
    ) -> None:
        self._control_factory = control
        self._treatment_factory = treatment

    def run(self, duration_s: float) -> ABReport:
        control = self._control_factory()
        treatment = self._treatment_factory()
        if control.config.seed != treatment.config.seed:
            raise ValueError(
                "A/B arms must be built from the same seed "
                f"({control.config.seed} != {treatment.config.seed}); "
                "differing seeds confound the comparison"
            )
        control.run(duration_s)
        treatment.run(duration_s)
        return ABReport(
            control=control, treatment=treatment, duration_s=duration_s
        )
