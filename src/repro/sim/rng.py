"""Deterministic RNG discipline.

Every stochastic component owns a ``numpy.random.Generator`` derived from
its parent seed plus a stable string label. Two hosts built with the same
seed therefore produce bit-identical runs, which is what makes the A/B
experiments in the paper's evaluation exactly reproducible here.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a stable ``label``.

    Uses SHA-256 so that seed derivation is independent of Python's
    per-process hash randomisation.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(parent_seed: int, label: str) -> np.random.Generator:
    """Create an independent generator for the component named ``label``."""
    return np.random.default_rng(derive_seed(parent_seed, label))
