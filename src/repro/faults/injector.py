"""The fault injector: replays a :class:`~repro.faults.plan.FaultPlan`.

The injector is an ordinary host controller (install it *first*, so
real controllers observe the faulted world within the same tick). Each
poll it walks the plan, fires instantaneous events whose time has come,
toggles windowed faults on their activation/deactivation edges, and
recomputes the public fault seams from the currently-active set:

* device windows → :class:`~repro.backends.device.DeviceFaultState` on
  the swap and filesystem backends;
* ``psi_freeze`` → :meth:`PsiSystem.freeze_telemetry` plus the
  control-file pressure cache (both telemetry surfaces stick);
* ``malformed_pressure`` / ``controlfs_error`` →
  :class:`~repro.kernel.controlfs.ControlFsFaultState`;
* ``restart`` / ``spike`` / ``wear`` → the host's public workload and
  wear hooks;
* ``controller_crash`` / ``controller_hang`` →
  :class:`~repro.core.supervisor.ControllerFaultState` on supervised
  controllers.

Every edge is recorded on the host metrics as ``faults/<kind>``
(1.0 on activation, 0.0 on deactivation) and the number of active
windows as ``faults/active``, so a metrics dump alone shows exactly
what was injected and when. The injector draws no randomness of its
own — determinism lives entirely in the plan.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.faults.plan import FaultEvent, FaultPlan


def _device_fault_states(backend) -> List:
    """All DeviceFaultState seams reachable from one backend.

    Tiered backends expose both tiers; queued-device backends expose
    the device's state; zswap exposes its own.
    """
    states = []
    if backend is None:
        return states
    seen: Set[int] = set()

    def visit(node) -> None:
        if node is None or id(node) in seen:
            return
        seen.add(id(node))
        faults = getattr(node, "faults", None)
        if faults is not None and hasattr(faults, "io_error_rate"):
            states.append(faults)
        for attr in ("device", "zswap", "ssd"):
            visit(getattr(node, attr, None))

    visit(backend)
    return states


def _controller_fault_states(host) -> List:
    """All ControllerFaultState seams among the host's controllers.

    Supervised controllers expose a ``faults`` seam with a ``hung``
    flag (see :class:`~repro.core.supervisor.ControllerFaultState`);
    unsupervised ones have no seam and cannot be crash/hang targets.
    """
    states = []
    for controller in host.controllers():
        faults = getattr(controller, "faults", None)
        if faults is not None and hasattr(faults, "hung"):
            states.append(faults)
    return states


class FaultInjector:
    """Applies a fault plan to a running host; a controller."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._active: Set[int] = set()
        self._fired: Set[int] = set()
        #: Injections per kind (activations and instant firings).
        self.injected: Dict[str, int] = {}
        #: Instant events dropped because their target was gone.
        self.skipped = 0

    # ------------------------------------------------------------------

    def _record_edge(self, host, ev: FaultEvent, now: float,
                     value: float) -> None:
        host.metrics.record(f"faults/{ev.kind}", now, value)

    def _count(self, ev: FaultEvent) -> None:
        self.injected[ev.kind] = self.injected.get(ev.kind, 0) + 1

    def _fire_instant(self, host, ev: FaultEvent, now: float) -> None:
        """Apply one instantaneous event through the public hooks."""
        if ev.kind == "restart":
            if host.has_workload(ev.target):
                host.restart_workload(ev.target)
            else:
                self.skipped += 1
                return
        elif ev.kind == "spike":
            if host.has_workload(ev.target):
                host.spike_workload(ev.target, ev.severity)
            else:
                self.skipped += 1
                return
        elif ev.kind == "controller_crash":
            seams = _controller_fault_states(host)
            if not seams:
                self.skipped += 1
                return
            for seam in seams:
                seam.crash_pending = True
        else:  # wear
            applied = False
            for node in (host.swap_backend,
                         getattr(host.swap_backend, "ssd", None)):
                inject = getattr(node, "inject_wear", None)
                if inject is not None:
                    budget = node.spec.endurance_pbw * 1e15
                    inject(int(ev.severity * budget))
                    applied = True
                    break
            if not applied:
                self.skipped += 1
                return
        self._count(ev)
        self._record_edge(host, ev, now, 1.0)

    # ------------------------------------------------------------------

    def _apply_windows(self, host, active: List[FaultEvent],
                       now: float) -> None:
        """Recompute every fault seam from the active window set.

        Stateless recomputation (clear, then fold each active window
        in schedule order) makes overlapping windows compose without
        order bugs and guarantees full recovery when the set empties.
        """
        swap_states = _device_fault_states(host.swap_backend)
        fs_states = _device_fault_states(host.fs)
        for state in swap_states + fs_states:
            state.clear()
        controlfs = host.controlfs
        controlfs.faults.clear()
        controller_states = _controller_fault_states(host)
        for state in controller_states:
            # clear() resets only the window-driven hang flag; a
            # crash_pending set by an instant in this same poll survives.
            state.clear()
        freeze = False

        for ev in active:
            if ev.kind in ("io_error", "brownout", "outage"):
                targets = swap_states if ev.target == "swap" else fs_states
                for state in targets:
                    if ev.kind == "io_error":
                        state.io_error_rate = max(
                            state.io_error_rate, ev.severity
                        )
                    elif ev.kind == "brownout":
                        state.latency_multiplier *= 1.0 + 9.0 * ev.severity
                    else:
                        state.available = False
            elif ev.kind == "psi_freeze":
                freeze = True
            elif ev.kind == "malformed_pressure":
                controlfs.faults.malformed_pressure = True
            elif ev.kind == "controlfs_error":
                controlfs.faults.error_on_read = True
                controlfs.faults.error_on_write = True
            elif ev.kind == "controller_hang":
                for state in controller_states:
                    state.hung = True

        if freeze:
            host.psi.freeze_telemetry(now)
            controlfs.faults.frozen_pressure = True
        elif host.psi.telemetry_frozen:
            host.psi.thaw_telemetry()

    # ------------------------------------------------------------------

    def poll(self, host, now: float) -> None:
        edges = False
        for idx, ev in enumerate(self.plan.events):
            if ev.instant:
                if idx not in self._fired and now >= ev.start_s:
                    self._fired.add(idx)
                    self._fire_instant(host, ev, now)
                continue
            is_active = ev.active(now)
            was_active = idx in self._active
            if is_active and not was_active:
                self._active.add(idx)
                self._count(ev)
                self._record_edge(host, ev, now, 1.0)
                edges = True
            elif was_active and not is_active:
                self._active.discard(idx)
                self._record_edge(host, ev, now, 0.0)
                edges = True
        if edges:
            active = [
                ev for idx, ev in enumerate(self.plan.events)
                if idx in self._active
            ]
            self._apply_windows(host, active, now)
        host.metrics.record("faults/active", now, float(len(self._active)))
