"""The chaos harness: seeded fault storms under full invariant checking.

``run_chaos(ChaosConfig(seed=N))`` builds a small host (SSD-backed swap,
hardened Senpai with an eager circuit breaker, oomd, the fault
injector installed first), runs a seed-derived fault schedule with the
:class:`~repro.sim.invariants.InvariantChecker` enabled on every tick,
and returns a :class:`ChaosReport` stating whether the system degraded
*gracefully*:

* no unhandled exception escaped the run (invariant violations raise,
  so accounting corruption fails this too);
* every scheduled fault was injected and is visible in ``faults/*``;
* the circuit breaker demonstrably opened and re-closed;
* throughput in the quiet recovery tail is a bounded fraction of the
  pre-fault baseline.

The report also carries SHA-256 digests of the fault plan and of every
recorded metric series: two runs with the same seed must produce
byte-identical digests, which the pytest suite and CI assert.

CLI: ``python -m repro chaos --seed N`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.oomd import Oomd, OomdConfig
from repro.core.senpai import Senpai, SenpaiConfig
from repro.core.supervisor import Supervisor, SupervisorConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import RECOVERY_TAIL_FRAC, FaultPlan
from repro.sim.host import Host, HostConfig
# Re-exported: the digest implementation lives next to the recorder it
# hashes, but chaos callers historically import it from here.
from repro.sim.metrics import metrics_digest  # noqa: F401
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

_MB = 1 << 20
_GB = 1 << 30


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos run's parameters. Everything derives from ``seed``."""

    seed: int
    duration_s: float = 900.0
    ram_gb: float = 1.0
    ncpu: int = 8
    #: Footprint in 1 MiB pages; must overcommit ``ram_gb`` so the
    #: swap path carries traffic for device faults to hit.
    workload_pages: int = 1600
    #: Extra random fault windows on top of the guaranteed breaker storm.
    extra_events: int = 6
    #: Floor on tail/head throughput for a graceful-degradation verdict.
    min_rps_recovery: float = 0.5
    #: Wrap Senpai in a :class:`~repro.core.supervisor.Supervisor`, so
    #: ``controller_crash``/``controller_hang`` faults have a seam.
    supervised: bool = False
    #: Controller crash/hang events appended to the plan (these draws
    #: never perturb the base schedule of a seed).
    controller_faults: int = 0
    #: Supervisor hang-kill threshold for the supervised scenario: a
    #: controller silent for this long is declared hung and restarted.
    hang_timeout_s: float = 20.0


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    duration_s: float
    #: Exception that escaped the run loop, if any (repr), else None.
    unhandled_error: Optional[str] = None
    #: Faults injected per kind (from the injector's counters).
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Scheduled events versus injected activations.
    scheduled_events: int = 0
    injected_events: int = 0
    breaker_opened: bool = False
    breaker_reclosed: bool = False
    senpai_stale_skips: int = 0
    senpai_error_skips: int = 0
    swap_faults: int = 0
    fs_faults: int = 0
    oom_ticks: int = 0
    rps_head: float = 0.0
    rps_tail: float = 0.0
    #: SHA-256 of the fault plan's canonical text.
    plan_digest: str = ""
    #: SHA-256 over every metric series (times and values).
    series_digest: str = ""

    @property
    def rps_recovery(self) -> float:
        """Tail throughput as a fraction of the pre-fault baseline."""
        if self.rps_head <= 0.0:
            return 0.0
        return self.rps_tail / self.rps_head

    def passed(self, config: ChaosConfig) -> bool:
        """The graceful-degradation verdict for this run."""
        return (
            self.unhandled_error is None
            and self.injected_events > 0
            and self.breaker_opened
            and self.breaker_reclosed
            and self.rps_recovery >= config.min_rps_recovery
        )

    def failures(self, config: ChaosConfig) -> Tuple[str, ...]:
        """Human-readable reasons the verdict failed (empty if passed)."""
        reasons = []
        if self.unhandled_error is not None:
            reasons.append(f"unhandled error: {self.unhandled_error}")
        if self.injected_events == 0:
            reasons.append("no fault was injected")
        if not self.breaker_opened:
            reasons.append("circuit breaker never opened")
        if not self.breaker_reclosed:
            reasons.append("circuit breaker never re-closed")
        if self.rps_recovery < config.min_rps_recovery:
            reasons.append(
                f"throughput recovered to {self.rps_recovery:.2f} "
                f"< {config.min_rps_recovery:.2f} of baseline"
            )
        return tuple(reasons)


def _chaos_profile(config: ChaosConfig) -> AppProfile:
    """An anon-heavy profile that keeps the swap path busy, so device
    faults actually hit traffic and the breaker sees real deltas."""
    return AppProfile(
        name="chaos-app",
        size_gb=config.workload_pages * _MB / _GB,
        anon_frac=0.7,
        bands=HeatBands(0.25, 0.10, 0.10),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def build_chaos_host(config: ChaosConfig) -> Tuple[Host, FaultInjector, object]:
    """Assemble the chaos host: injector first, then the controllers.

    Returns the host, the injector and the reclaim controller — a bare
    :class:`Senpai`, or its :class:`Supervisor` wrapper when
    ``config.supervised`` is set.
    """
    host = Host(HostConfig(
        ram_gb=config.ram_gb,
        ncpu=config.ncpu,
        page_size_bytes=1 * _MB,
        seed=config.seed,
        backend="ssd",
        swap_gb=config.ram_gb,  # roomy swap: exhaustion is not the test
        check_invariants=True,
    ))
    host.add_workload(Workload, profile=_chaos_profile(config), name="app")
    plan = FaultPlan.generate(
        config.seed, config.duration_s, cgroups=("app",),
        extra_events=config.extra_events,
        controller_faults=config.controller_faults,
    )
    injector = host.add_controller(FaultInjector(plan))
    senpai = Senpai(SenpaiConfig(
        reclaim_ratio=0.005,
        max_step_frac=0.03,
        write_limit_mb_s=None,
        breaker_trip_polls=2,
        breaker_probe_s=30.0,
        stale_after_s=20.0,
    ))
    if config.supervised:
        # The returned handle is the supervisor; report readers unwrap
        # its (possibly restarted) inner controller at read time.
        senpai = host.add_controller(Supervisor(senpai, SupervisorConfig(
            hang_timeout_s=config.hang_timeout_s,
            persist_interval_s=30.0,
            restart_backoff_s=6.0,
            restart_backoff_max_s=60.0,
        )))
    else:
        host.add_controller(senpai)
    host.add_controller(Oomd(OomdConfig(
        full_threshold=0.8, sustain_s=60.0,
    )))
    return host, injector, senpai




def run_chaos(config: ChaosConfig) -> ChaosReport:
    """Run one seeded chaos scenario; never raises for in-run failures."""
    host, injector, senpai = build_chaos_host(config)
    report = ChaosReport(seed=config.seed, duration_s=config.duration_s)
    report.scheduled_events = len(injector.plan.events)
    report.plan_digest = hashlib.sha256(
        injector.plan.digest_text().encode()
    ).hexdigest()
    try:
        host.run(config.duration_s)
    except Exception as exc:
        # The whole point of the harness: a crash (including an
        # invariant violation) is a *finding*, reported, not raised.
        report.unhandled_error = repr(exc)

    report.fault_counts = dict(injector.injected)
    report.injected_events = sum(injector.injected.values())
    if isinstance(senpai, Supervisor):
        senpai = senpai.controller
    report.breaker_opened = senpai.breaker_open_count > 0
    report.breaker_reclosed = senpai.breaker_reclose_count > 0
    report.senpai_stale_skips = senpai.stale_skips
    report.senpai_error_skips = senpai.error_skips
    report.swap_faults = host.mm.swap_fault_count
    report.fs_faults = host.mm.fs_fault_count

    rps = host.metrics.series("app/rps")
    head = rps.window(0.0, 0.15 * config.duration_s)
    tail = rps.window(
        RECOVERY_TAIL_FRAC * config.duration_s, config.duration_s + 1.0
    )
    report.rps_head = head.mean() if len(head) else 0.0
    report.rps_tail = tail.mean() if len(tail) else 0.0
    oom = host.metrics.series("app/oom")
    report.oom_ticks = int(sum(oom.values))
    report.series_digest = metrics_digest(host.metrics)
    return report


@dataclass
class CrashEquivalenceReport:
    """Outcome of one checkpoint → kill → restore → continue experiment.

    The claim under test (docs/RESILIENCE.md, "Recovery"): restoring a
    snapshot and continuing is indistinguishable — down to the SHA-256
    of every metric series — from never having crashed.
    """

    seed: int
    duration_s: float
    checkpoint_at_s: float
    #: Payload digest of the mid-run snapshot.
    snapshot_digest: str = ""
    #: Metric-series digest of the uninterrupted control run.
    uninterrupted_digest: str = ""
    #: Metric-series digest of the kill+restore run.
    restored_digest: str = ""
    supervisor_crashes: int = 0
    supervisor_hang_kills: int = 0
    supervisor_restarts: int = 0
    #: Exception that escaped either run (repr), else None.
    error: Optional[str] = None

    @property
    def equivalent(self) -> bool:
        """Whether the two runs produced byte-identical metric series."""
        return (
            self.error is None
            and self.uninterrupted_digest != ""
            and self.uninterrupted_digest == self.restored_digest
        )


def run_crash_equivalence(config: ChaosConfig) -> CrashEquivalenceReport:
    """Prove (or refute) crash equivalence for one seed.

    Runs the scenario twice: once uninterrupted, and once killed at the
    midpoint — the host serialized to text, discarded, re-parsed and
    restored through the full envelope validation path — then continued
    to the same end time. Never raises for in-run failures.
    """
    checkpoint_at_s = float(round(config.duration_s / 2.0))
    report = CrashEquivalenceReport(
        seed=config.seed,
        duration_s=config.duration_s,
        checkpoint_at_s=checkpoint_at_s,
    )
    try:
        control, _, _ = build_chaos_host(config)
        control.run(config.duration_s)
        report.uninterrupted_digest = metrics_digest(control.metrics)

        victim, _, _ = build_chaos_host(config)
        victim.run(checkpoint_at_s)
        envelope = victim.snapshot()
        report.snapshot_digest = envelope["digest"]
        # The kill: everything live is dropped; only the serialized
        # text survives, exactly as a process death would leave it.
        from repro.checkpoint.snapshot import dump_envelope, parse_document

        text = dump_envelope(envelope)
        del victim, envelope
        restored = Host.restore(parse_document(text))
        restored.run(config.duration_s - checkpoint_at_s)
        report.restored_digest = metrics_digest(restored.metrics)

        for controller in restored.controllers():
            if isinstance(controller, Supervisor):
                report.supervisor_crashes = controller.crash_count
                report.supervisor_hang_kills = controller.hang_kill_count
                report.supervisor_restarts = controller.restart_count
    except Exception as exc:
        report.error = repr(exc)
    return report


def format_crash_equivalence(report: CrashEquivalenceReport) -> str:
    """Render one crash-equivalence report for the CLI."""
    status = "PASS" if report.equivalent else "FAIL"
    lines = [
        f"crash-equivalence seed={report.seed}: {status}",
        f"  kill+restore at t={report.checkpoint_at_s:.0f}s "
        f"of {report.duration_s:.0f}s "
        f"(snapshot {report.snapshot_digest[:16]})",
        f"  uninterrupted: {report.uninterrupted_digest[:16]}",
        f"  restored:      {report.restored_digest[:16]}",
        f"  supervisor: crashes={report.supervisor_crashes} "
        f"hang_kills={report.supervisor_hang_kills} "
        f"restarts={report.supervisor_restarts}",
    ]
    if report.error is not None:
        lines.append(f"  !! unhandled error: {report.error}")
    elif not report.equivalent:
        lines.append("  !! metric series diverged after restore")
    return "\n".join(lines)


@dataclass(frozen=True)
class FleetChaosConfig:
    """One fleet-scale chaos storm's parameters.

    A control fleet runs fault-free and serial; a faulted fleet runs
    the same plans in parallel under a seed-derived storm of
    ``worker_crash`` / ``worker_hang`` / ``worker_slow`` events. The
    verdict (:class:`FleetChaosReport`) asserts graceful degradation:
    every planned host completes or is recovered, and the recovered
    fleet's merged metric digest equals the uninterrupted fleet's.
    """

    seed: int
    duration_s: float = 240.0
    workers: int = 3
    #: Worker-level fault events drawn into the plan.
    worker_faults: int = 3
    size_scale: float = 0.003
    max_attempts: int = 3
    checkpoint_every_s: float = 60.0
    #: Wall-clock deadline floor per host attempt; a hung worker is
    #: killed at ``max(deadline_min_s, duration_s*deadline_per_sim_s)``.
    deadline_min_s: float = 30.0
    deadline_per_sim_s: float = 0.25


@dataclass
class FleetChaosReport:
    """Outcome of one fleet-scale chaos storm."""

    seed: int
    duration_s: float
    planned_hosts: int = 0
    completed_hosts: int = 0
    recovered_hosts: int = 0
    quarantined_hosts: int = 0
    #: Merged metric digest of the fault-free serial control fleet.
    control_digest: str = ""
    #: Merged metric digest of the faulted parallel fleet.
    faulted_digest: str = ""
    #: Per-host digest mismatches, ``"app#index: control != faulted"``.
    mismatches: Tuple[str, ...] = ()
    #: Quarantine repro hints (one line per failed host).
    quarantine_hints: Tuple[str, ...] = ()
    #: Worker fault events scheduled, per kind.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: SHA-256 of the fault plan's canonical text.
    plan_digest: str = ""
    #: Exception that escaped either rollout (repr), else None.
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        """The fleet graceful-degradation verdict."""
        return (
            self.error is None
            and self.planned_hosts > 0
            and self.completed_hosts == self.planned_hosts
            and self.quarantined_hosts == 0
            and not self.mismatches
            and self.control_digest != ""
            and self.control_digest == self.faulted_digest
        )

    def failures(self) -> Tuple[str, ...]:
        """Human-readable reasons the verdict failed (empty if passed)."""
        reasons = []
        if self.error is not None:
            reasons.append(f"unhandled error: {self.error}")
        if self.completed_hosts < self.planned_hosts:
            reasons.append(
                f"only {self.completed_hosts}/{self.planned_hosts} "
                "planned hosts completed"
            )
        if self.quarantined_hosts:
            reasons.append(
                f"{self.quarantined_hosts} host(s) quarantined"
            )
        for mismatch in self.mismatches:
            reasons.append(f"digest mismatch: {mismatch}")
        if (
            not self.mismatches
            and self.control_digest != self.faulted_digest
        ):
            reasons.append("merged fleet digests diverged")
        return tuple(reasons)

    def to_json(self) -> Dict[str, object]:
        """JSON-clean verdict document (the CI artifact)."""
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "passed": self.passed,
            "planned_hosts": self.planned_hosts,
            "completed_hosts": self.completed_hosts,
            "recovered_hosts": self.recovered_hosts,
            "quarantined_hosts": self.quarantined_hosts,
            "control_digest": self.control_digest,
            "faulted_digest": self.faulted_digest,
            "mismatches": list(self.mismatches),
            "quarantine_hints": list(self.quarantine_hints),
            "fault_counts": dict(self.fault_counts),
            "plan_digest": self.plan_digest,
            "error": self.error,
            "failures": list(self.failures()),
        }


def _fleet_chaos_plans(config: FleetChaosConfig):
    """The planned host mix for one fleet storm (small but mixed)."""
    from repro.core.fleet import HostPlan

    return [
        HostPlan(app="Feed", count=2, size_scale=config.size_scale),
        HostPlan(app="Web", count=1, size_scale=config.size_scale),
    ]


def run_fleet_chaos(config: FleetChaosConfig) -> FleetChaosReport:
    """Storm a parallel fleet; assert graceful degradation.

    Runs the same planned hosts twice: a serial fault-free control, and
    a parallel rollout under a seed-derived worker-fault storm with the
    resilience runtime recovering crashed/hung hosts from their spooled
    checkpoints. Never raises for in-run failures.
    """
    from repro.core.fleet import Fleet
    from repro.core.fleetres import FleetResilienceConfig
    from repro.sim.host import HostConfig

    report = FleetChaosReport(
        seed=config.seed, duration_s=config.duration_s,
    )
    try:
        base = HostConfig(
            ram_gb=0.25, page_size_bytes=1 * _MB, ncpu=4,
        )
        plans = _fleet_chaos_plans(config)
        planned = sum(plan.count for plan in plans)
        report.planned_hosts = planned

        control = Fleet(base_config=base, seed=config.seed).run(
            plans, config.duration_s
        )
        report.control_digest = control.merged_digest()

        fault_plan = FaultPlan.generate(
            config.seed, config.duration_s, extra_events=0,
            worker_faults=config.worker_faults, fleet_hosts=planned,
        )
        worker_events = [
            ev for ev in fault_plan.events
            if ev.target.startswith("host:")
        ]
        counts: Dict[str, int] = {}
        for ev in worker_events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        report.fault_counts = counts
        report.plan_digest = hashlib.sha256(
            fault_plan.digest_text().encode()
        ).hexdigest()

        resilience = FleetResilienceConfig(
            max_attempts=config.max_attempts,
            retry_backoff_s=0.05,
            retry_backoff_max_s=0.5,
            deadline_min_s=config.deadline_min_s,
            deadline_per_sim_s=config.deadline_per_sim_s,
            checkpoint_every_s=config.checkpoint_every_s,
        )
        faulted = Fleet(base_config=base, seed=config.seed).run(
            plans, config.duration_s, workers=config.workers,
            resilience=resilience, fault_plan=fault_plan,
        )
        report.completed_hosts = len(faulted.reports)
        report.recovered_hosts = faulted.recovered_hosts
        report.quarantined_hosts = len(faulted.failed_hosts)
        report.quarantine_hints = tuple(
            failed.repro_hint() for failed in faulted.failed_hosts
        )
        report.faulted_digest = faulted.merged_digest()

        control_by_host = {
            (r.app, r.host_index): r.metrics_digest
            for r in control.reports
        }
        mismatches = []
        for r in faulted.reports:
            expect = control_by_host.get((r.app, r.host_index))
            if expect is not None and expect != r.metrics_digest:
                mismatches.append(
                    f"{r.app}#{r.host_index}: "
                    f"{expect[:16]} != {r.metrics_digest[:16]}"
                )
        report.mismatches = tuple(mismatches)
    except Exception as exc:
        report.error = repr(exc)
    return report


def format_fleet_chaos(report: FleetChaosReport) -> str:
    """Render one fleet-chaos verdict for the CLI."""
    status = "PASS" if report.passed else "FAIL"
    counts = ", ".join(
        f"{k}={v}" for k, v in sorted(report.fault_counts.items())
    ) or "none"
    lines = [
        f"fleet-chaos seed={report.seed}: {status}",
        f"  plan: {counts} over {report.planned_hosts} hosts "
        f"(digest {report.plan_digest[:16]})",
        f"  hosts: {report.completed_hosts}/{report.planned_hosts} "
        f"completed, {report.recovered_hosts} recovered from "
        f"checkpoints, {report.quarantined_hosts} quarantined",
        f"  control digest: {report.control_digest[:16]}",
        f"  faulted digest: {report.faulted_digest[:16]}",
    ]
    for hint in report.quarantine_hints:
        lines.append(f"  !! quarantined: {hint}")
    for reason in report.failures():
        lines.append(f"  !! {reason}")
    return "\n".join(lines)


def format_report(report: ChaosReport, config: ChaosConfig) -> str:
    """Render one report for the CLI."""
    status = "PASS" if report.passed(config) else "FAIL"
    lines = [
        f"chaos seed={report.seed}: {status}",
        f"  plan: {report.scheduled_events} events, "
        f"digest {report.plan_digest[:16]}",
        f"  injected: {report.injected_events} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(report.fault_counts.items())) or 'none'})",
        f"  breaker: opened={report.breaker_opened} "
        f"reclosed={report.breaker_reclosed}",
        f"  senpai: stale_skips={report.senpai_stale_skips} "
        f"error_skips={report.senpai_error_skips}",
        f"  backend faults: swap={report.swap_faults} fs={report.fs_faults}",
        f"  rps: head={report.rps_head:.1f} tail={report.rps_tail:.1f} "
        f"recovery={report.rps_recovery:.2f}",
        f"  oom ticks: {report.oom_ticks}",
        f"  series digest: {report.series_digest[:16]}",
    ]
    for reason in report.failures(config):
        lines.append(f"  !! {reason}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the versioned chaos-verdict artifact


#: Version of the ``chaos --fleet`` / ``chaos --fleetd`` verdict
#: artifact (the CI upload). Bump on any incompatible envelope change;
#: :func:`load_chaos_verdicts` refuses mismatched versions instead of
#: misreading them.
CHAOS_VERDICT_SCHEMA_VERSION = 1


def chaos_verdict_document(
    mode: str,
    seeds: Sequence[int],
    config: Dict[str, Any],
    verdicts: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Wrap per-seed verdicts in the versioned artifact envelope.

    The envelope carries provenance — which seeds and which storm
    configuration produced the verdicts — so an archived artifact is
    reproducible on its own, like the BENCH_*.json reports.
    """
    if mode not in ("fleet", "fleetd"):
        raise ValueError(f"unknown chaos verdict mode {mode!r}")
    if len(verdicts) != len(seeds):
        raise ValueError(
            f"{len(verdicts)} verdicts for {len(seeds)} seeds"
        )
    return {
        "schema_version": CHAOS_VERDICT_SCHEMA_VERSION,
        "kind": "chaos-verdict",
        "mode": mode,
        "seeds": [int(seed) for seed in seeds],
        "config": dict(config),
        "verdicts": [dict(v) for v in verdicts],
    }


def write_chaos_verdicts(document: Dict[str, Any], path: str) -> None:
    """Write one verdict artifact (envelope from
    :func:`chaos_verdict_document`)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_chaos_verdicts(path: str) -> Dict[str, Any]:
    """Read one verdict artifact back, validating the envelope.

    Raises ``ValueError`` for a missing/foreign/mismatched envelope —
    a bare pre-versioning ``{"verdicts": [...]}`` artifact is refused
    with a pointer at its missing provenance, not silently accepted.
    """
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: verdict artifact is not an object")
    if document.get("kind") != "chaos-verdict":
        raise ValueError(
            f"{path}: kind {document.get('kind')!r} is not a chaos "
            "verdict artifact (pre-versioning artifacts lack the "
            "envelope; regenerate with `repro chaos --fleet/--fleetd`)"
        )
    version = document.get("schema_version")
    if version != CHAOS_VERDICT_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != "
            f"{CHAOS_VERDICT_SCHEMA_VERSION}"
        )
    if document.get("mode") not in ("fleet", "fleetd"):
        raise ValueError(
            f"{path}: unknown mode {document.get('mode')!r}"
        )
    seeds = document.get("seeds")
    verdicts = document.get("verdicts")
    if not isinstance(seeds, list) or not isinstance(verdicts, list):
        raise ValueError(f"{path}: seeds/verdicts must be lists")
    if len(seeds) != len(verdicts):
        raise ValueError(
            f"{path}: {len(verdicts)} verdicts for {len(seeds)} seeds"
        )
    for i, verdict in enumerate(verdicts):
        if not isinstance(verdict, dict) or "passed" not in verdict:
            raise ValueError(
                f"{path}: verdict #{i} lacks a pass/fail outcome"
            )
    if not isinstance(document.get("config"), dict):
        raise ValueError(f"{path}: config provenance missing")
    return document
