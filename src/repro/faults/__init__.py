"""repro.faults: deterministic fault injection and the chaos harness.

TMO's value proposition is not just savings in the happy path — the
paper's deployment ran across millions of machines where devices
brown out, telemetry readers hang and containers restart in storms.
This package makes those conditions first-class and *reproducible*:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a seed-derived,
  bit-reproducible schedule of :class:`FaultEvent` windows.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: a host
  controller that applies the plan through the simulator's public
  fault seams (``DeviceFaultState``, ``ControlFsFaultState``, the PSI
  telemetry freeze, the host workload-event hooks) and records every
  injection as ``faults/*`` metrics.
* :mod:`repro.faults.chaos` — the chaos harness: build a host, run a
  seeded fault schedule under the invariant checker, and report
  whether the system degraded gracefully (no crash, no accounting
  corruption, breaker opens *and* re-closes, throughput recovers).

See docs/RESILIENCE.md for the fault taxonomy and the controller
hardening this package exercises.
"""

from repro.faults.chaos import (
    ChaosConfig,
    ChaosReport,
    CrashEquivalenceReport,
    FleetChaosConfig,
    FleetChaosReport,
    run_chaos,
    run_crash_equivalence,
    run_fleet_chaos,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CONTROLLER_KINDS,
    FAULT_KINDS,
    GENERATED_KINDS,
    WORKER_KINDS,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "CONTROLLER_KINDS",
    "FAULT_KINDS",
    "GENERATED_KINDS",
    "WORKER_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "ChaosConfig",
    "ChaosReport",
    "CrashEquivalenceReport",
    "FleetChaosConfig",
    "FleetChaosReport",
    "run_chaos",
    "run_crash_equivalence",
    "run_fleet_chaos",
]
