"""Seed-derived fault schedules.

A :class:`FaultPlan` is generated once, up front, from the host seed via
:func:`~repro.sim.rng.derive_rng` — the same discipline every other
stochastic component follows — so one seed maps to exactly one fault
schedule, bit-for-bit, forever. The injector then merely replays it.

Fault taxonomy (``kind`` values; see docs/RESILIENCE.md):

========================  =====================================================
``io_error``              per-operation failures on a device (``severity`` is
                          the error probability)
``brownout``              latency inflation (``severity`` scales the
                          multiplier)
``outage``                the device is gone for the window
``wear``                  instantaneous endurance-budget consumption
                          (``severity`` is the budget fraction)
``psi_freeze``            the PSI read side serves stale values for the window
``malformed_pressure``    pressure files return unparseable text
``controlfs_error``       control-file reads/writes raise for the window
``restart``               instantaneous container restart
``spike``                 instantaneous footprint spike (``severity`` is the
                          growth fraction)
``controller_crash``      instantaneous controller death (the supervisor
                          restarts it from persisted state)
``controller_hang``       the controller stops making progress for the
                          window (heartbeats stall)
``worker_crash``          a fleet worker process dies mid-host (the
                          resilience runtime recovers the host from its
                          spooled checkpoint)
``worker_hang``           a fleet worker wedges and stops making progress;
                          the runtime kills it at the per-host deadline
``worker_slow``           a fleet worker stalls for a wall-clock interval
                          scaled by ``severity`` during the window
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.rng import derive_rng

#: The kinds ``generate`` draws from in its base loop. Kept separate
#: from :data:`FAULT_KINDS` so adding new kinds (drawn by dedicated
#: parameters) does not perturb the byte-exact plans of existing seeds.
GENERATED_KINDS: Tuple[str, ...] = (
    "io_error",
    "brownout",
    "outage",
    "wear",
    "psi_freeze",
    "malformed_pressure",
    "controlfs_error",
    "restart",
    "spike",
)

#: Kinds that hit a supervised controller (``target`` is ``"controller"``).
CONTROLLER_KINDS: Tuple[str, ...] = ("controller_crash", "controller_hang")

#: Kinds that hit a fleet worker process (``target`` is ``"host:<slot>"``
#: where ``slot`` is the host's position in canonical rollout order).
#: Consumed by :mod:`repro.core.fleetres`, not the host-level injector.
WORKER_KINDS: Tuple[str, ...] = ("worker_crash", "worker_hang",
                                 "worker_slow")

#: Every fault kind a plan may schedule.
FAULT_KINDS: Tuple[str, ...] = (
    GENERATED_KINDS + CONTROLLER_KINDS + WORKER_KINDS
)

#: Kinds that fire once at ``start_s`` rather than holding for a window.
#: ``worker_hang`` is instant too: a wedged worker never resumes on its
#: own — the hang lasts until the resilience runtime's deadline kill.
INSTANT_KINDS: Tuple[str, ...] = ("wear", "restart", "spike",
                                  "controller_crash", "worker_crash",
                                  "worker_hang")

#: Kinds that target a device (``target`` is ``"swap"`` or ``"fs"``).
DEVICE_KINDS: Tuple[str, ...] = ("io_error", "brownout", "outage")

#: Fraction of the run after which every fault has ended — the quiet
#: recovery tail the chaos harness measures throughput against.
RECOVERY_TAIL_FRAC = 0.75


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        target: what the fault hits — ``"swap"`` / ``"fs"`` for device
            kinds, ``"host"`` for telemetry kinds, a cgroup name for
            workload kinds.
        start_s: virtual time the fault begins.
        duration_s: window length; 0 for instantaneous kinds.
        severity: kind-specific magnitude in [0, 1].
    """

    kind: str
    target: str
    start_s: float
    duration_s: float
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; have {FAULT_KINDS}"
            )
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError("fault start/duration must be >= 0")
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError(
                f"severity must be in [0, 1], got {self.severity}"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def instant(self) -> bool:
        return self.kind in INSTANT_KINDS

    def active(self, now: float) -> bool:
        """Whether the window covers ``now`` (always False for instants)."""
        if self.instant:
            return False
        return self.start_s <= now < self.end_s


@dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable fault schedule for one run."""

    seed: int
    duration_s: float
    events: Tuple[FaultEvent, ...]

    def digest_text(self) -> str:
        """Canonical text form, for bit-reproducibility assertions."""
        lines = [f"plan seed={self.seed} duration_s={self.duration_s!r}"]
        for ev in self.events:
            lines.append(
                f"{ev.kind} target={ev.target} start_s={ev.start_s!r} "
                f"duration_s={ev.duration_s!r} severity={ev.severity!r}"
            )
        return "\n".join(lines)

    def worker_events(self, slot: int) -> Tuple[FaultEvent, ...]:
        """Worker-level events targeting fleet host ``slot``.

        ``slot`` is the host's position in the fleet's canonical rollout
        order (see :meth:`repro.core.fleet.Fleet._tasks`); the resilience
        runtime hands each host exactly this slice of the plan.
        """
        target = f"host:{slot}"
        return tuple(
            ev for ev in self.events
            if ev.kind in WORKER_KINDS and ev.target == target
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        duration_s: float,
        cgroups: Tuple[str, ...] = ("app",),
        extra_events: int = 6,
        controller_faults: int = 0,
        worker_faults: int = 0,
        fleet_hosts: int = 1,
    ) -> "FaultPlan":
        """Generate the schedule for ``seed``.

        Deterministic: all randomness comes from
        ``derive_rng(seed, "faults:plan")`` and is drawn in a fixed
        order, so identical arguments yield an identical plan. The
        ``controller_faults`` draws happen strictly after the base
        draws, and the ``worker_faults`` draws strictly after those,
        so plans generated with the defaults (``0``) are byte-identical
        to plans from before either parameter existed.

        ``worker_faults`` events target fleet host slots drawn
        uniformly from ``range(fleet_hosts)`` (``target`` is
        ``"host:<slot>"``); they are consumed by the fleet resilience
        runtime, not the in-host injector.

        Two structural guarantees hold for every seed:

        * one swap ``io_error`` window is long and severe enough to
          trip Senpai's circuit breaker (the chaos harness asserts the
          breaker demonstrably opens and re-closes);
        * every window ends by ``RECOVERY_TAIL_FRAC * duration_s``, so
          the run always finishes with a quiet recovery tail.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {duration_s}")
        if not cgroups:
            raise ValueError("need at least one cgroup for workload faults")
        rng = derive_rng(seed, "faults:plan")
        tail_start_s = RECOVERY_TAIL_FRAC * duration_s
        events = []

        # Guaranteed breaker-tripping window: a severe swap IO-error
        # storm early in the run, long enough to cover several Senpai
        # polling periods.
        storm_len_s = min(max(45.0, 0.1 * duration_s), 0.25 * duration_s)
        storm_start_s = float(
            rng.uniform(0.15, 0.35) * duration_s
        )
        storm_start_s = min(storm_start_s, tail_start_s - storm_len_s)
        events.append(FaultEvent(
            kind="io_error", target="swap",
            start_s=storm_start_s, duration_s=storm_len_s,
            severity=0.95,
        ))

        for _ in range(extra_events):
            kind = GENERATED_KINDS[int(rng.integers(0, len(GENERATED_KINDS)))]
            if kind in DEVICE_KINDS:
                target = "swap" if rng.random() < 0.5 else "fs"
            elif kind in ("restart", "spike"):
                target = cgroups[int(rng.integers(0, len(cgroups)))]
            elif kind == "wear":
                target = "swap"
            else:
                target = "host"
            start_s = float(rng.uniform(0.05, 0.65) * duration_s)
            if kind in INSTANT_KINDS:
                window_s = 0.0
            else:
                window_s = float(rng.uniform(10.0, 60.0))
                window_s = min(window_s, max(1.0, tail_start_s - start_s))
            if kind == "io_error":
                severity = float(rng.uniform(0.2, 0.9))
            elif kind == "brownout":
                severity = float(rng.uniform(0.3, 1.0))
            elif kind == "wear":
                severity = float(rng.uniform(0.05, 0.25))
            elif kind == "spike":
                severity = float(rng.uniform(0.05, 0.3))
            else:
                severity = 1.0
            events.append(FaultEvent(
                kind=kind, target=target, start_s=start_s,
                duration_s=window_s, severity=severity,
            ))

        # Controller faults (crash/hang against the supervisor seam) are
        # drawn after every base draw so they extend a seed's plan
        # without rewriting it.
        for _ in range(controller_faults):
            kind = CONTROLLER_KINDS[
                int(rng.integers(0, len(CONTROLLER_KINDS)))
            ]
            start_s = float(rng.uniform(0.05, 0.65) * duration_s)
            if kind in INSTANT_KINDS:
                window_s = 0.0
            else:
                window_s = float(rng.uniform(10.0, 60.0))
                window_s = min(window_s, max(1.0, tail_start_s - start_s))
            events.append(FaultEvent(
                kind=kind, target="controller", start_s=start_s,
                duration_s=window_s, severity=1.0,
            ))

        # Worker-process faults (crash/hang/slow against fleet host
        # slots) are drawn after every other draw, again so a seed's
        # existing plan is extended, never rewritten.
        if fleet_hosts < 1:
            raise ValueError(
                f"fleet_hosts must be >= 1, got {fleet_hosts}"
            )
        for _ in range(worker_faults):
            kind = WORKER_KINDS[int(rng.integers(0, len(WORKER_KINDS)))]
            slot = int(rng.integers(0, fleet_hosts))
            # Fire well inside the run, so a spooled checkpoint can
            # exist before the fault and the recovery tail after it.
            start_s = float(rng.uniform(0.1, 0.6) * duration_s)
            if kind in INSTANT_KINDS:
                window_s = 0.0
            else:
                window_s = float(rng.uniform(10.0, 60.0))
                window_s = min(window_s, max(1.0, tail_start_s - start_s))
            severity = (
                float(rng.uniform(0.3, 1.0))
                if kind == "worker_slow" else 1.0
            )
            events.append(FaultEvent(
                kind=kind, target=f"host:{slot}", start_s=start_s,
                duration_s=window_s, severity=severity,
            ))

        events.sort(key=lambda ev: (ev.start_s, ev.kind, ev.target))
        return cls(seed=seed, duration_s=duration_s, events=tuple(events))
