"""NVM and CXL-attached memory backends.

Sections 2.5 and 5.2: the fleet's offload backends are zswap and NVMe
SSD today, but "in the future we expect this to include NVM and CXL
devices". These models let the controller experiments run against that
future:

* **NVM** (Optane-style persistent memory): byte-addressable but
  kernel-managed as a swap tier here; ~2 us loads, effectively
  unlimited read endurance, finite write endurance far above SSD.
* **CXL memory**: DDR-class semantics across a CXL link; loads cost a
  fraction of a microsecond per page (link + controller latency), no
  endurance concerns. Offloading to CXL is closer to NUMA migration
  than to swapping; the fault path modelled here is the kernel's
  page-migration cost.

Both are modelled with the same per-4KiB stall scaling as the other
backends, so PSI comparisons across all tiers are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import OffloadBackend


@dataclass(frozen=True)
class FarMemorySpec:
    """Latency/endurance envelope for a byte-addressable far tier."""

    name: str
    read_us_per_4k: float
    write_us_per_4k: float
    endurance_pbw: float  # float("inf") for none
    latency_sigma: float = 0.25


#: Representative device envelopes (per 4 KiB page moved).
NVM_SPEC = FarMemorySpec(
    name="nvm", read_us_per_4k=2.0, write_us_per_4k=3.0,
    endurance_pbw=60.0,
)
CXL_SPEC = FarMemorySpec(
    name="cxl", read_us_per_4k=0.4, write_us_per_4k=0.5,
    endurance_pbw=float("inf"),
)


class FarMemoryBackend(OffloadBackend):
    """A byte-addressable far-memory tier (NVM or CXL)."""

    def __init__(
        self,
        spec: FarMemorySpec,
        rng: np.random.Generator,
        capacity_bytes: int,
    ) -> None:
        super().__init__(name=f"farmem-{spec.name}")
        if capacity_bytes <= 0:
            raise ValueError("far-memory capacity must be positive")
        self.spec = spec
        self._rng = rng
        self.capacity_bytes = capacity_bytes
        self._stored = 0
        self.endurance_bytes_written = 0

    @property
    def blocks_on_io(self) -> bool:
        # Far-memory faults resolve through page migration, not block
        # IO: they count toward memory pressure only, like zswap.
        return False

    @property
    def stored_bytes(self) -> int:
        return self._stored

    @property
    def dram_overhead_bytes(self) -> int:
        return 0  # the tier is its own physical capacity

    @property
    def free_bytes(self) -> int:
        return max(0, self.capacity_bytes - self._stored)

    @property
    def wear_fraction(self) -> float:
        if self.spec.endurance_pbw == float("inf"):
            return 0.0
        return self.endurance_bytes_written / (
            self.spec.endurance_pbw * 1e15
        )

    def _latency(self, us_per_4k: float, nbytes: int) -> float:
        pages = max(1.0, nbytes / 4096)
        jitter = float(
            self._rng.lognormal(mean=0.0, sigma=self.spec.latency_sigma)
        )
        return us_per_4k * pages * 1e-6 * jitter

    def store(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
        age_s: float = 0.0,
    ) -> float:
        if nbytes > self.free_bytes:
            raise FarMemoryFullError(
                f"{self.name}: tier full "
                f"({self._stored}/{self.capacity_bytes})"
            )
        self._stored += nbytes
        self.endurance_bytes_written += nbytes
        latency = self._latency(self.spec.write_us_per_4k, nbytes)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.write_stall_seconds += latency
        return latency

    def load(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
    ) -> float:
        latency = self._latency(self.spec.read_us_per_4k, nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.read_stall_seconds += latency
        self.stats.latencies.add(latency)
        return latency

    def free(
        self, nbytes: int, compressibility: float, page_id: int = None
    ) -> None:
        self._stored = max(0, self._stored - nbytes)


class FarMemoryFullError(RuntimeError):
    """Raised when a store would exceed the far tier's capacity."""


def make_nvm(rng: np.random.Generator, capacity_bytes: int) -> FarMemoryBackend:
    """An NVM swap tier."""
    return FarMemoryBackend(NVM_SPEC, rng, capacity_bytes)


def make_cxl(rng: np.random.Generator, capacity_bytes: int) -> FarMemoryBackend:
    """A CXL-attached memory tier."""
    return FarMemoryBackend(CXL_SPEC, rng, capacity_bytes)
