"""Compression algorithm models for zswap.

Section 5.1: the authors experimented with lzo, lz4 and zstd and chose
zstd for its ratio/overhead balance. Workload compressibility is expressed
as the ratio achieved *under zstd*; other algorithms scale that ratio down
and trade CPU time differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CompressionAlgorithm:
    """CPU cost and ratio scaling of one compression algorithm.

    Attributes:
        name: algorithm identifier.
        ratio_scale: multiplier on the workload's zstd compression ratio
            (zstd itself is 1.0; faster algorithms compress less).
        compress_us_per_4k: CPU microseconds to compress one 4 KiB page.
        decompress_us_per_4k: CPU microseconds to decompress one 4 KiB page.
    """

    name: str
    ratio_scale: float
    compress_us_per_4k: float
    decompress_us_per_4k: float

    def effective_ratio(self, zstd_ratio: float) -> float:
        """The ratio this algorithm achieves on data with ``zstd_ratio``.

        Never drops below 1.0 — incompressible data is stored raw.
        """
        return max(1.0, zstd_ratio * self.ratio_scale)


#: Models of the algorithms evaluated in Section 5.1. The latency numbers
#: are representative single-core 4 KiB-page figures; their *ordering*
#: (lz4 fastest / worst ratio, zstd slowest / best ratio) is what the
#: selection experiment exercises.
COMPRESSION_ALGORITHMS: Dict[str, CompressionAlgorithm] = {
    "lz4": CompressionAlgorithm(
        name="lz4", ratio_scale=0.75, compress_us_per_4k=1.5,
        decompress_us_per_4k=0.8,
    ),
    "lzo": CompressionAlgorithm(
        name="lzo", ratio_scale=0.80, compress_us_per_4k=2.5,
        decompress_us_per_4k=1.5,
    ),
    "zstd": CompressionAlgorithm(
        name="zstd", ratio_scale=1.0, compress_us_per_4k=6.0,
        decompress_us_per_4k=2.0,
    ),
}


def compressed_size(
    nbytes: int, zstd_ratio: float, algorithm: CompressionAlgorithm
) -> int:
    """Size of ``nbytes`` of data after compression with ``algorithm``."""
    if nbytes < 0:
        raise ValueError(f"page size cannot be negative: {nbytes}")
    ratio = algorithm.effective_ratio(zstd_ratio)
    return int(round(nbytes / ratio))
