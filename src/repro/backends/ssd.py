"""NVMe SSD device catalog and SSD-backed swap.

Figure 5 of the paper characterises seven SSD types (A oldest .. G newest)
across Meta's fleet: endurance grows with generation, IOPS is roughly
stable, and p99 read latency spans 9.3 ms down to 470 us. The catalog
below encodes that shape; Figure 12's "slow SSD" and "fast SSD" are
devices B and C respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.backends.base import IoKind, OffloadBackend
from repro.backends.device import DeviceSpec, QueuedDevice


@dataclass(frozen=True)
class SsdSpec:
    """Catalog entry for one SSD type (Figure 5).

    Attributes:
        name: device letter A..G (A oldest generation).
        endurance_pbw: rated lifetime writes in petabytes (pTBW / 1000).
        read_iops / write_iops: sustained 4 KiB operation rates.
        read_p99_us / write_p99_us: tail latency of an uncontended device.
    """

    name: str
    endurance_pbw: float
    read_iops: float
    write_iops: float
    read_p99_us: float
    write_p99_us: float

    def device_spec(self) -> DeviceSpec:
        """Derive the queueing-model spec (p50 from p99, lognormal tail)."""
        # For a lognormal with sigma, p99/p50 = exp(2.326 * sigma).
        sigma = 0.9
        tail_ratio = float(np.exp(2.326 * sigma))
        return DeviceSpec(
            name=f"ssd-{self.name}",
            read_iops=self.read_iops,
            write_iops=self.write_iops,
            read_latency_p50_us=self.read_p99_us / tail_ratio,
            write_latency_p50_us=self.write_p99_us / tail_ratio,
            latency_sigma=sigma,
        )


#: Figure 5's seven device types. Absolute values are representative of
#: the log-scale chart: endurance climbs ~20x over the generations, IOPS
#: stays within a small factor, and read p99 falls from 9.3 ms to 470 us.
SSD_CATALOG: Dict[str, SsdSpec] = {
    "A": SsdSpec("A", endurance_pbw=0.5, read_iops=90_000,
                 write_iops=35_000, read_p99_us=9300.0, write_p99_us=8000.0),
    "B": SsdSpec("B", endurance_pbw=1.0, read_iops=150_000,
                 write_iops=50_000, read_p99_us=4000.0, write_p99_us=3500.0),
    "C": SsdSpec("C", endurance_pbw=2.0, read_iops=300_000,
                 write_iops=80_000, read_p99_us=900.0, write_p99_us=1400.0),
    "D": SsdSpec("D", endurance_pbw=3.5, read_iops=400_000,
                 write_iops=100_000, read_p99_us=750.0, write_p99_us=1200.0),
    "E": SsdSpec("E", endurance_pbw=5.0, read_iops=500_000,
                 write_iops=120_000, read_p99_us=650.0, write_p99_us=1000.0),
    "F": SsdSpec("F", endurance_pbw=8.0, read_iops=600_000,
                 write_iops=150_000, read_p99_us=550.0, write_p99_us=900.0),
    "G": SsdSpec("G", endurance_pbw=10.0, read_iops=700_000,
                 write_iops=180_000, read_p99_us=470.0, write_p99_us=800.0),
}


def make_ssd_device(
    model: str, rng: np.random.Generator
) -> QueuedDevice:
    """Instantiate the queued device for catalog entry ``model``."""
    try:
        spec = SSD_CATALOG[model]
    except KeyError:
        raise KeyError(
            f"unknown SSD model {model!r}; catalog has {sorted(SSD_CATALOG)}"
        ) from None
    return QueuedDevice(spec.device_spec(), rng)


class SsdSwapBackend(OffloadBackend):
    """Swap space on an NVMe SSD.

    Pages are written out on reclaim (consuming endurance) and read back
    on major fault. Both directions go through the shared
    :class:`QueuedDevice`, so swap traffic and filesystem traffic on the
    same physical SSD contend with each other — the effect Figure 13
    traces back to bytecode refaults.
    """

    def __init__(
        self,
        model: str,
        rng: np.random.Generator,
        capacity_bytes: int,
        device: "QueuedDevice" = None,
    ) -> None:
        super().__init__(name=f"swap-ssd-{model}")
        self.spec = SSD_CATALOG[model]
        self.device = device if device is not None else make_ssd_device(model, rng)
        self.capacity_bytes = capacity_bytes
        self._stored = 0
        self.endurance_bytes_written = 0

    @property
    def blocks_on_io(self) -> bool:
        return True

    @property
    def stored_bytes(self) -> int:
        return self._stored

    @property
    def dram_overhead_bytes(self) -> int:
        return 0

    @property
    def free_bytes(self) -> int:
        return max(0, self.capacity_bytes - self._stored)

    @property
    def wear_fraction(self) -> float:
        """Share of the rated endurance budget consumed so far."""
        budget = self.spec.endurance_pbw * 1e15
        return self.endurance_bytes_written / budget

    def inject_wear(self, nbytes: int) -> None:
        """Consume ``nbytes`` of the endurance budget without a write.

        The public premature-wear seam: a fault plan can age the device
        (e.g. model a swap partition inherited from a worn fleet host)
        and Senpai's endurance modulation reacts exactly as it would to
        real writes.
        """
        if nbytes < 0:
            raise ValueError(f"wear bytes must be >= 0, got {nbytes}")
        self.endurance_bytes_written += nbytes

    def store(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
        age_s: float = 0.0,
    ) -> float:
        if nbytes > self.free_bytes:
            raise SwapFullError(
                f"{self.name}: swap full ({self._stored}/{self.capacity_bytes})"
            )
        # The device op may raise a BackendFaultError (injected fault);
        # issuing before any accounting keeps a failed store side-effect
        # free, so callers can retry or fall back safely.
        latency = self.device.issue(IoKind.WRITE, weight=max(1.0, nbytes / 4096))
        self._stored += nbytes
        self.endurance_bytes_written += nbytes
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.write_stall_seconds += latency
        self.stats.latencies.add(latency)
        return latency

    def load(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
    ) -> float:
        """Fault ``nbytes`` back in.

        A simulated page stands for ``nbytes/4096`` real 4 KiB pages;
        anonymous faults are random-access, so each constituent page
        pays its own device round-trip. The returned stall scales
        accordingly — this is what makes device speed matter to PSI.
        """
        n4k = max(1.0, nbytes / 4096)
        per_op = self.device.issue(IoKind.READ, weight=n4k)
        latency = per_op * n4k
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.read_stall_seconds += latency
        self.stats.latencies.add(per_op)
        return latency

    def free(
        self, nbytes: int, compressibility: float, page_id: int = None
    ) -> None:
        self._stored = max(0, self._stored - nbytes)

    def on_tick(self, now: float, dt: float) -> None:
        self.device.on_tick(now, dt)


class SwapFullError(RuntimeError):
    """Raised when a store would exceed the swap device's capacity."""
