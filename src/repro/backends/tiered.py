"""A tiered offload hierarchy: zswap for warm pages, SSD for cold ones.

Section 5.2 describes this as the paper's active future work: instead
of manually choosing zswap *or* SSD per application, the kernel should
manage a hierarchy — compressed memory for warmer pages, SSD for colder
or poorly-compressible pages — and balance across the pools.

Placement policy on store:

* pages whose data barely compresses (effective ratio below
  ``compress_threshold``) go straight to SSD — keeping them in the pool
  would burn DRAM for almost no saving;
* pages colder than ``cold_age_s`` (by last-touch age) go to SSD;
* everything else lands in zswap;
* when the zswap pool is full, stores spill to SSD rather than fail.

Loads and frees dispatch on the per-page placement map.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.backends.base import OffloadBackend
from repro.backends.ssd import SsdSwapBackend
from repro.backends.zswap import ZswapBackend, ZswapPoolFullError

#: Placement labels.
TIER_ZSWAP = "zswap"
TIER_SSD = "ssd"


class TieredBackend(OffloadBackend):
    """Two-level offload backend (zswap over SSD swap)."""

    def __init__(
        self,
        zswap: ZswapBackend,
        ssd: SsdSwapBackend,
        compress_threshold: float = 1.5,
        cold_age_s: float = 1800.0,
    ) -> None:
        """
        Args:
            zswap: the warm, compressed tier.
            ssd: the cold tier.
            compress_threshold: minimum effective compression ratio for
                a page to be worth pool DRAM.
            cold_age_s: last-touch age beyond which a page goes straight
                to the SSD tier.
        """
        super().__init__(name=f"tiered({zswap.name}+{ssd.name})")
        self.zswap = zswap
        self.ssd = ssd
        self.compress_threshold = compress_threshold
        self.cold_age_s = cold_age_s
        self._placement: Dict[int, str] = {}
        self.spilled_stores = 0

    # ------------------------------------------------------------------
    # placement

    def choose_tier(self, compressibility: float, age_s: float) -> str:
        """The placement policy (before capacity fallbacks)."""
        ratio = self.zswap.algorithm.effective_ratio(compressibility)
        if ratio < self.compress_threshold:
            return TIER_SSD
        if age_s >= self.cold_age_s:
            return TIER_SSD
        return TIER_ZSWAP

    def tier_of(self, page_id: int) -> Optional[str]:
        """Where a stored page currently lives (None if unknown)."""
        return self._placement.get(page_id)

    # ------------------------------------------------------------------
    # backend interface

    @property
    def blocks_on_io(self) -> bool:
        # Per-page: the memory manager consults tier_of() instead; this
        # is the conservative default for code that cannot.
        return True

    @property
    def stored_bytes(self) -> int:
        return self.zswap.stored_bytes + self.ssd.stored_bytes

    @property
    def dram_overhead_bytes(self) -> int:
        return self.zswap.dram_overhead_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining capacity, counting the SSD tier (the deep pool)."""
        return self.ssd.free_bytes

    @property
    def endurance_bytes_written(self) -> int:
        return self.ssd.endurance_bytes_written

    def store(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
        age_s: float = 0.0,
    ) -> float:
        if page_id is None:
            raise ValueError(
                "the tiered backend requires page identity for placement"
            )
        tier = self.choose_tier(compressibility, age_s)
        if tier == TIER_ZSWAP:
            try:
                cost = self.zswap.store(
                    nbytes, compressibility, now, page_id=page_id,
                    age_s=age_s,
                )
            except ZswapPoolFullError:
                tier = TIER_SSD
                self.spilled_stores += 1
        if tier == TIER_SSD:
            cost = self.ssd.store(
                nbytes, compressibility, now, page_id=page_id, age_s=age_s
            )
        self._placement[page_id] = tier
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        return cost

    def load(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
    ) -> float:
        tier = self._require_placement(page_id)
        backend = self.zswap if tier == TIER_ZSWAP else self.ssd
        latency = backend.load(
            nbytes, compressibility, now, page_id=page_id
        )
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        return latency

    def free(
        self, nbytes: int, compressibility: float, page_id: int = None
    ) -> None:
        tier = self._require_placement(page_id)
        backend = self.zswap if tier == TIER_ZSWAP else self.ssd
        backend.free(nbytes, compressibility, page_id=page_id)
        del self._placement[page_id]

    def _require_placement(self, page_id) -> str:
        if page_id is None:
            raise ValueError("the tiered backend requires page identity")
        tier = self._placement.get(page_id)
        if tier is None:
            raise KeyError(
                f"page {page_id} is not stored in the tiered backend"
            )
        return tier

    def on_tick(self, now: float, dt: float) -> None:
        self.zswap.on_tick(now, dt)
        self.ssd.on_tick(now, dt)

    # ------------------------------------------------------------------
    # introspection

    def tier_counts(self) -> Dict[str, int]:
        """How many pages each tier currently holds."""
        counts = {TIER_ZSWAP: 0, TIER_SSD: 0}
        for tier in self._placement.values():
            counts[tier] += 1
        return counts
