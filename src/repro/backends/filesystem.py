"""The filesystem read path.

Evicted file-cache pages are not "stored" anywhere by reclaim — their
backing data already lives in the filesystem. Dropping a clean page is
free; a dirty page costs a writeback; reading the page back on fault (a
refault, when it was recently resident) costs an SSD read. The
filesystem shares its physical device with swap when both live on the
same SSD, which is the production layout in Figure 6.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import IoKind, OffloadBackend
from repro.backends.device import QueuedDevice
from repro.backends.ssd import make_ssd_device


class FilesystemBackend(OffloadBackend):
    """Backing store for file pages on an SSD filesystem."""

    def __init__(
        self,
        model: str,
        rng: np.random.Generator,
        device: "QueuedDevice" = None,
    ) -> None:
        super().__init__(name=f"fs-ssd-{model}")
        self.device = device if device is not None else make_ssd_device(model, rng)

    @property
    def blocks_on_io(self) -> bool:
        return True

    @property
    def stored_bytes(self) -> int:
        return 0  # file data always lives in the filesystem

    @property
    def dram_overhead_bytes(self) -> int:
        return 0

    def store(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
        age_s: float = 0.0,
    ) -> float:
        """Write back a dirty file page; clean drops should not call this."""
        latency = self.device.issue(IoKind.WRITE, weight=max(1.0, nbytes / 4096))
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.write_stall_seconds += latency
        return latency

    #: File reads benefit from the kernel's readahead: sequentially
    #: adjacent pages are fetched in large chunks, so a simulated page
    #: costs one device round-trip per readahead window, not per 4 KiB.
    #: (Section 3.2.4 notes readahead "shields the application to
    #: varying degrees" — the asymmetry with random-access swap-ins.)
    READAHEAD_BYTES = 128 * 1024

    def load(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
    ) -> float:
        """Read a file page from the filesystem on (re)fault."""
        chunks = max(1.0, nbytes / self.READAHEAD_BYTES)
        per_op = self.device.issue(IoKind.READ, weight=max(1.0, nbytes / 4096))
        latency = per_op * chunks
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.read_stall_seconds += latency
        self.stats.latencies.add(per_op)
        return latency

    def free(
        self, nbytes: int, compressibility: float, page_id: int = None
    ) -> None:
        """Nothing to release — the filesystem retains the data."""

    def on_tick(self, now: float, dt: float) -> None:
        self.device.on_tick(now, dt)
