"""Common backend interface.

An offload backend stores pages evicted from DRAM and loads them back on
fault. The controller never sees backend internals — only the latency of
each operation, which is what shapes PSI, and aggregate statistics.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


class IoKind(enum.Enum):
    """Direction of a backend operation."""

    READ = "read"
    WRITE = "write"


class BackendFaultError(RuntimeError):
    """A transient backend/device fault (injected or modelled).

    Consumers must treat these as retryable: the page involved is
    *not* lost, the operation simply did not happen. The memory
    manager maps load faults to refault-with-retry and store faults
    to "keep the page resident" (see :mod:`repro.faults`).
    """


class BackendIOError(BackendFaultError):
    """One operation failed (media error, command timeout)."""


class BackendUnavailableError(BackendFaultError):
    """The device is temporarily gone (link drop, controller reset)."""


@dataclass
class DeviceStats:
    """Aggregate operation counters for one backend."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_stall_seconds: float = 0.0
    write_stall_seconds: float = 0.0
    latencies: "LatencyReservoir" = field(default_factory=lambda: LatencyReservoir())


class LatencyReservoir:
    """Fixed-size reservoir of recent operation latencies for percentiles.

    Keeps the most recent ``capacity_entries`` samples (a sliding window, not a
    random reservoir): the experiments plot latency percentiles over time
    windows, so recency is what matters.
    """

    def __init__(self, capacity_entries: int = 4096) -> None:
        if capacity_entries < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity_entries = capacity_entries
        self._buf = np.empty(  # tmo-lint: transient -- via set_samples()
            capacity_entries, dtype=np.float64
        )
        self._count = 0  # tmo-lint: transient -- restored by set_samples()
        self._next = 0

    def add(self, latency_s: float) -> None:
        if self._count < self.capacity_entries:
            self._buf[self._count] = latency_s
            self._count += 1
        else:
            self._buf[self._next] = latency_s
            self._next = (self._next + 1) % self.capacity_entries

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile as an exact order statistic.

        Uses an O(n) selection (``np.partition``) instead of sorting the
        window; returns the same sample ``sorted(samples)[idx]`` would.
        """
        n = self._count
        if n == 0:
            return 0.0
        idx = min(n - 1, int(round(q / 100.0 * (n - 1))))
        return float(np.partition(self._buf[:n], idx)[idx])

    def samples(self) -> list:
        """The current window's samples as a list (insertion order)."""
        return self._buf[: self._count].tolist()

    def set_samples(self, samples: Sequence[float], next_slot: int) -> None:
        """Restore the window contents (checkpoint codec seam)."""
        n = len(samples)
        if n > self.capacity_entries:
            raise ValueError(
                f"{n} samples exceed reservoir capacity "
                f"{self.capacity_entries}"
            )
        self._buf = np.empty(self.capacity_entries, dtype=np.float64)
        self._buf[:n] = samples
        self._count = n
        self._next = int(next_slot)

    def __len__(self) -> int:
        return self._count


class OffloadBackend(abc.ABC):
    """A slow-memory tier that holds offloaded pages.

    Latencies returned by :meth:`store` and :meth:`load` are what the
    faulting (or reclaiming) task stalls for; the host feeds them into PSI.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = DeviceStats()

    @property
    @abc.abstractmethod
    def blocks_on_io(self) -> bool:
        """Whether loads from this backend are block-IO stalls.

        SSD swap-ins block on the block layer (memory *and* IO pressure);
        zswap decompression happens in DRAM (memory pressure only).
        """

    @abc.abstractmethod
    def store(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
        age_s: float = 0.0,
    ) -> float:
        """Offload ``nbytes`` of page data; return the stall latency in
        seconds charged to the reclaiming context.

        Args:
            nbytes: uncompressed page bytes being offloaded.
            compressibility: the page's compression ratio under zstd
                (e.g. 4.0 for Web heap, 1.35 for quantised ML model data).
            now: current virtual time.
            page_id: identity of the stored page. Single-tier backends
                ignore it; the tiered backend keys placement on it.
            age_s: how long ago the page was last touched — a coldness
                hint for placement-aware backends.
        """

    @abc.abstractmethod
    def load(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
    ) -> float:
        """Fault ``nbytes`` back in; return the stall latency in seconds."""

    @abc.abstractmethod
    def free(
        self, nbytes: int, compressibility: float, page_id: int = None
    ) -> None:
        """Release the backend space of a page (e.g. after swap-in or exit)."""

    @property
    @abc.abstractmethod
    def stored_bytes(self) -> int:
        """Bytes of backend capacity currently occupied."""

    @property
    @abc.abstractmethod
    def dram_overhead_bytes(self) -> int:
        """DRAM consumed by the backend itself (nonzero only for zswap)."""

    def on_tick(self, now: float, dt: float) -> None:
        """Advance time-dependent device state (queue drain, rate windows)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
