"""Offload backends: the slow-memory tiers that hold offloaded pages.

The paper's fleet offloads to two backends (Section 2.5): NVMe SSDs
(swap + filesystem) and a zswap compressed memory pool. Both are modelled
here as devices that expose exactly what the kernel and Senpai observe:
per-operation latency (inflated under contention), throughput limits, and
— for SSDs — a finite write-endurance budget.
"""

from repro.backends.base import DeviceStats, IoKind, OffloadBackend
from repro.backends.compression import (
    COMPRESSION_ALGORITHMS,
    CompressionAlgorithm,
    compressed_size,
)
from repro.backends.device import QueuedDevice
from repro.backends.filesystem import FilesystemBackend
from repro.backends.nvm import (
    CXL_SPEC,
    NVM_SPEC,
    FarMemoryBackend,
    make_cxl,
    make_nvm,
)
from repro.backends.tiered import TieredBackend
from repro.backends.ssd import (
    SSD_CATALOG,
    SsdSpec,
    SsdSwapBackend,
    make_ssd_device,
)
from repro.backends.zswap import (
    ZSWAP_ALLOCATORS,
    ZswapAllocator,
    ZswapBackend,
)

__all__ = [
    "COMPRESSION_ALGORITHMS",
    "CompressionAlgorithm",
    "DeviceStats",
    "FilesystemBackend",
    "IoKind",
    "OffloadBackend",
    "QueuedDevice",
    "SSD_CATALOG",
    "SsdSpec",
    "SsdSwapBackend",
    "TieredBackend",
    "FarMemoryBackend",
    "CXL_SPEC",
    "NVM_SPEC",
    "make_cxl",
    "make_nvm",
    "ZSWAP_ALLOCATORS",
    "ZswapAllocator",
    "ZswapBackend",
    "compressed_size",
    "make_ssd_device",
]
