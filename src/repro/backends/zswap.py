"""zswap: a compressed in-DRAM pool for anonymous pages.

Instead of writing a reclaimed anonymous page to a swap partition, the
kernel compresses it and keeps it in RAM (Section 3.4.1). Faults still
occur, but resolve by decompression — roughly 40 us at p90 versus
hundreds of microseconds to milliseconds for an SSD — and the memory
saving per page is ``page_size_bytes * (1 - 1/effective_ratio)`` minus
allocator slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.backends.base import (
    BackendIOError,
    BackendUnavailableError,
    OffloadBackend,
)
from repro.backends.compression import (
    COMPRESSION_ALGORITHMS,
    CompressionAlgorithm,
    compressed_size,
)
from repro.backends.device import DeviceFaultState


@dataclass(frozen=True)
class ZswapAllocator:
    """A zswap pool allocator model (Section 5.1's selection study).

    Attributes:
        name: allocator identifier.
        max_pages_per_page: hard cap on how many compressed pages can
            share one physical page — zbud packs at most 2, z3fold at
            most 3, zsmalloc is unbounded (size-class slabs).
        packing_efficiency: fraction of a physical page's bytes usable
            for compressed payloads (slab/metadata overhead).
    """

    name: str
    max_pages_per_page: float
    packing_efficiency: float

    def stored_footprint(self, nbytes: int, compressed: int) -> int:
        """Physical DRAM consumed to store one compressed page.

        The per-page footprint is the compressed size inflated by packing
        overhead, but never better than the allocator's per-page cap
        allows (``nbytes / max_pages_per_page``).
        """
        footprint = compressed / self.packing_efficiency
        floor = nbytes / self.max_pages_per_page
        return int(round(min(float(nbytes), max(footprint, floor))))


#: The three allocators evaluated in Section 5.1. zsmalloc gives the
#: densest pool, which is why the paper's deployment selected it.
ZSWAP_ALLOCATORS: Dict[str, ZswapAllocator] = {
    "zbud": ZswapAllocator("zbud", max_pages_per_page=2.0,
                           packing_efficiency=0.98),
    "z3fold": ZswapAllocator("z3fold", max_pages_per_page=3.0,
                             packing_efficiency=0.95),
    "zsmalloc": ZswapAllocator("zsmalloc", max_pages_per_page=16.0,
                               packing_efficiency=0.90),
}


class ZswapBackend(OffloadBackend):
    """The compressed memory pool.

    Production config (Section 5.1): zstd + zsmalloc. The pool's bytes
    count as DRAM use on the host (``dram_overhead_bytes``), so the net
    saving of offloading a page is automatically its size minus its
    compressed footprint.
    """

    #: Fixed software path cost added to every fault resolution, on top
    #: of the per-byte decompression time. Puts the p90 load latency in
    #: the ~40 us range the paper quotes for 4 KiB pages.
    _FAULT_PATH_US = 25.0

    def __init__(
        self,
        rng: np.random.Generator,
        algorithm: str = "zstd",
        allocator: str = "zsmalloc",
        max_pool_bytes: int = None,
    ) -> None:
        super().__init__(name=f"zswap-{algorithm}-{allocator}")
        if algorithm not in COMPRESSION_ALGORITHMS:
            raise KeyError(
                f"unknown compression algorithm {algorithm!r}; "
                f"have {sorted(COMPRESSION_ALGORITHMS)}"
            )
        if allocator not in ZSWAP_ALLOCATORS:
            raise KeyError(
                f"unknown zswap allocator {allocator!r}; "
                f"have {sorted(ZSWAP_ALLOCATORS)}"
            )
        self.algorithm: CompressionAlgorithm = COMPRESSION_ALGORITHMS[algorithm]
        self.allocator: ZswapAllocator = ZSWAP_ALLOCATORS[allocator]
        self.max_pool_bytes = max_pool_bytes
        self._rng = rng
        self._pool_bytes = 0
        self._logical_bytes = 0
        self.compress_cpu_seconds = 0.0
        self.decompress_cpu_seconds = 0.0
        #: Fault-injection seam (allocator failures, slow compression
        #: under CPU contention, pool corruption windows); healthy by
        #: default, in which case no extra randomness is consumed.
        self.faults = DeviceFaultState()

    def _check_faults(self, op: str) -> None:
        if not self.faults.available:
            raise BackendUnavailableError(
                f"{self.name}: pool unavailable (injected outage)"
            )
        if self.faults.io_error_rate > 0.0 and (
            float(self._rng.random()) < self.faults.io_error_rate
        ):
            raise BackendIOError(
                f"{self.name}: {op} failed (injected fault)"
            )

    @property
    def blocks_on_io(self) -> bool:
        return False

    @property
    def stored_bytes(self) -> int:
        """Uncompressed bytes logically held by the pool."""
        return self._logical_bytes

    @property
    def pool_bytes(self) -> int:
        """Physical DRAM bytes the compressed pool occupies."""
        return self._pool_bytes

    @property
    def dram_overhead_bytes(self) -> int:
        return self._pool_bytes

    def footprint_of(self, nbytes: int, compressibility: float) -> int:
        """DRAM footprint a page of ``nbytes`` would occupy in the pool."""
        compressed = compressed_size(nbytes, compressibility, self.algorithm)
        return self.allocator.stored_footprint(nbytes, compressed)

    def store(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
        age_s: float = 0.0,
    ) -> float:
        footprint = self.footprint_of(nbytes, compressibility)
        if (
            self.max_pool_bytes is not None
            and self._pool_bytes + footprint > self.max_pool_bytes
        ):
            raise ZswapPoolFullError(
                f"{self.name}: pool full "
                f"({self._pool_bytes}/{self.max_pool_bytes})"
            )
        self._check_faults("store")
        self._pool_bytes += footprint
        self._logical_bytes += nbytes
        pages = max(1.0, nbytes / 4096)
        compress_s = (
            self.algorithm.compress_us_per_4k * pages * 1e-6
            * self.faults.latency_multiplier
        )
        self.compress_cpu_seconds += compress_s
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.write_stall_seconds += compress_s
        return compress_s

    def load(
        self,
        nbytes: int,
        compressibility: float,
        now: float,
        page_id: int = None,
    ) -> float:
        """Fault ``nbytes`` back in by decompression.

        Each constituent 4 KiB page pays the software fault path plus
        its decompression time (~40 us at p90, per the paper), so the
        stall scales with the simulated page's size like the SSD path.
        """
        self._check_faults("load")
        pages = max(1.0, nbytes / 4096)
        base_us = (
            self._FAULT_PATH_US
            + self.algorithm.decompress_us_per_4k
        ) * pages
        latency = base_us * 1e-6 * float(
            self._rng.lognormal(mean=0.0, sigma=0.35)
        ) * self.faults.latency_multiplier
        self.decompress_cpu_seconds += latency
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.read_stall_seconds += latency
        self.stats.latencies.add(latency)
        return latency

    def free(
        self, nbytes: int, compressibility: float, page_id: int = None
    ) -> None:
        footprint = self.footprint_of(nbytes, compressibility)
        self._pool_bytes = max(0, self._pool_bytes - footprint)
        self._logical_bytes = max(0, self._logical_bytes - nbytes)


class ZswapPoolFullError(RuntimeError):
    """Raised when a store would exceed the configured pool limit."""
