"""A queued block device.

Models what the paper's experiments actually observe from an SSD: base
latency per operation, a throughput ceiling (IOPS), and latency inflation
as the device saturates. We use an open-loop M/M/1-style inflation factor
``1 / (1 - rho)`` on a utilisation estimate smoothed over a short window,
capped to keep the simulation stable when demand exceeds capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import (
    BackendIOError,
    BackendUnavailableError,
    IoKind,
)

#: Utilisation at which latency inflation is clamped.
_RHO_CAP = 0.95


@dataclass
class DeviceFaultState:
    """The public fault-injection seam of a device or backend.

    A :class:`~repro.faults.injector.FaultInjector` (or a test) mutates
    these fields to model degraded hardware; the device consults them on
    every operation. All fields at their defaults means a healthy
    device, and the operation path then consumes no extra randomness —
    so fault-free runs are bit-identical with or without an injector
    attached.

    Attributes:
        latency_multiplier: scales every sampled latency (brownout).
        io_error_rate: per-operation probability of a
            :class:`~repro.backends.base.BackendIOError` (0 disables).
        available: when False every operation raises
            :class:`~repro.backends.base.BackendUnavailableError`.
    """

    latency_multiplier: float = 1.0
    io_error_rate: float = 0.0
    available: bool = True

    def clear(self) -> None:
        """Reset to the healthy-device defaults."""
        self.latency_multiplier = 1.0
        self.io_error_rate = 0.0
        self.available = True

    @property
    def healthy(self) -> bool:
        return (
            self.latency_multiplier == 1.0
            and self.io_error_rate == 0.0
            and self.available
        )


@dataclass(frozen=True)
class DeviceSpec:
    """Performance envelope of a block device."""

    name: str
    read_iops: float
    write_iops: float
    read_latency_p50_us: float
    write_latency_p50_us: float
    #: Lognormal sigma of per-op latency; sets the p50->p99 spread.
    latency_sigma: float = 0.9


class QueuedDevice:
    """Tracks utilisation and draws per-operation latencies.

    The device smooths its operation rate with an exponential window
    (default 5 s) and inflates latency by ``1/(1-rho)``. Latency samples
    are lognormal around the inflated median, which reproduces the long
    tails the paper reports for the slower SSD generations.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        rng: np.random.Generator,
        util_window_s: float = 5.0,
    ) -> None:
        self.spec = spec
        self._rng = rng
        self._util_window = util_window_s
        self._read_rate = 0.0  # smoothed ops/s
        self._write_rate = 0.0
        self._pending_reads = 0.0  # ops issued since last tick
        self._pending_writes = 0.0
        #: Fault-injection seam; healthy by default.
        self.faults = DeviceFaultState()

    # ------------------------------------------------------------------

    def on_tick(self, now: float, dt: float) -> None:
        """Fold operations issued during the last ``dt`` into the rates."""
        if dt <= 0:
            return
        alpha = min(1.0, dt / self._util_window)
        self._read_rate += (self._pending_reads / dt - self._read_rate) * alpha
        self._write_rate += (
            self._pending_writes / dt - self._write_rate
        ) * alpha
        self._pending_reads = 0.0
        self._pending_writes = 0.0

    @property
    def utilization(self) -> float:
        """Combined utilisation estimate in [0, 1]."""
        rho = (
            self._read_rate / self.spec.read_iops
            + self._write_rate / self.spec.write_iops
        )
        return min(_RHO_CAP, rho)

    def _base_latency_us(self, kind: IoKind) -> float:
        if kind is IoKind.READ:
            return self.spec.read_latency_p50_us
        return self.spec.write_latency_p50_us

    def issue(self, kind: IoKind, weight: float = 1.0) -> float:
        """Issue one (weighted) operation; return its latency in seconds.

        Args:
            kind: read or write.
            weight: how many real operations this sampled operation stands
                for (the simulator samples accesses; rates must reflect
                the true operation count).
        """
        # Fault checks come first: a failed operation never reaches the
        # queue, so accounting is only mutated by successful ops.
        if not self.faults.available:
            raise BackendUnavailableError(
                f"{self.spec.name}: device unavailable (injected outage)"
            )
        if self.faults.io_error_rate > 0.0 and (
            float(self._rng.random()) < self.faults.io_error_rate
        ):
            raise BackendIOError(
                f"{self.spec.name}: {kind.value} failed (injected IO error)"
            )
        if kind is IoKind.READ:
            self._pending_reads += weight
        else:
            self._pending_writes += weight
        inflation = 1.0 / (1.0 - self.utilization)
        median_us = self._base_latency_us(kind) * inflation
        sample_us = median_us * float(
            self._rng.lognormal(mean=0.0, sigma=self.spec.latency_sigma)
        )
        return sample_us * self.faults.latency_multiplier * 1e-6

    def expected_latency(self, kind: IoKind, percentile: float = 50.0) -> float:
        """Analytic latency at ``percentile`` under current utilisation (s)."""
        from math import exp

        inflation = 1.0 / (1.0 - self.utilization)
        median_us = (
            self._base_latency_us(kind)
            * inflation
            * self.faults.latency_multiplier
        )
        # Lognormal quantile: median * exp(sigma * z_q).
        z = _norm_ppf(percentile / 100.0)
        return median_us * exp(self.spec.latency_sigma * z) * 1e-6


def _norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Avoids a scipy dependency in the core library; accurate to ~1e-9,
    far beyond what the latency model needs.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"percentile fraction must be in (0, 1), got {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = (-2.0 * _ln(p)) ** 0.5
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = (-2.0 * _ln(1.0 - p)) ** 0.5
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                  + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q
                             + 1))
    q = p - 0.5
    r = q * q
    return ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
             + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1))


def _ln(x: float) -> float:
    from math import log

    return log(x)
