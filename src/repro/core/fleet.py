"""Fleet rollout harness.

Section 4.1 reports TMO's fleet-wide savings: 7-19% of resident memory
per application (backend-dependent) plus ~13% of server memory from the
datacenter and microservice taxes, for 20-32% total. This module runs
many seeded host instances — each carrying one application container and
its tax sidecars under Senpai — and aggregates per-application and
fleet-level savings.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.senpai import Senpai, SenpaiConfig
from repro.kernel.mm import MemoryManager
from repro.sim.host import Host, HostConfig
from repro.sim.metrics import metrics_digest
from repro.sim.rng import derive_seed
from repro.workloads.apps import APP_CATALOG, AppProfile
from repro.workloads.base import Workload
from repro.workloads.tax import TAX_PROFILES, TaxWorkload
from repro.workloads.web import WebWorkload

_GB = 1 << 30


def cgroup_memory_savings(mm: MemoryManager, cgroup_name: str) -> Dict[str, float]:
    """Savings accounting for one container.

    The baseline footprint is what the container would occupy without
    TMO: its resident bytes plus everything currently offloaded. The
    real DRAM saving nets out the zswap pool's physical footprint,
    attributed to the container by its share of the pool's logical
    content.

    Returns a dict with ``baseline_bytes``, ``saved_bytes``,
    ``savings_frac``, ``saved_anon_bytes`` and ``saved_file_bytes``.
    """
    cg = mm.cgroup(cgroup_name)
    offloaded_anon = cg.swap_bytes + cg.zswap_bytes
    # File-cache savings: pages reclaim evicted that the workload has
    # not needed back. Their shadow entries are exactly that set — a
    # shadow is installed on eviction and consumed on refault.
    saved_file = len(cg.shadow) * cg.page_size_bytes
    baseline = cg.resident_bytes + offloaded_anon + saved_file
    pool_overhead = 0.0
    if cg.zswap_bytes > 0 and mm.swap_backend is not None:
        total_logical = sum(c.zswap_bytes for c in mm.cgroups())
        if total_logical > 0:
            pool_overhead = mm.zswap_pool_bytes * (
                cg.zswap_bytes / total_logical
            )
    saved_anon = max(0.0, offloaded_anon - pool_overhead)
    saved = saved_anon + saved_file
    return {
        "baseline_bytes": float(baseline),
        "saved_bytes": saved,
        "savings_frac": saved / baseline if baseline > 0 else 0.0,
        "saved_anon_bytes": saved_anon,
        "saved_file_bytes": float(saved_file),
        "offloaded_bytes": float(offloaded_anon),
        "pool_overhead_bytes": pool_overhead,
    }


@dataclass(frozen=True)
class HostPlan:
    """One slice of the fleet: ``count`` hosts running ``app``."""

    app: str
    count: int = 1
    backend: Optional[str] = None  # None -> the profile's preference
    size_scale: float = 1.0
    include_tax: bool = True
    senpai: SenpaiConfig = field(default_factory=SenpaiConfig)


@dataclass
class HostReport:
    """Savings measured on one host at the end of its run."""

    app: str
    backend: str
    host_index: int
    ram_bytes: int
    app_baseline_bytes: float
    app_saved_bytes: float
    tax_saved_bytes: float
    #: SHA-256 over the host's full metric recorder (see
    #: :func:`repro.sim.metrics.metrics_digest`): the parallel-vs-serial
    #: equivalence token. Identical seeds must yield identical digests
    #: regardless of worker count.
    metrics_digest: str = ""
    #: Pages reclaimed on this host over the run (sum of per-cgroup
    #: ``pgsteal``); the benchmark harness reports fleet reclaim rates
    #: from this.
    pgsteal: int = 0

    @property
    def app_savings_frac(self) -> float:
        """App savings normalised to the app's resident baseline
        (Figure 9's normalisation)."""
        if self.app_baseline_bytes <= 0:
            return 0.0
        return self.app_saved_bytes / self.app_baseline_bytes

    @property
    def tax_savings_frac_of_ram(self) -> float:
        """Tax savings normalised to server memory (Figure 10)."""
        return self.tax_saved_bytes / self.ram_bytes

    @property
    def total_savings_frac_of_ram(self) -> float:
        return (self.app_saved_bytes + self.tax_saved_bytes) / self.ram_bytes


@dataclass(frozen=True)
class FailedHost:
    """One host that raised during a fleet rollout.

    The rollout continues past it (one bad host must not abort a
    fleet-wide experiment); the failure is recorded here and the
    aggregates are flagged partial.
    """

    app: str
    host_index: int
    error: str


@dataclass
class FleetResult:
    """Aggregated savings across all hosts of a fleet run."""

    reports: List[HostReport] = field(default_factory=list)
    failed_hosts: List[FailedHost] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        """Whether any host failed, making the aggregates partial."""
        return bool(self.failed_hosts)

    def apps(self) -> List[str]:
        seen: List[str] = []
        for report in self.reports:
            if report.app not in seen:
                seen.append(report.app)
        return seen

    def _mean(self, values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def app_savings(self, app: str) -> float:
        return self._mean(
            [r.app_savings_frac for r in self.reports if r.app == app]
        )

    def tax_savings_of_ram(self) -> float:
        return self._mean([r.tax_savings_frac_of_ram for r in self.reports])

    def total_savings_of_ram(self) -> float:
        return self._mean(
            [r.total_savings_frac_of_ram for r in self.reports]
        )


def build_fleet_host(
    base_config: HostConfig, fleet_seed: int, plan: HostPlan, index: int
) -> Host:
    """Construct one planned fleet host with its derived seed.

    Module-level (not a :class:`Fleet` method) so worker processes can
    rebuild hosts from nothing but the picklable plan dataclasses.
    """
    profile = APP_CATALOG[plan.app]
    backend = plan.backend or profile.preferred_backend
    config = replace(
        base_config,
        backend=backend,
        seed=derive_seed(fleet_seed, f"host:{plan.app}:{index}"),
    )
    host = Host(config)
    if profile.name == "Web":
        host.add_workload(
            WebWorkload, name="app", size_scale=plan.size_scale
        )
    else:
        host.add_workload(
            Workload, profile=profile, name="app",
            size_scale=plan.size_scale,
        )
    if plan.include_tax:
        # Tax profiles are sized per 64 GB host; rescale to this host.
        tax_scale = (
            config.ram_bytes / (64.0 * _GB)
        )
        for kind in TAX_PROFILES:
            slug = kind.lower().replace(" ", "-")
            host.add_workload(
                TaxWorkload, name=slug, kind=kind,
                size_scale=tax_scale,
            )
    host.add_controller(Senpai(plan.senpai))
    return host


def _run_fleet_host(
    base_config: HostConfig,
    fleet_seed: int,
    plan: HostPlan,
    index: int,
    duration_s: float,
) -> Union[HostReport, FailedHost]:
    """Build, run and measure one fleet host; never raises.

    The single unit of work shared by the serial and parallel paths, so
    a host's outcome — savings, digest, or failure record — cannot
    depend on which path executed it. Failure isolation: one host
    raising (OOM during build, an invariant violation mid-run) must not
    abort the rest of the rollout.
    """
    profile = APP_CATALOG[plan.app]
    try:
        host = build_fleet_host(base_config, fleet_seed, plan, index)
        host.run(duration_s)
        app_stats = cgroup_memory_savings(host.mm, "app")
        tax_saved = 0.0
        if plan.include_tax:
            for kind in TAX_PROFILES:
                slug = kind.lower().replace(" ", "-")
                tax_saved += cgroup_memory_savings(
                    host.mm, slug
                )["saved_bytes"]
        return HostReport(
            app=plan.app,
            backend=plan.backend or profile.preferred_backend,
            host_index=index,
            ram_bytes=host.config.ram_bytes,
            app_baseline_bytes=app_stats["baseline_bytes"],
            app_saved_bytes=app_stats["saved_bytes"],
            tax_saved_bytes=tax_saved,
            metrics_digest=metrics_digest(host.metrics),
            pgsteal=sum(
                cg.vmstat.pgsteal for cg in host.mm.cgroups()
            ),
        )
    except Exception as exc:
        return FailedHost(
            app=plan.app, host_index=index, error=repr(exc),
        )


class Fleet:
    """Runs a set of :class:`HostPlan` slices and aggregates savings."""

    def __init__(
        self,
        base_config: HostConfig = HostConfig(),
        seed: int = 7,
    ) -> None:
        self.base_config = base_config
        self.seed = seed

    def _build_host(
        self, plan: HostPlan, profile: AppProfile, index: int
    ) -> Host:
        return build_fleet_host(self.base_config, self.seed, plan, index)

    def _tasks(
        self, plans: Sequence[HostPlan]
    ) -> List[Tuple[HostPlan, int]]:
        """Every (plan, host index) pair, in canonical rollout order."""
        return [
            (plan, index)
            for plan in plans
            for index in range(plan.count)
        ]

    def run(
        self,
        plans: Sequence[HostPlan],
        duration_s: float,
        workers: Optional[int] = None,
    ) -> FleetResult:
        """Execute every planned host for ``duration_s`` of virtual time.

        With ``workers`` > 1 the hosts fan out over a process pool.
        Hosts are fully independent — every host's RNG streams derive
        from ``derive_seed(fleet_seed, "host:<app>:<index>")``, never
        from shared state — and outcomes are merged back in canonical
        rollout order, so a parallel run's reports, failures and metric
        digests are identical to the serial run's, bit for bit. A worker
        process dying mid-host (not just raising) is contained the same
        way a host exception is: the affected hosts become
        :class:`FailedHost` records and the rollout stays partial
        rather than raising.
        """
        tasks = self._tasks(plans)
        if workers is None or workers <= 1:
            outcomes = [
                _run_fleet_host(
                    self.base_config, self.seed, plan, index, duration_s
                )
                for plan, index in tasks
            ]
        else:
            outcomes = self._run_parallel(tasks, duration_s, workers)

        result = FleetResult()
        for (plan, index), outcome in zip(tasks, outcomes):
            if isinstance(outcome, FailedHost):
                result.failed_hosts.append(outcome)
            else:
                result.reports.append(outcome)
        return result

    def _run_parallel(
        self,
        tasks: Sequence[Tuple[HostPlan, int]],
        duration_s: float,
        workers: int,
    ) -> List[Union[HostReport, FailedHost]]:
        """Fan tasks over a process pool, one future per host.

        ``_run_fleet_host`` already converts in-host exceptions to
        :class:`FailedHost` inside the worker; a future that *itself*
        raises means the worker process died (or its result could not
        come back) — e.g. ``BrokenProcessPool`` after a hard crash —
        and is mapped to a :class:`FailedHost` for that host here.
        """
        outcomes: List[Union[HostReport, FailedHost]] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_fleet_host,
                    self.base_config, self.seed, plan, index, duration_s,
                )
                for plan, index in tasks
            ]
            for (plan, index), future in zip(tasks, futures):
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    outcomes.append(FailedHost(
                        app=plan.app, host_index=index, error=repr(exc),
                    ))
        return outcomes
