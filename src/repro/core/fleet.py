"""Fleet rollout harness.

Section 4.1 reports TMO's fleet-wide savings: 7-19% of resident memory
per application (backend-dependent) plus ~13% of server memory from the
datacenter and microservice taxes, for 20-32% total. This module runs
many seeded host instances — each carrying one application container and
its tax sidecars under Senpai — and aggregates per-application and
fleet-level savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.senpai import Senpai, SenpaiConfig
from repro.kernel.mm import MemoryManager
from repro.sim.host import Host, HostConfig
from repro.sim.rng import derive_seed
from repro.workloads.apps import APP_CATALOG, AppProfile
from repro.workloads.base import Workload
from repro.workloads.tax import TAX_PROFILES, TaxWorkload
from repro.workloads.web import WebWorkload

_GB = 1 << 30


def cgroup_memory_savings(mm: MemoryManager, cgroup_name: str) -> Dict[str, float]:
    """Savings accounting for one container.

    The baseline footprint is what the container would occupy without
    TMO: its resident bytes plus everything currently offloaded. The
    real DRAM saving nets out the zswap pool's physical footprint,
    attributed to the container by its share of the pool's logical
    content.

    Returns a dict with ``baseline_bytes``, ``saved_bytes``,
    ``savings_frac``, ``saved_anon_bytes`` and ``saved_file_bytes``.
    """
    cg = mm.cgroup(cgroup_name)
    offloaded_anon = cg.swap_bytes + cg.zswap_bytes
    # File-cache savings: pages reclaim evicted that the workload has
    # not needed back. Their shadow entries are exactly that set — a
    # shadow is installed on eviction and consumed on refault.
    saved_file = len(cg.shadow) * cg.page_size_bytes
    baseline = cg.resident_bytes + offloaded_anon + saved_file
    pool_overhead = 0.0
    if cg.zswap_bytes > 0 and mm.swap_backend is not None:
        total_logical = sum(c.zswap_bytes for c in mm.cgroups())
        if total_logical > 0:
            pool_overhead = mm.zswap_pool_bytes * (
                cg.zswap_bytes / total_logical
            )
    saved_anon = max(0.0, offloaded_anon - pool_overhead)
    saved = saved_anon + saved_file
    return {
        "baseline_bytes": float(baseline),
        "saved_bytes": saved,
        "savings_frac": saved / baseline if baseline > 0 else 0.0,
        "saved_anon_bytes": saved_anon,
        "saved_file_bytes": float(saved_file),
        "offloaded_bytes": float(offloaded_anon),
        "pool_overhead_bytes": pool_overhead,
    }


@dataclass(frozen=True)
class HostPlan:
    """One slice of the fleet: ``count`` hosts running ``app``."""

    app: str
    count: int = 1
    backend: Optional[str] = None  # None -> the profile's preference
    size_scale: float = 1.0
    include_tax: bool = True
    senpai: SenpaiConfig = field(default_factory=SenpaiConfig)


@dataclass
class HostReport:
    """Savings measured on one host at the end of its run."""

    app: str
    backend: str
    host_index: int
    ram_bytes: int
    app_baseline_bytes: float
    app_saved_bytes: float
    tax_saved_bytes: float

    @property
    def app_savings_frac(self) -> float:
        """App savings normalised to the app's resident baseline
        (Figure 9's normalisation)."""
        if self.app_baseline_bytes <= 0:
            return 0.0
        return self.app_saved_bytes / self.app_baseline_bytes

    @property
    def tax_savings_frac_of_ram(self) -> float:
        """Tax savings normalised to server memory (Figure 10)."""
        return self.tax_saved_bytes / self.ram_bytes

    @property
    def total_savings_frac_of_ram(self) -> float:
        return (self.app_saved_bytes + self.tax_saved_bytes) / self.ram_bytes


@dataclass(frozen=True)
class FailedHost:
    """One host that raised during a fleet rollout.

    The rollout continues past it (one bad host must not abort a
    fleet-wide experiment); the failure is recorded here and the
    aggregates are flagged partial.
    """

    app: str
    host_index: int
    error: str


@dataclass
class FleetResult:
    """Aggregated savings across all hosts of a fleet run."""

    reports: List[HostReport] = field(default_factory=list)
    failed_hosts: List[FailedHost] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        """Whether any host failed, making the aggregates partial."""
        return bool(self.failed_hosts)

    def apps(self) -> List[str]:
        seen: List[str] = []
        for report in self.reports:
            if report.app not in seen:
                seen.append(report.app)
        return seen

    def _mean(self, values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def app_savings(self, app: str) -> float:
        return self._mean(
            [r.app_savings_frac for r in self.reports if r.app == app]
        )

    def tax_savings_of_ram(self) -> float:
        return self._mean([r.tax_savings_frac_of_ram for r in self.reports])

    def total_savings_of_ram(self) -> float:
        return self._mean(
            [r.total_savings_frac_of_ram for r in self.reports]
        )


class Fleet:
    """Runs a set of :class:`HostPlan` slices and aggregates savings."""

    def __init__(
        self,
        base_config: HostConfig = HostConfig(),
        seed: int = 7,
    ) -> None:
        self.base_config = base_config
        self.seed = seed

    def _build_host(
        self, plan: HostPlan, profile: AppProfile, index: int
    ) -> Host:
        backend = plan.backend or profile.preferred_backend
        config = replace(
            self.base_config,
            backend=backend,
            seed=derive_seed(self.seed, f"host:{plan.app}:{index}"),
        )
        host = Host(config)
        if profile.name == "Web":
            host.add_workload(
                WebWorkload, name="app", size_scale=plan.size_scale
            )
        else:
            host.add_workload(
                Workload, profile=profile, name="app",
                size_scale=plan.size_scale,
            )
        if plan.include_tax:
            # Tax profiles are sized per 64 GB host; rescale to this host.
            tax_scale = (
                config.ram_bytes / (64.0 * _GB)
            )
            for kind in TAX_PROFILES:
                slug = kind.lower().replace(" ", "-")
                host.add_workload(
                    TaxWorkload, name=slug, kind=kind,
                    size_scale=tax_scale,
                )
        host.add_controller(Senpai(plan.senpai))
        return host

    def run(
        self, plans: Sequence[HostPlan], duration_s: float
    ) -> FleetResult:
        """Execute every planned host for ``duration_s`` of virtual time."""
        result = FleetResult()
        for plan in plans:
            profile = APP_CATALOG[plan.app]
            for index in range(plan.count):
                try:
                    # Failure isolation: one host raising — OOM during
                    # build, an invariant violation mid-run — must not
                    # abort the rest of the rollout. The failure is
                    # recorded and the aggregates are flagged partial.
                    host = self._build_host(plan, profile, index)
                    host.run(duration_s)
                    app_stats = cgroup_memory_savings(host.mm, "app")
                    tax_saved = 0.0
                    if plan.include_tax:
                        for kind in TAX_PROFILES:
                            slug = kind.lower().replace(" ", "-")
                            tax_saved += cgroup_memory_savings(
                                host.mm, slug
                            )["saved_bytes"]
                except Exception as exc:
                    result.failed_hosts.append(FailedHost(
                        app=plan.app, host_index=index, error=repr(exc),
                    ))
                    continue
                result.reports.append(
                    HostReport(
                        app=plan.app,
                        backend=plan.backend or profile.preferred_backend,
                        host_index=index,
                        ram_bytes=host.config.ram_bytes,
                        app_baseline_bytes=app_stats["baseline_bytes"],
                        app_saved_bytes=app_stats["saved_bytes"],
                        tax_saved_bytes=tax_saved,
                    )
                )
        return result
