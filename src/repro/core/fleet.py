"""Fleet rollout harness.

Section 4.1 reports TMO's fleet-wide savings: 7-19% of resident memory
per application (backend-dependent) plus ~13% of server memory from the
datacenter and microservice taxes, for 20-32% total. This module runs
many seeded host instances — each carrying one application container and
its tax sidecars under Senpai — and aggregates per-application and
fleet-level savings.
"""

from __future__ import annotations

import hashlib
import math
import os
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fleetres import (
    FleetResilienceConfig,
    HostUnit,
    run_units,
)
from repro.core.senpai import Senpai, SenpaiConfig
from repro.faults.plan import FaultPlan
from repro.kernel.mm import MemoryManager
from repro.sim.host import Host, HostConfig
from repro.sim.metrics import metrics_digest
from repro.sim.rng import derive_seed
from repro.workloads.apps import APP_CATALOG, AppProfile
from repro.workloads.base import Workload
from repro.workloads.tax import TAX_PROFILES, TaxWorkload
from repro.workloads.web import WebWorkload

_GB = 1 << 30


def cgroup_memory_savings(mm: MemoryManager, cgroup_name: str) -> Dict[str, float]:
    """Savings accounting for one container.

    The baseline footprint is what the container would occupy without
    TMO: its resident bytes plus everything currently offloaded. The
    real DRAM saving nets out the zswap pool's physical footprint,
    attributed to the container by its share of the pool's logical
    content.

    Returns a dict with ``baseline_bytes``, ``saved_bytes``,
    ``savings_frac``, ``saved_anon_bytes`` and ``saved_file_bytes``.
    """
    cg = mm.cgroup(cgroup_name)
    offloaded_anon = cg.swap_bytes + cg.zswap_bytes
    # File-cache savings: pages reclaim evicted that the workload has
    # not needed back. Their shadow entries are exactly that set — a
    # shadow is installed on eviction and consumed on refault.
    saved_file = len(cg.shadow) * cg.page_size_bytes
    baseline = cg.resident_bytes + offloaded_anon + saved_file
    pool_overhead = 0.0
    if cg.zswap_bytes > 0 and mm.swap_backend is not None:
        total_logical = sum(c.zswap_bytes for c in mm.cgroups())
        if total_logical > 0:
            pool_overhead = mm.zswap_pool_bytes * (
                cg.zswap_bytes / total_logical
            )
    saved_anon = max(0.0, offloaded_anon - pool_overhead)
    saved = saved_anon + saved_file
    return {
        "baseline_bytes": float(baseline),
        "saved_bytes": saved,
        "savings_frac": saved / baseline if baseline > 0 else 0.0,
        "saved_anon_bytes": saved_anon,
        "saved_file_bytes": float(saved_file),
        "offloaded_bytes": float(offloaded_anon),
        "pool_overhead_bytes": pool_overhead,
    }


@dataclass(frozen=True)
class HostPlan:
    """One slice of the fleet: ``count`` hosts running ``app``."""

    app: str
    count: int = 1
    backend: Optional[str] = None  # None -> the profile's preference
    size_scale: float = 1.0
    include_tax: bool = True
    senpai: SenpaiConfig = field(default_factory=SenpaiConfig)


@dataclass
class HostReport:
    """Savings measured on one host at the end of its run."""

    app: str
    backend: str
    host_index: int
    ram_bytes: int
    app_baseline_bytes: float
    app_saved_bytes: float
    tax_saved_bytes: float
    #: SHA-256 over the host's full metric recorder (see
    #: :func:`repro.sim.metrics.metrics_digest`): the parallel-vs-serial
    #: equivalence token. Identical seeds must yield identical digests
    #: regardless of worker count.
    metrics_digest: str = ""
    #: Pages reclaimed on this host over the run (sum of per-cgroup
    #: ``pgsteal``); the benchmark harness reports fleet reclaim rates
    #: from this.
    pgsteal: int = 0
    #: How many attempts the resilience runtime needed for this host
    #: (1 means the first run completed).
    attempts: int = 1
    #: Whether the final attempt resumed from a spooled checkpoint
    #: rather than rebuilding from scratch.
    recovered: bool = False

    @property
    def app_savings_frac(self) -> float:
        """App savings normalised to the app's resident baseline
        (Figure 9's normalisation)."""
        if self.app_baseline_bytes <= 0:
            return 0.0
        return self.app_saved_bytes / self.app_baseline_bytes

    @property
    def tax_savings_frac_of_ram(self) -> float:
        """Tax savings normalised to server memory (Figure 10)."""
        return self.tax_saved_bytes / self.ram_bytes

    @property
    def total_savings_frac_of_ram(self) -> float:
        return (self.app_saved_bytes + self.tax_saved_bytes) / self.ram_bytes


@dataclass(frozen=True)
class FailedHost:
    """One host quarantined during a fleet rollout.

    The rollout continues past it (one bad host must not abort a
    fleet-wide experiment); the failure is recorded here — with enough
    context to reproduce it from the record alone — and the aggregates
    are flagged partial.
    """

    app: str
    host_index: int
    error: str
    #: The derived seed the host ran with
    #: (``derive_seed(fleet_seed, "host:<app>:<index>")``).
    seed: int = 0
    #: Where the final attempt died: ``"build"``, ``"run"`` or
    #: ``"measure"``.
    phase: str = "run"
    #: Attempts the resilience runtime spent before quarantining.
    attempts: int = 1
    #: Last lines of the final attempt's traceback, when one exists.
    traceback_tail: str = ""
    #: Whether the final failure was a hang (deadline kill) rather
    #: than a crash or exception.
    hung: bool = False

    def repro_hint(self) -> str:
        """A one-line hint for reproducing this failure standalone."""
        mode = "hang" if self.hung else "failure"
        return (
            f"{self.app}#{self.host_index}: {mode} in phase "
            f"'{self.phase}' after {self.attempts} attempt(s) "
            f"[host seed {self.seed}] — {self.error}"
        )


@dataclass
class FleetResult:
    """Aggregated savings across all hosts of a fleet run."""

    reports: List[HostReport] = field(default_factory=list)
    failed_hosts: List[FailedHost] = field(default_factory=list)
    #: Hosts the rollout planned (completeness denominator). 0 for
    #: results assembled by hand from reports alone.
    planned_hosts: int = 0

    @property
    def partial(self) -> bool:
        """Whether any host failed, making the aggregates partial."""
        return bool(self.failed_hosts)

    @property
    def completed_fraction(self) -> float:
        """Fraction of planned hosts that produced a report.

        The honesty metric for every aggregate below: a mean over 80%
        of the fleet is a biased estimate, not a fleet number.
        """
        total = self.planned_hosts or (
            len(self.reports) + len(self.failed_hosts)
        )
        if total <= 0:
            return 1.0
        return len(self.reports) / total

    @property
    def recovered_hosts(self) -> int:
        """Hosts whose final attempt resumed from a spooled snapshot."""
        return sum(1 for r in self.reports if r.recovered)

    def merged_digest(self) -> str:
        """SHA-256 over every host's metric digest, order-independent.

        The fleet-level equivalence token: two rollouts over the same
        plans and seed must match digest-for-digest regardless of
        worker count, retries or checkpoint recovery.
        """
        lines = sorted(
            f"{r.app} {r.host_index} {r.metrics_digest}"
            for r in self.reports
        )
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def apps(self) -> List[str]:
        seen: List[str] = []
        for report in self.reports:
            if report.app not in seen:
                seen.append(report.app)
        return seen

    def _mean(self, values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def app_savings(self, app: str) -> float:
        return self._mean(
            [r.app_savings_frac for r in self.reports if r.app == app]
        )

    def tax_savings_of_ram(self) -> float:
        return self._mean([r.tax_savings_frac_of_ram for r in self.reports])

    def total_savings_of_ram(self) -> float:
        return self._mean(
            [r.total_savings_frac_of_ram for r in self.reports]
        )


def build_fleet_host(
    base_config: HostConfig, fleet_seed: int, plan: HostPlan, index: int
) -> Host:
    """Construct one planned fleet host with its derived seed.

    Module-level (not a :class:`Fleet` method) so worker processes can
    rebuild hosts from nothing but the picklable plan dataclasses.
    """
    profile = APP_CATALOG[plan.app]
    backend = plan.backend or profile.preferred_backend
    config = replace(
        base_config,
        backend=backend,
        seed=derive_seed(fleet_seed, f"host:{plan.app}:{index}"),
    )
    host = Host(config)
    if profile.name == "Web":
        host.add_workload(
            WebWorkload, name="app", size_scale=plan.size_scale
        )
    else:
        host.add_workload(
            Workload, profile=profile, name="app",
            size_scale=plan.size_scale,
        )
    if plan.include_tax:
        # Tax profiles are sized per 64 GB host; rescale to this host.
        tax_scale = (
            config.ram_bytes / (64.0 * _GB)
        )
        for kind in TAX_PROFILES:
            slug = kind.lower().replace(" ", "-")
            host.add_workload(
                TaxWorkload, name=slug, kind=kind,
                size_scale=tax_scale,
            )
    host.add_controller(Senpai(plan.senpai))
    return host


def measure_fleet_host(
    host: Host, plan: HostPlan, index: int
) -> HostReport:
    """Measure savings on a host that has finished its run.

    The measurement half of the unit of work the resilience runtime
    (:mod:`repro.core.fleetres`) executes per attempt; shared by the
    serial and parallel paths, so a host's report cannot depend on
    which path executed it.
    """
    profile = APP_CATALOG[plan.app]
    app_stats = cgroup_memory_savings(host.mm, "app")
    tax_saved = 0.0
    if plan.include_tax:
        for kind in TAX_PROFILES:
            slug = kind.lower().replace(" ", "-")
            tax_saved += cgroup_memory_savings(
                host.mm, slug
            )["saved_bytes"]
    return HostReport(
        app=plan.app,
        backend=plan.backend or profile.preferred_backend,
        host_index=index,
        ram_bytes=host.config.ram_bytes,
        app_baseline_bytes=app_stats["baseline_bytes"],
        app_saved_bytes=app_stats["saved_bytes"],
        tax_saved_bytes=tax_saved,
        metrics_digest=metrics_digest(host.metrics),
        pgsteal=sum(
            cg.vmstat.pgsteal for cg in host.mm.cgroups()
        ),
    )


class Fleet:
    """Runs a set of :class:`HostPlan` slices and aggregates savings."""

    def __init__(
        self,
        base_config: HostConfig = HostConfig(),
        seed: int = 7,
    ) -> None:
        self.base_config = base_config
        self.seed = seed

    def _build_host(
        self, plan: HostPlan, profile: AppProfile, index: int
    ) -> Host:
        return build_fleet_host(self.base_config, self.seed, plan, index)

    def _tasks(
        self, plans: Sequence[HostPlan]
    ) -> List[Tuple[HostPlan, int]]:
        """Every (plan, host index) pair, in canonical rollout order."""
        return [
            (plan, index)
            for plan in plans
            for index in range(plan.count)
        ]

    def run(
        self,
        plans: Sequence[HostPlan],
        duration_s: float,
        workers: Optional[int] = None,
        resilience: Optional[FleetResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> FleetResult:
        """Execute every planned host for ``duration_s`` of virtual time.

        Both paths go through the resilience runtime
        (:mod:`repro.core.fleetres`): with ``workers`` > 1 the hosts
        fan out over real worker processes with per-host wall-clock
        deadlines; either way a host that crashes, hangs or raises is
        retried (restoring its latest spooled checkpoint when one
        exists) up to the retry budget, then quarantined as a
        :class:`FailedHost`. Hosts are fully independent — every host's
        RNG streams derive from
        ``derive_seed(fleet_seed, "host:<app>:<index>")``, never from
        shared state — and outcomes merge back in canonical rollout
        order, so a parallel run's reports, failures and metric digests
        are identical to the serial run's, bit for bit; the checkpoint
        codec's crash-equivalence guarantee extends that identity to
        recovered hosts.

        ``resilience`` tunes deadlines/retries/spooling; when omitted,
        retries are on but periodic spooling is off (retries rerun
        from scratch), keeping the fault-free fast path free of
        snapshot overhead. ``fault_plan`` supplies seed-derived
        ``worker_*`` events (see
        :meth:`repro.faults.plan.FaultPlan.worker_events`) that the
        runtime fires against worker processes on first attempts.
        """
        tasks = self._tasks(plans)
        if resilience is None:
            resilience = (
                FleetResilienceConfig()
                if fault_plan is not None
                else FleetResilienceConfig(checkpoint_every_s=math.inf)
            )
        spool_root = resilience.spool_dir
        cleanup_spool = spool_root is None
        if spool_root is None:
            spool_root = tempfile.mkdtemp(prefix="tmo-fleet-spool-")
        else:
            os.makedirs(spool_root, exist_ok=True)
        try:
            units = [
                HostUnit(
                    base_config=self.base_config,
                    fleet_seed=self.seed,
                    plan=plan,
                    index=index,
                    slot=slot,
                    duration_s=duration_s,
                    spool_path=os.path.join(
                        spool_root, f"host-{slot:04d}.snapshot"
                    ),
                    checkpoint_every_s=resilience.checkpoint_every_s,
                    faults=(
                        fault_plan.worker_events(slot)
                        if fault_plan is not None else ()
                    ),
                    slow_stall_s=resilience.slow_stall_s,
                )
                for slot, (plan, index) in enumerate(tasks)
            ]
            outcomes = run_units(
                units, workers if workers is not None else 1, resilience
            )
        finally:
            if cleanup_spool:
                shutil.rmtree(spool_root, ignore_errors=True)

        result = FleetResult(planned_hosts=len(tasks))
        for outcome in outcomes:
            if isinstance(outcome, FailedHost):
                result.failed_hosts.append(outcome)
            else:
                result.reports.append(outcome)
        return result
