"""TMO's userspace control plane.

The paper's primary contribution on top of PSI: the Senpai controller
(Section 3.3), the early stateful ``memory.max``-based variant it
replaced, the g-swap promotion-rate baseline it is compared against
(Section 4.3), SSD write-endurance regulation (Section 4.5), and the
fleet-rollout harness behind the Section 4.1 savings numbers.
"""

from repro.core.autotune import AutoTuneConfig, AutoTuneSenpai
from repro.core.daemon import SenpaiDaemon, SenpaiDaemonConfig
from repro.core.fleet import FailedHost, Fleet, FleetResult, HostPlan
from repro.core.fleetres import FleetResilienceConfig
from repro.core.gswap import GSwapConfig, GSwapController
from repro.core.oomd import Oomd, OomdConfig
from repro.core.limits import LimitSenpai, LimitSenpaiConfig
from repro.core.policy import reclaim_amount
from repro.core.senpai import Senpai, SenpaiConfig
from repro.core.supervisor import (
    ControllerFaultState,
    Supervisor,
    SupervisorConfig,
)
from repro.core.write_regulation import WriteRegulator

__all__ = [
    "ControllerFaultState",
    "Supervisor",
    "SupervisorConfig",
    "AutoTuneConfig",
    "AutoTuneSenpai",
    "FailedHost",
    "Fleet",
    "FleetResilienceConfig",
    "Oomd",
    "OomdConfig",
    "SenpaiDaemon",
    "SenpaiDaemonConfig",
    "FleetResult",
    "GSwapConfig",
    "GSwapController",
    "HostPlan",
    "LimitSenpai",
    "LimitSenpaiConfig",
    "Senpai",
    "SenpaiConfig",
    "WriteRegulator",
    "reclaim_amount",
]
