"""oomd: a userspace out-of-memory killer driven by PSI (Section 3.2.4).

"Long before the kernel's out-of-memory killer triggers, applications
can be functionally out of memory when the lack of it causes delays
that prevent the application from meeting its SLO. Userspace
out-of-memory killers can monitor ``full`` metrics and apply killing
policies."

This controller watches each container's ``full`` pressure average and
kills the container once it sustains above a threshold — the policy the
open-sourced oomd ships with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.psi.types import Resource


@dataclass(frozen=True)
class OomdConfig:
    """Kill policy parameters.

    Attributes:
        full_threshold: ``full`` avg10 fraction that marks a container
            as functionally out of memory (oomd's default pressure rule
            uses 10-ish percent).
        sustain_s: how long the threshold must hold before killing —
            transients (e.g. restarts) must not trigger kills.
        resource: the pressured resource to watch.
        interval_s: polling period.
        cgroups: containers under policy; None = all hosted workloads.
    """

    full_threshold: float = 0.10
    sustain_s: float = 10.0
    resource: Resource = Resource.MEMORY
    interval_s: float = 1.0
    cgroups: Optional[Tuple[str, ...]] = None


@dataclass
class _WatchState:
    over_since: Optional[float] = None


class Oomd:
    """PSI-driven userspace OOM killer."""

    def __init__(self, config: OomdConfig = OomdConfig()) -> None:
        self.config = config
        self._states: Dict[str, _WatchState] = {}
        self._next_poll: Optional[float] = None
        #: (time, cgroup) pairs for every kill performed.
        self.kills: List[Tuple[float, str]] = []
        #: Kills that raced with the container dying on its own.
        self.lost_races = 0

    def _targets(self, host) -> List[str]:
        hosted = [h.cgroup_name for h in host.hosted()]
        if self.config.cgroups is not None:
            return [name for name in self.config.cgroups if name in hosted]
        return hosted

    def poll(self, host, now: float) -> None:
        if self._next_poll is not None and now + 1e-9 < self._next_poll:
            return
        self._next_poll = now + self.config.interval_s

        for cgroup in self._targets(host):
            self._watch_one(host, cgroup, now)

    def _watch_one(self, host, cgroup: str, now: float) -> None:
        state = self._states.setdefault(cgroup, _WatchState())
        try:
            sample = host.psi.group(cgroup).sample(
                self.config.resource, now
            )
        except KeyError:
            # The cgroup's pressure domain vanished between target
            # selection and sampling (container torn down mid-poll):
            # drop the watch rather than crash the killer.
            self._states.pop(cgroup, None)
            return
        if sample.full_avg10 >= self.config.full_threshold:
            if state.over_since is None:
                state.over_since = now
            elif now - state.over_since >= self.config.sustain_s:
                self._kill(host, cgroup, now)
        else:
            state.over_since = None

    def _kill(self, host, cgroup: str, now: float) -> None:
        """Kill a container, tolerating it having died on its own.

        Between the sustain decision and the kill the workload may have
        exited (restart, another controller's kill). A lost race is
        counted, never double-killed and never fatal.
        """
        try:
            host.kill_workload(cgroup)
        except KeyError:
            self.lost_races += 1
        else:
            self.kills.append((now, cgroup))
        self._states.pop(cgroup, None)
