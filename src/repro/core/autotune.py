"""Online tuning of Senpai's reclaim aggressiveness.

Section 3.3 closes with: "certain workloads (e.g., batch workloads with
less stringent SLOs) can tolerate more memory pressure, which provides
opportunities for offloading more memory. We leave it as future work to
perform automated or online tuning of these parameters to maximize
savings."

:class:`AutoTuneSenpai` is that future work: it wraps the standard
controller and adapts ``reclaim_ratio`` per container with an AIMD rule
on the observed pressure —

* while a container sustains pressure *well below* its threshold, the
  tuner multiplicatively raises its reclaim ratio (there is headroom:
  offload more);
* the moment pressure crosses the threshold, it multiplicatively backs
  the ratio off (the workload is telling us to stop).

The ratio is bounded to ``[ratio_min, ratio_max]``; the pressure
threshold itself is never touched, so the SLO contract is unchanged —
only the approach speed adapts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.senpai import Senpai, SenpaiConfig


@dataclass(frozen=True)
class AutoTuneConfig:
    """AIMD parameters for the online tuner.

    Attributes:
        base: the wrapped Senpai configuration (threshold, interval,
            step cap, regulation all apply unchanged).
        ratio_min / ratio_max: bounds on the per-container ratio.
        raise_below: normalised-pressure level under which the ratio
            grows (plenty of headroom).
        raise_factor: multiplicative increase per calm period.
        backoff_factor: multiplicative decrease per pressured period.
        settle_periods: calm periods required before the first raise
            (avoids tuning on start-up transients).
    """

    base: SenpaiConfig = field(default_factory=SenpaiConfig)
    ratio_min: float = 0.0001
    ratio_max: float = 0.01
    raise_below: float = 0.5
    raise_factor: float = 1.15
    backoff_factor: float = 0.5
    settle_periods: int = 5


@dataclass
class _TuneState:
    ratio: float
    calm_periods: int = 0


class AutoTuneSenpai(Senpai):
    """Senpai with per-container online ratio adaptation."""

    def __init__(self, config: AutoTuneConfig = AutoTuneConfig()) -> None:
        super().__init__(config.base)
        self.tune = config
        self._ratios: Dict[str, _TuneState] = {}

    def ratio_for(self, cgroup: str) -> float:
        """The currently tuned reclaim ratio of one container."""
        state = self._ratios.get(cgroup)
        return state.ratio if state else self.config.reclaim_ratio

    def _adapt(self, cgroup: str, pressure: float) -> float:
        state = self._ratios.setdefault(
            cgroup, _TuneState(ratio=self.config.reclaim_ratio)
        )
        if pressure >= 1.0:
            state.ratio = max(
                self.tune.ratio_min,
                state.ratio * self.tune.backoff_factor,
            )
            state.calm_periods = 0
        elif pressure < self.tune.raise_below:
            state.calm_periods += 1
            if state.calm_periods > self.tune.settle_periods:
                state.ratio = min(
                    self.tune.ratio_max,
                    state.ratio * self.tune.raise_factor,
                )
        else:
            state.calm_periods = 0
        return state.ratio

    def _pressure_and_ratio(self, host, cgroup: str, elapsed_s: float):
        """Untiered pressure plus the AIMD-adapted ratio.

        Overrides the base hook, so the tuner inherits the hardened
        period machinery (actual-elapsed normalisation, staleness
        skips, circuit breaker, per-container error backoff) for free.
        """
        pressure = self.observed_pressure(host, cgroup, elapsed_s)
        return pressure, self._adapt(cgroup, pressure)

    def _record_extra(self, host, cgroup: str, now: float,
                      ratio: float) -> None:
        host.metrics.record(f"{cgroup}/senpai_ratio", now, ratio)
