"""Senpai: the userspace memory-offloading controller (Section 3.3).

Senpai polls each container's PSI every few seconds and asks the kernel
— through the stateless ``memory.reclaim`` knob — to reclaim

::

    reclaim_mem = current_mem * reclaim_ratio * max(0, 1 - PSI_some / PSI_threshold)

so containers settle at a mild, sub-threshold steady-state pressure:
high enough that no memory sits idle, low enough not to disturb nominal
operation. Senpai monitors the *IO* PSI alongside memory PSI, because
refaults it induces can hurt the workload through device contention
without showing up as memory stalls; and it modulates reclaim when SSD
write endurance is at risk (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.policy import reclaim_amount
from repro.core.write_regulation import WriteRegulator
from repro.psi.types import Resource


@dataclass(frozen=True)
class SloTier:
    """Per-container tuning for workloads with distinct SLOs.

    Section 3.3 flags this as planned work: batch workloads with
    relaxed SLOs tolerate more pressure (more savings), user-facing
    ones less. A tier scales the global thresholds and reclaim ratio.
    """

    pressure_scale: float = 1.0
    ratio_scale: float = 1.0

    @classmethod
    def batch(cls) -> "SloTier":
        """Relaxed SLO: tolerate 5x the pressure, reclaim 4x faster."""
        return cls(pressure_scale=5.0, ratio_scale=4.0)

    @classmethod
    def latency_sensitive(cls) -> "SloTier":
        """Stringent SLO: half the pressure target, half the ratio."""
        return cls(pressure_scale=0.5, ratio_scale=0.5)


@dataclass(frozen=True)
class SenpaiConfig:
    """Senpai tunables.

    The defaults are the globally-optimal production configuration the
    paper converged on for all applications: reclaim every six seconds,
    ``reclaim_ratio = 0.0005``, ``PSI_threshold = 0.1%``, step capped at
    1% of the workload per period.
    """

    interval_s: float = 6.0
    psi_threshold: float = 0.001
    io_threshold: float = 0.001
    reclaim_ratio: float = 0.0005
    max_step_frac: float = 0.01
    #: SSD swap-out budget; None disables write regulation.
    write_limit_mb_s: Optional[float] = 1.0
    #: Restrict reclaim to the file LRU (the deployment's first,
    #: file-only phase — Section 5.1).
    file_only_mode: bool = False
    #: Stop anon reclaim once swap free space drops below this fraction
    #: of its capacity (Section 3.3's swap-exhaustion modulation).
    swap_free_margin_frac: float = 0.05
    #: Stop anon reclaim once this share of the SSD's rated write
    #: endurance has been consumed.
    endurance_limit_frac: float = 0.90
    #: Containers to control; None means every hosted workload.
    cgroups: Optional[Tuple[str, ...]] = None
    #: Optional per-container SLO tiers: ``(cgroup_name, tier)`` pairs.
    slo_tiers: Tuple[Tuple[str, SloTier], ...] = ()

    def tier_for(self, cgroup: str) -> SloTier:
        for name, tier in self.slo_tiers:
            if name == cgroup:
                return tier
        return SloTier()

    @classmethod
    def config_a(cls) -> "SenpaiConfig":
        """Figure 13's mild Config A — the production setting."""
        return cls()

    @classmethod
    def config_b(cls) -> "SenpaiConfig":
        """Figure 13's aggressive Config B.

        Tolerates ten times the pressure and reclaims ten times faster;
        saves more memory but regresses RPS through file-cache refaults.
        """
        return cls(
            psi_threshold=0.010,
            io_threshold=0.010,
            reclaim_ratio=0.005,
            max_step_frac=0.02,
        )


@dataclass
class _CgroupState:
    """Per-container bookkeeping between polls."""

    last_mem_total: float = 0.0
    last_io_total: float = 0.0
    seen: bool = False


class Senpai:
    """The PSI-driven proactive reclaim controller."""

    def __init__(self, config: SenpaiConfig = SenpaiConfig()) -> None:
        self.config = config
        self._states: Dict[str, _CgroupState] = {}
        self._next_poll: Optional[float] = None
        self._last_tick: Optional[float] = None
        self.regulator: Optional[WriteRegulator] = (
            WriteRegulator(config.write_limit_mb_s)
            if config.write_limit_mb_s is not None
            else None
        )
        #: Total bytes Senpai has asked the kernel to reclaim.
        self.total_requested = 0
        #: Total bytes the kernel actually reclaimed for Senpai.
        self.total_reclaimed = 0

    # ------------------------------------------------------------------

    def _targets(self, host) -> List[str]:
        if self.config.cgroups is not None:
            return list(self.config.cgroups)
        return [h.cgroup_name for h in host.hosted()]

    def observed_pressure(self, host, cgroup: str, interval_s: float) -> float:
        """Normalised pressure for one container over the last interval.

        Diffs the ``some`` stall totals (like the open-source senpai
        does, rather than using the kernel's averaged windows), divides
        by the elapsed interval, and normalises each resource by its own
        threshold; the binding constraint (max) drives back-off.
        """
        state = self._states.setdefault(cgroup, _CgroupState())
        mem_total = host.psi.some_total(cgroup, Resource.MEMORY)
        io_total = host.psi.some_total(cgroup, Resource.IO)
        if not state.seen:
            state.last_mem_total = mem_total
            state.last_io_total = io_total
            state.seen = True
            return 0.0
        mem_pressure = (mem_total - state.last_mem_total) / interval_s
        io_pressure = (io_total - state.last_io_total) / interval_s
        state.last_mem_total = mem_total
        state.last_io_total = io_total
        return max(
            mem_pressure / self.config.psi_threshold,
            io_pressure / self.config.io_threshold,
        )

    # ------------------------------------------------------------------

    def poll(self, host, now: float) -> None:
        """Host hook: update regulation every tick, reclaim on schedule."""
        if self._last_tick is not None and self.regulator is not None:
            backend = host.swap_backend
            if backend is not None and backend.blocks_on_io:
                self.regulator.update(
                    backend.stats.bytes_written, now - self._last_tick
                )
        self._last_tick = now

        if self._next_poll is None:
            # First observation period starts now; no reclaim yet.
            self._next_poll = now + self.config.interval_s
            for cgroup in self._targets(host):
                self.observed_pressure(host, cgroup, self.config.interval_s)
            return
        if now + 1e-9 < self._next_poll:
            return
        self._next_poll = now + self.config.interval_s
        self._reclaim_period(host, now)

    def _swap_exhausted(self, backend) -> bool:
        """Section 3.3's extra modulation: back off anon reclaim when
        swap space is nearly exhausted or endurance nearly consumed."""
        capacity = getattr(backend, "capacity_bytes", None)
        free = getattr(backend, "free_bytes", None)
        if capacity and free is not None:
            if free < self.config.swap_free_margin_frac * capacity:
                return True
        wear = getattr(backend, "wear_fraction", None)
        if wear is not None and wear >= self.config.endurance_limit_frac:
            return True
        return False

    def _reclaim_period(self, host, now: float) -> None:
        file_only = self.config.file_only_mode
        allowance = 1.0
        backend = host.swap_backend
        if backend is not None and self._swap_exhausted(backend):
            file_only = True
        if self.regulator is not None and not file_only:
            if backend is not None and backend.blocks_on_io:
                allowance = self.regulator.allowance()
                file_only = self.regulator.file_only()

        for cgroup in self._targets(host):
            tier = self.config.tier_for(cgroup)
            pressure = self.observed_pressure(
                host, cgroup, self.config.interval_s
            ) / tier.pressure_scale
            current = host.mm.cgroup(cgroup).current_bytes()
            target = reclaim_amount(
                current_mem=current,
                psi_some=pressure,
                psi_threshold=1.0,  # pressure is already normalised
                reclaim_ratio=self.config.reclaim_ratio * tier.ratio_scale,
                max_step_frac=self.config.max_step_frac,
            )
            if not file_only and allowance < 1.0:
                target = int(target * allowance)
            if target <= 0:
                host.metrics.record(f"{cgroup}/senpai_reclaim", now, 0.0)
                continue
            outcome = host.mm.memory_reclaim(
                cgroup, target, now, file_only=file_only
            )
            self.total_requested += target
            self.total_reclaimed += outcome.reclaimed_bytes
            host.metrics.record(
                f"{cgroup}/senpai_reclaim", now, outcome.reclaimed_bytes
            )
            host.metrics.record(
                f"{cgroup}/senpai_pressure", now, pressure
            )
