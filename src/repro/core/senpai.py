"""Senpai: the userspace memory-offloading controller (Section 3.3).

Senpai polls each container's PSI every few seconds and asks the kernel
— through the stateless ``memory.reclaim`` knob — to reclaim

::

    reclaim_mem = current_mem * reclaim_ratio * max(0, 1 - PSI_some / PSI_threshold)

so containers settle at a mild, sub-threshold steady-state pressure:
high enough that no memory sits idle, low enough not to disturb nominal
operation. Senpai monitors the *IO* PSI alongside memory PSI, because
refaults it induces can hurt the workload through device contention
without showing up as memory stalls; and it modulates reclaim when SSD
write endurance is at risk (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.policy import reclaim_amount
from repro.core.write_regulation import WriteRegulator
from repro.psi.types import Resource


@dataclass(frozen=True)
class SloTier:
    """Per-container tuning for workloads with distinct SLOs.

    Section 3.3 flags this as planned work: batch workloads with
    relaxed SLOs tolerate more pressure (more savings), user-facing
    ones less. A tier scales the global thresholds and reclaim ratio.
    """

    pressure_scale: float = 1.0
    ratio_scale: float = 1.0

    @classmethod
    def batch(cls) -> "SloTier":
        """Relaxed SLO: tolerate 5x the pressure, reclaim 4x faster."""
        return cls(pressure_scale=5.0, ratio_scale=4.0)

    @classmethod
    def latency_sensitive(cls) -> "SloTier":
        """Stringent SLO: half the pressure target, half the ratio."""
        return cls(pressure_scale=0.5, ratio_scale=0.5)


@dataclass(frozen=True)
class SenpaiConfig:
    """Senpai tunables.

    The defaults are the globally-optimal production configuration the
    paper converged on for all applications: reclaim every six seconds,
    ``reclaim_ratio = 0.0005``, ``PSI_threshold = 0.1%``, step capped at
    1% of the workload per period.
    """

    interval_s: float = 6.0
    psi_threshold: float = 0.001
    io_threshold: float = 0.001
    reclaim_ratio: float = 0.0005
    max_step_frac: float = 0.01
    #: SSD swap-out budget; None disables write regulation.
    write_limit_mb_s: Optional[float] = 1.0
    #: Restrict reclaim to the file LRU (the deployment's first,
    #: file-only phase — Section 5.1).
    file_only_mode: bool = False
    #: Stop anon reclaim once swap free space drops below this fraction
    #: of its capacity (Section 3.3's swap-exhaustion modulation).
    swap_free_margin_frac: float = 0.05
    #: Stop anon reclaim once this share of the SSD's rated write
    #: endurance has been consumed.
    endurance_limit_frac: float = 0.90
    #: Containers to control; None means every hosted workload.
    cgroups: Optional[Tuple[str, ...]] = None
    #: Optional per-container SLO tiers: ``(cgroup_name, tier)`` pairs.
    slo_tiers: Tuple[Tuple[str, SloTier], ...] = ()
    #: Skip a reclaim period when the served PSI telemetry is older
    #: than this (a frozen reader would otherwise report zero pressure
    #: deltas and drive maximal reclaim into a loaded host).
    stale_after_s: float = 30.0
    #: Consecutive faulty polling periods (majority of swap-backend
    #: operations failing) before the circuit breaker opens and anon
    #: reclaim stops.
    breaker_trip_polls: int = 3
    #: How long the breaker stays open before a half-open probe period
    #: re-tries anon reclaim against the backend.
    breaker_probe_s: float = 30.0
    #: Base/backstop of the per-container exponential backoff applied
    #: after a control-surface error (missing cgroup, failed write).
    error_backoff_s: float = 6.0
    error_backoff_max_s: float = 120.0

    def tier_for(self, cgroup: str) -> SloTier:
        for name, tier in self.slo_tiers:
            if name == cgroup:
                return tier
        return SloTier()

    @classmethod
    def config_a(cls) -> "SenpaiConfig":
        """Figure 13's mild Config A — the production setting."""
        return cls()

    @classmethod
    def config_b(cls) -> "SenpaiConfig":
        """Figure 13's aggressive Config B.

        Tolerates ten times the pressure and reclaims ten times faster;
        saves more memory but regresses RPS through file-cache refaults.
        """
        return cls(
            psi_threshold=0.010,
            io_threshold=0.010,
            reclaim_ratio=0.005,
            max_step_frac=0.02,
        )


@dataclass
class _CgroupState:
    """Per-container bookkeeping between polls."""

    last_mem_total: float = 0.0
    last_io_total: float = 0.0
    seen: bool = False
    #: Consecutive control-surface errors against this container.
    error_streak: int = 0
    #: Do not touch this container again before this virtual time.
    skip_until_s: float = 0.0


class Senpai:
    """The PSI-driven proactive reclaim controller."""

    def __init__(self, config: SenpaiConfig = SenpaiConfig()) -> None:
        self.config = config
        self._states: Dict[str, _CgroupState] = {}
        self._next_poll: Optional[float] = None
        self._last_tick: Optional[float] = None
        self.regulator: Optional[WriteRegulator] = (
            WriteRegulator(config.write_limit_mb_s)
            if config.write_limit_mb_s is not None
            else None
        )
        #: Total bytes Senpai has asked the kernel to reclaim.
        self.total_requested = 0
        #: Total bytes the kernel actually reclaimed for Senpai.
        self.total_reclaimed = 0
        #: When the last reclaim period ran (for actual-elapsed PSI
        #: normalisation, not the nominal interval).
        self._last_period_at: Optional[float] = None
        #: Swap-backend circuit breaker: ``closed`` (healthy),
        #: ``open`` (anon reclaim suspended, file-only fallback) or
        #: ``half_open`` (probing). See docs/RESILIENCE.md.
        self.breaker_state = "closed"
        self.breaker_open_count = 0
        self.breaker_reclose_count = 0
        self._breaker_faulty_streak = 0
        self._breaker_opened_at_s: Optional[float] = None
        self._last_swap_ops = 0
        self._last_swap_faults = 0
        #: Periods skipped because telemetry was stale / a container
        #: errored (observability counters for tests and reports).
        self.stale_skips = 0
        self.error_skips = 0

    # ------------------------------------------------------------------

    def _targets(self, host) -> List[str]:
        if self.config.cgroups is not None:
            return list(self.config.cgroups)
        return [h.cgroup_name for h in host.hosted()]

    def observed_pressure(self, host, cgroup: str, elapsed_s: float) -> float:
        """Normalised pressure for one container over the last period.

        Diffs the ``some`` stall totals (like the open-source senpai
        does, rather than using the kernel's averaged windows), divides
        by the *actual* elapsed time since the last poll — not the
        nominal interval, which under-/over-states pressure whenever a
        period is stretched by stale-telemetry skips or scheduling
        jitter — and normalises each resource by its own threshold; the
        binding constraint (max) drives back-off.
        """
        state = self._states.setdefault(cgroup, _CgroupState())
        mem_total = host.psi.some_total(cgroup, Resource.MEMORY)
        io_total = host.psi.some_total(cgroup, Resource.IO)
        if not state.seen:
            state.last_mem_total = mem_total
            state.last_io_total = io_total
            state.seen = True
            return 0.0
        elapsed_s = max(elapsed_s, 1e-9)
        mem_pressure = (mem_total - state.last_mem_total) / elapsed_s
        io_pressure = (io_total - state.last_io_total) / elapsed_s
        state.last_mem_total = mem_total
        state.last_io_total = io_total
        return max(
            mem_pressure / self.config.psi_threshold,
            io_pressure / self.config.io_threshold,
        )

    # ------------------------------------------------------------------

    def poll(self, host, now: float) -> None:
        """Host hook: update regulation every tick, reclaim on schedule."""
        if self._last_tick is not None and self.regulator is not None:
            backend = host.swap_backend
            if backend is not None and backend.blocks_on_io:
                self.regulator.update(
                    backend.stats.bytes_written, now - self._last_tick
                )
        self._last_tick = now

        if self._next_poll is None:
            # First observation period starts now; no reclaim yet.
            self._next_poll = now + self.config.interval_s
            self._last_period_at = now
            self._last_swap_ops = host.mm.swap_op_count
            self._last_swap_faults = host.mm.swap_fault_count
            for cgroup in self._targets(host):
                self._prime_cgroup(host, cgroup)
            return
        if now + 1e-9 < self._next_poll:
            return
        self._next_poll = now + self.config.interval_s
        self._reclaim_period(host, now)

    def _prime_cgroup(self, host, cgroup: str) -> None:
        """Record a container's baseline totals, tolerating its absence."""
        try:
            self.observed_pressure(host, cgroup, self.config.interval_s)
        except Exception:
            # Named container does not exist (yet, or any more): treat
            # it like a control-surface error and retry on schedule.
            self.error_skips += 1

    def _swap_exhausted(self, backend) -> bool:
        """Section 3.3's extra modulation: back off anon reclaim when
        swap space is nearly exhausted or endurance nearly consumed."""
        capacity = getattr(backend, "capacity_bytes", None)
        free = getattr(backend, "free_bytes", None)
        if capacity and free is not None:
            if free < self.config.swap_free_margin_frac * capacity:
                return True
        wear = getattr(backend, "wear_fraction", None)
        if wear is not None and wear >= self.config.endurance_limit_frac:
            return True
        return False

    # ------------------------------------------------------------------
    # staleness detection and the swap-backend circuit breaker

    def _telemetry_stale(self, host, now: float) -> bool:
        """Whether the served PSI telemetry is too old to act on."""
        age_fn = getattr(host.psi, "telemetry_age_s", None)
        if age_fn is None:
            return False
        return age_fn(now) > self.config.stale_after_s

    _DEGRADED_LEVELS = {"closed": 0.0, "half_open": 0.5, "open": 1.0}

    def _set_breaker(self, host, now: float, state: str) -> None:
        if state == self.breaker_state:
            return
        self.breaker_state = state
        host.metrics.record(
            "senpai/degraded", now, self._DEGRADED_LEVELS[state]
        )

    def _update_breaker(self, host, now: float) -> None:
        """Advance the breaker from this period's swap fault/op deltas.

        A period is *faulty* when swap operations ran and at least half
        of them failed with a backend fault — a failing device, not the
        odd media error. ``breaker_trip_polls`` consecutive faulty
        periods open the breaker (anon reclaim suspended); after
        ``breaker_probe_s`` a half-open period probes the backend, and
        one clean probe with real traffic re-closes it.
        """
        mm = host.mm
        delta_ops = mm.swap_op_count - self._last_swap_ops
        delta_faults = mm.swap_fault_count - self._last_swap_faults
        self._last_swap_ops = mm.swap_op_count
        self._last_swap_faults = mm.swap_fault_count
        faulty = delta_faults > 0 and delta_faults * 2 >= delta_ops

        if self.breaker_state == "closed":
            if faulty:
                self._breaker_faulty_streak += 1
                if self._breaker_faulty_streak >= self.config.breaker_trip_polls:
                    self.breaker_open_count += 1
                    self._breaker_opened_at_s = now
                    self._set_breaker(host, now, "open")
            else:
                self._breaker_faulty_streak = 0
        elif self.breaker_state == "open":
            if now - self._breaker_opened_at_s >= self.config.breaker_probe_s:
                self._set_breaker(host, now, "half_open")
        else:  # half_open: judge the probe period that just ended
            if faulty:
                self._breaker_opened_at_s = now
                self._set_breaker(host, now, "open")
            elif delta_ops > 0:
                self._breaker_faulty_streak = 0
                self.breaker_reclose_count += 1
                self._set_breaker(host, now, "closed")
            # No swap traffic: the probe proved nothing; keep probing.

    # ------------------------------------------------------------------

    def _pressure_and_ratio(self, host, cgroup: str, elapsed_s: float):
        """Per-container pressure and reclaim ratio for this period."""
        tier = self.config.tier_for(cgroup)
        pressure = self.observed_pressure(
            host, cgroup, elapsed_s
        ) / tier.pressure_scale
        return pressure, self.config.reclaim_ratio * tier.ratio_scale

    def _record_extra(self, host, cgroup: str, now: float,
                      ratio: float) -> None:
        """Subclass hook for additional per-container period metrics."""

    def _reclaim_period(self, host, now: float) -> None:
        if self._telemetry_stale(host, now):
            # Acting on a frozen reader would read zero pressure deltas
            # and drive maximal reclaim into a possibly loaded host.
            # Skip without consuming totals: after a thaw, the diffs
            # cover the whole gap and divide by the true elapsed time.
            self.stale_skips += 1
            host.metrics.record("senpai/stale", now, 1.0)
            return
        elapsed_s = (
            now - self._last_period_at
            if self._last_period_at is not None
            else self.config.interval_s
        )
        self._last_period_at = now
        self._update_breaker(host, now)

        file_only = self.config.file_only_mode
        allowance = 1.0
        backend = host.swap_backend
        if self.breaker_state == "open":
            # Swap backend presumed down: fall back to file-only
            # reclaim so no page is handed to a failing device.
            file_only = True
        if backend is not None and self._swap_exhausted(backend):
            file_only = True
        if self.regulator is not None and not file_only:
            if backend is not None and backend.blocks_on_io:
                allowance = self.regulator.allowance()
                file_only = self.regulator.file_only()

        for cgroup in self._targets(host):
            self._reclaim_one(
                host, now, cgroup, elapsed_s, file_only, allowance
            )

    def _reclaim_one(
        self,
        host,
        now: float,
        cgroup: str,
        elapsed_s: float,
        file_only: bool,
        allowance: float,
    ) -> None:
        """Run one container's reclaim step, absorbing control errors.

        Any failure on the control surface (the container died between
        sampling and reclaim, a control file errored) is counted and
        answered with per-container exponential backoff rather than a
        controller crash.
        """
        state = self._states.setdefault(cgroup, _CgroupState())
        if now < state.skip_until_s:
            return
        try:
            pressure, ratio = self._pressure_and_ratio(
                host, cgroup, elapsed_s
            )
            current = host.mm.cgroup(cgroup).current_bytes()
            target = reclaim_amount(
                current_mem=current,
                psi_some=pressure,
                psi_threshold=1.0,  # pressure is already normalised
                reclaim_ratio=ratio,
                max_step_frac=self.config.max_step_frac,
            )
            if not file_only and allowance < 1.0:
                target = int(target * allowance)
            if target <= 0:
                host.metrics.record(f"{cgroup}/senpai_reclaim", now, 0.0)
                self._record_extra(host, cgroup, now, ratio)
                state.error_streak = 0
                return
            outcome = host.mm.memory_reclaim(
                cgroup, target, now, file_only=file_only
            )
        except Exception:
            state.error_streak += 1
            self.error_skips += 1
            backoff_s = min(
                self.config.error_backoff_max_s,
                self.config.error_backoff_s
                * (2.0 ** (state.error_streak - 1)),
            )
            state.skip_until_s = now + backoff_s
            host.metrics.record("senpai/errors", now, float(self.error_skips))
            return
        state.error_streak = 0
        self.total_requested += target
        self.total_reclaimed += outcome.reclaimed_bytes
        host.metrics.record(
            f"{cgroup}/senpai_reclaim", now, outcome.reclaimed_bytes
        )
        host.metrics.record(
            f"{cgroup}/senpai_pressure", now, pressure
        )
        self._record_extra(host, cgroup, now, ratio)
