"""SSD write-endurance regulation (Section 4.5).

SSDs have limited write endurance; a fleet-wide analysis identified
1 MB/s of swap-out as a safe sustained rate. The regulator tracks the
observed swap write rate and modulates Senpai's reclaim: above the limit
it scales the anon-reclaim opportunity down (to the point of forcing
file-only reclaim), exactly reproducing Figure 14's clamp of the P90
swap-out rate from several MB/s to the configured ceiling.
"""

from __future__ import annotations

_MB = 1 << 20


class WriteRegulator:
    """Token-bucket style limiter on swap-out bandwidth."""

    def __init__(
        self,
        limit_mb_s: float = 1.0,
        window_s: float = 60.0,
    ) -> None:
        """
        Args:
            limit_mb_s: sustained swap write budget.
            window_s: smoothing window of the observed write rate.
        """
        if limit_mb_s <= 0:
            raise ValueError(f"write limit must be > 0, got {limit_mb_s}")
        self.limit_bytes_per_s = limit_mb_s * _MB
        self.window_s = window_s
        self._rate = 0.0
        self._last_bytes_written = 0
        self._allowance = 1.0

    @property
    def observed_rate_mb_s(self) -> float:
        return self._rate / _MB

    def update(self, bytes_written_total: int, dt: float) -> None:
        """Fold the backend's cumulative write counter into the rate EMA
        and adapt the allowance multiplicatively.

        Multiplicative adaptation (rather than a one-shot proportional
        scale) is what makes the achieved rate *converge onto* the
        limit instead of settling above it.
        """
        if dt <= 0:
            return
        delta = max(0, bytes_written_total - self._last_bytes_written)
        self._last_bytes_written = bytes_written_total
        alpha = min(1.0, dt / self.window_s)
        self._rate += (delta / dt - self._rate) * alpha
        if self._rate > self.limit_bytes_per_s:
            self._allowance *= self.limit_bytes_per_s / self._rate
            self._allowance = max(1e-3, self._allowance)
        else:
            # Gentle recovery while under budget.
            self._allowance = min(1.0, self._allowance * 1.05)

    def allowance(self) -> float:
        """Scaling factor in [0, 1] for anon reclaim this period.

        1.0 while the observed rate has stayed under the budget; decays
        while it overshoots, converging the write rate onto the limit.
        """
        return self._allowance

    def file_only(self) -> bool:
        """Whether anon reclaim should pause entirely this period."""
        return self._rate > 2.0 * self.limit_bytes_per_s
