"""The early, stateful Senpai variant: driving ``memory.max``.

Section 3.3 describes the first Senpai implementation: it continuously
adjusted the workload cgroup's memory limit — lowering it to force
reclaim, raising it to relieve pressure. The statefulness is the
problem: a rapidly expanding workload slams into the stale limit and
blocks (direct reclaim, eventually OOM) until the controller's next
period raises it. The stateless ``memory.reclaim`` knob replaced it.

This variant is kept as an ablation target; the
``benchmarks/test_limits_vs_reclaim.py`` bench reproduces the
expansion-blocking pathology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.psi.types import Resource


@dataclass(frozen=True)
class LimitSenpaiConfig:
    """Tunables of the limit-driving controller.

    Attributes:
        interval_s: control period.
        psi_threshold: pressure target (fraction of wall time).
        shrink_frac: limit reduction per period while under target.
        grow_frac: limit increase per period while over target.
        headroom_frac: slack kept above current usage when first
            installing a limit.
        cgroups: containers to control; None = all hosted workloads.
    """

    interval_s: float = 6.0
    psi_threshold: float = 0.001
    shrink_frac: float = 0.0005
    grow_frac: float = 0.02
    headroom_frac: float = 0.01
    cgroups: Optional[Tuple[str, ...]] = None


@dataclass
class _LimitState:
    last_mem_total: float = 0.0
    seen: bool = False


class LimitSenpai:
    """Senpai v0: stateful memory.max control."""

    def __init__(self, config: LimitSenpaiConfig = LimitSenpaiConfig()) -> None:
        self.config = config
        self._states: Dict[str, _LimitState] = {}
        self._next_poll: Optional[float] = None
        # cgroup -> memoized metric-series name; formatting stays out
        # of the per-cgroup poll loop (TMO018). Rebuilt lazily, so a
        # restored controller just re-memoizes.
        self._metric_names: Dict[str, str] = {}  # tmo-lint: transient -- name memo

    def _targets(self, host):
        if self.config.cgroups is not None:
            return list(self.config.cgroups)
        return [h.cgroup_name for h in host.hosted()]

    def _limit_metric(self, cgroup: str) -> str:
        name = self._metric_names.get(cgroup)
        if name is None:
            name = f"{cgroup}/memory_max"
            self._metric_names[cgroup] = name
        return name

    def poll(self, host, now: float) -> None:
        if self._next_poll is None:
            self._next_poll = now + self.config.interval_s
            for cgroup in self._targets(host):
                state = self._states.setdefault(cgroup, _LimitState())
                state.last_mem_total = host.psi.some_total(
                    cgroup, Resource.MEMORY
                )
                state.seen = True
            return
        if now + 1e-9 < self._next_poll:
            return
        self._next_poll = now + self.config.interval_s

        for cgroup in self._targets(host):
            state = self._states.setdefault(cgroup, _LimitState())
            mem_total = host.psi.some_total(cgroup, Resource.MEMORY)
            pressure = (
                (mem_total - state.last_mem_total) / self.config.interval_s
                if state.seen
                else 0.0
            )
            state.last_mem_total = mem_total
            state.seen = True

            cg = host.mm.cgroup(cgroup)
            current = cg.current_bytes()
            limit = cg.memory_max
            if limit is None:
                limit = int(current * (1.0 + self.config.headroom_frac))
            if pressure < self.config.psi_threshold:
                new_limit = int(limit * (1.0 - self.config.shrink_frac))
                # Never set the limit below what one period of the
                # production reclaim cap would remove.
                new_limit = max(new_limit, int(current * 0.98))
            else:
                new_limit = int(limit * (1.0 + self.config.grow_frac))
            host.mm.set_memory_max(cgroup, new_limit, now)
            host.metrics.record(self._limit_metric(cgroup), now, new_limit)
