"""SenpaiDaemon: the controller as the open-source senpai is written.

The production (and open-sourced) senpai is a small daemon that knows
nothing about kernel internals: it reads ``memory.pressure`` text,
parses the ``total=`` stall counter, reads ``memory.current``, computes
the reclaim step, and writes the byte count to ``memory.reclaim``. This
class is that daemon, verbatim against the simulator's
:class:`~repro.kernel.controlfs.ControlFs` façade — a living proof that
the simulated control surface is drivable by unmodified tooling logic.

(The in-process :class:`~repro.core.senpai.Senpai` is the richer
controller with write regulation; this one trades features for being a
faithful port of the file-level protocol.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.policy import reclaim_amount
from repro.kernel.controlfs import ControlFileError

_TOTAL_RE = re.compile(r"^some .*total=(\d+)$", re.MULTILINE)


def parse_some_total_us(pressure_text: str) -> int:
    """Extract the ``some ... total=<us>`` counter from a pressure file.

    >>> parse_some_total_us(
    ...     "some avg10=0.00 avg60=0.00 avg300=0.00 total=1500\\n"
    ...     "full avg10=0.00 avg60=0.00 avg300=0.00 total=0")
    1500
    """
    match = _TOTAL_RE.search(pressure_text)
    if not match:
        raise ValueError(
            f"not a pressure file: {pressure_text[:60]!r}"
        )
    return int(match.group(1))


@dataclass(frozen=True)
class SenpaiDaemonConfig:
    """The open-source senpai's knobs (its defaults match Section 3.3)."""

    interval_s: float = 6.0
    psi_threshold: float = 0.001
    reclaim_ratio: float = 0.0005
    max_step_frac: float = 0.01
    cgroups: Tuple[str, ...] = ()
    #: Base/backstop of the per-cgroup exponential backoff after a
    #: failed read or write (the daemon's crash-loop protection).
    error_backoff_s: float = 6.0
    error_backoff_max_s: float = 120.0


@dataclass
class _DaemonCgroupState:
    """Per-cgroup bookkeeping between daemon polls."""

    last_total_us: int = 0
    last_poll_at_s: Optional[float] = None
    error_streak: int = 0
    skip_until_s: float = 0.0


class SenpaiDaemon:
    """File-protocol senpai against the ControlFs surface.

    Hardened like its production counterpart must be: a malformed or
    unreadable pressure file is skipped and counted (``skipped_reads``)
    rather than crashing the daemon, failed ``memory.reclaim`` writes
    are counted (``failed_writes``), and a cgroup that keeps erroring is
    backed off exponentially instead of being hammered every period.
    """

    def __init__(self, config: SenpaiDaemonConfig) -> None:
        if not config.cgroups:
            raise ValueError(
                "SenpaiDaemon needs explicit cgroup paths to manage"
            )
        self.config = config
        self._states: Dict[str, _DaemonCgroupState] = {}
        self._next_poll: Optional[float] = None
        # The managed cgroup set is fixed at construction, so every
        # control-file path is formatted exactly once here instead of
        # on each poll of each cgroup (TMO018).
        self._pressure_path = {  # tmo-lint: transient -- derived from config
            c: f"{c}/memory.pressure" for c in config.cgroups
        }
        self._current_path = {  # tmo-lint: transient -- derived from config
            c: f"{c}/memory.current" for c in config.cgroups
        }
        self._reclaim_path = {  # tmo-lint: transient -- derived from config
            c: f"{c}/memory.reclaim" for c in config.cgroups
        }
        #: Pressure/current reads dropped as unreadable or malformed.
        self.skipped_reads = 0
        #: memory.reclaim writes the control surface rejected.
        self.failed_writes = 0

    def _state(self, cgroup: str) -> _DaemonCgroupState:
        return self._states.setdefault(cgroup, _DaemonCgroupState())

    def _back_off(self, state: _DaemonCgroupState, now: float) -> None:
        state.error_streak += 1
        backoff_s = min(
            self.config.error_backoff_max_s,
            self.config.error_backoff_s * (2.0 ** (state.error_streak - 1)),
        )
        state.skip_until_s = now + backoff_s

    def poll(self, host, now: float) -> None:
        if self._next_poll is None:
            self._next_poll = now + self.config.interval_s
            for cgroup in self.config.cgroups:
                state = self._state(cgroup)
                try:
                    text = host.controlfs.read(
                        self._pressure_path[cgroup], now
                    )
                    state.last_total_us = parse_some_total_us(text)
                    state.last_poll_at_s = now
                except (ControlFileError, ValueError):
                    self.skipped_reads += 1
            return
        if now + 1e-9 < self._next_poll:
            return
        self._next_poll = now + self.config.interval_s

        for cgroup in self.config.cgroups:
            self._poll_one(host, cgroup, now)

    def _poll_one(self, host, cgroup: str, now: float) -> None:
        state = self._state(cgroup)
        if now < state.skip_until_s:
            return
        fs = host.controlfs
        try:
            text = fs.read(self._pressure_path[cgroup], now)
            total_us = parse_some_total_us(text)
            current = int(fs.read(self._current_path[cgroup], now))
        except (ControlFileError, ValueError):
            # Unreadable cgroup or garbage pressure text: skip the
            # period and back off; never act on a partial sample.
            self.skipped_reads += 1
            self._back_off(state, now)
            return
        delta_us = total_us - state.last_total_us
        # Divide by the real time between successful samples, not the
        # nominal interval — backoff and skipped periods stretch it.
        elapsed_s = (
            now - state.last_poll_at_s
            if state.last_poll_at_s is not None
            else self.config.interval_s
        )
        elapsed_s = max(elapsed_s, 1e-9)
        state.last_total_us = total_us
        state.last_poll_at_s = now
        pressure = (delta_us / 1e6) / elapsed_s

        step = reclaim_amount(
            current_mem=current,
            psi_some=pressure,
            psi_threshold=self.config.psi_threshold,
            reclaim_ratio=self.config.reclaim_ratio,
            max_step_frac=self.config.max_step_frac,
        )
        if step > 0:
            try:
                fs.write(self._reclaim_path[cgroup], str(step), now)
            except ControlFileError:
                self.failed_writes += 1
                self._back_off(state, now)
                return
        state.error_streak = 0
        state.skip_until_s = 0.0
