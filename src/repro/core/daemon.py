"""SenpaiDaemon: the controller as the open-source senpai is written.

The production (and open-sourced) senpai is a small daemon that knows
nothing about kernel internals: it reads ``memory.pressure`` text,
parses the ``total=`` stall counter, reads ``memory.current``, computes
the reclaim step, and writes the byte count to ``memory.reclaim``. This
class is that daemon, verbatim against the simulator's
:class:`~repro.kernel.controlfs.ControlFs` façade — a living proof that
the simulated control surface is drivable by unmodified tooling logic.

(The in-process :class:`~repro.core.senpai.Senpai` is the richer
controller with write regulation; this one trades features for being a
faithful port of the file-level protocol.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.policy import reclaim_amount

_TOTAL_RE = re.compile(r"^some .*total=(\d+)$", re.MULTILINE)


def parse_some_total_us(pressure_text: str) -> int:
    """Extract the ``some ... total=<us>`` counter from a pressure file.

    >>> parse_some_total_us(
    ...     "some avg10=0.00 avg60=0.00 avg300=0.00 total=1500\\n"
    ...     "full avg10=0.00 avg60=0.00 avg300=0.00 total=0")
    1500
    """
    match = _TOTAL_RE.search(pressure_text)
    if not match:
        raise ValueError(
            f"not a pressure file: {pressure_text[:60]!r}"
        )
    return int(match.group(1))


@dataclass(frozen=True)
class SenpaiDaemonConfig:
    """The open-source senpai's knobs (its defaults match Section 3.3)."""

    interval_s: float = 6.0
    psi_threshold: float = 0.001
    reclaim_ratio: float = 0.0005
    max_step_frac: float = 0.01
    cgroups: Tuple[str, ...] = ()


class SenpaiDaemon:
    """File-protocol senpai against the ControlFs surface."""

    def __init__(self, config: SenpaiDaemonConfig) -> None:
        if not config.cgroups:
            raise ValueError(
                "SenpaiDaemon needs explicit cgroup paths to manage"
            )
        self.config = config
        self._last_total_us: Dict[str, int] = {}
        self._next_poll: Optional[float] = None

    def poll(self, host, now: float) -> None:
        if self._next_poll is None:
            self._next_poll = now + self.config.interval_s
            for cgroup in self.config.cgroups:
                text = host.controlfs.read(
                    f"{cgroup}/memory.pressure", now
                )
                self._last_total_us[cgroup] = parse_some_total_us(text)
            return
        if now + 1e-9 < self._next_poll:
            return
        self._next_poll = now + self.config.interval_s

        for cgroup in self.config.cgroups:
            fs = host.controlfs
            text = fs.read(f"{cgroup}/memory.pressure", now)
            total_us = parse_some_total_us(text)
            delta_us = total_us - self._last_total_us.get(cgroup, 0)
            self._last_total_us[cgroup] = total_us
            pressure = (delta_us / 1e6) / self.config.interval_s

            current = int(fs.read(f"{cgroup}/memory.current", now))
            step = reclaim_amount(
                current_mem=current,
                psi_some=pressure,
                psi_threshold=self.config.psi_threshold,
                reclaim_ratio=self.config.reclaim_ratio,
                max_step_frac=self.config.max_step_frac,
            )
            if step > 0:
                fs.write(f"{cgroup}/memory.reclaim", str(step), now)
