"""Controller supervision: watchdog, capped-backoff restart, heartbeats.

TMO's controllers are deliberately stateless against the kernel —
Senpai can die and restart without corrupting anything (Section 3.3) —
but a dead controller silently stops applying pressure. The
:class:`Supervisor` wraps any controller (anything with
``poll(host, now)``) and plays the role of the init/systemd layer that
production daemons run under:

* **heartbeat**: every successful inner poll refreshes a heartbeat; a
  controller that stops making progress (the ``controller_hang`` fault)
  is detected once the heartbeat goes stale for ``hang_timeout_s`` and
  is killed.
* **crash detection**: an inner poll that raises — or an injected
  ``controller_crash`` fault — marks the controller dead.
* **restart with capped backoff**: a dead controller is restarted from
  its last persisted state snapshot after a backoff that doubles per
  consecutive death up to ``restart_backoff_max_s``, and resets once a
  poll succeeds again.
* **state persistence**: the inner controller's state is encoded
  (via :mod:`repro.checkpoint.controllers`) every
  ``persist_interval_s`` *before* polling, so a restart resumes from a
  consistent pre-crash state — the vcmmd-style persist-across-restart
  pattern.

* **quarantine**: with ``max_restarts`` set, a controller that keeps
  dying without ever polling successfully again is abandoned after the
  budget — left dead permanently rather than thrash-restarted forever
  (the same retry-budget discipline :mod:`repro.core.fleetres` applies
  to whole fleet hosts).

Everything is observable through ``supervisor/*`` metrics: ``alive``
(gauge), ``crashes``, ``hang_kills`` and ``restarts`` (cumulative
counts recorded at each event edge), plus ``quarantined`` at the
abandonment edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class SupervisorConfig:
    """Watchdog tunables.

    Attributes:
        hang_timeout_s: heartbeat staleness after which a hung
            controller is killed.
        persist_interval_s: how often the inner controller's state is
            snapshotted for restart.
        restart_backoff_s: delay before the first restart attempt;
            doubles per consecutive death.
        restart_backoff_max_s: cap on the doubling backoff.
        max_restarts: consecutive restarts allowed before the
            controller is quarantined — left dead permanently, with
            ``supervisor/quarantined`` recording the edge. ``None``
            (the default) restarts forever, the historical behaviour.
    """

    hang_timeout_s: float = 30.0
    persist_interval_s: float = 30.0
    restart_backoff_s: float = 10.0
    restart_backoff_max_s: float = 120.0
    max_restarts: Optional[int] = None


@dataclass
class ControllerFaultState:
    """The fault seam the injector toggles on a supervised controller.

    Mirrors ``DeviceFaultState``/``ControlFsFaultState``: plans stay
    declarative, the injector folds active events into this state, and
    the supervisor reads it.
    """

    #: A ``controller_crash`` instant fired: the next poll dies.
    crash_pending: bool = False
    #: A ``controller_hang`` window is active: polls make no progress.
    hung: bool = False

    def clear(self) -> None:
        """Reset window-driven seams (called on window recompute).

        ``crash_pending`` is instant-driven — set once, consumed once —
        so a window-edge recompute in the same injector poll must not
        drop it.
        """
        self.hung = False


class Supervisor:
    """Wraps a controller with crash/hang detection and restart."""

    def __init__(
        self,
        controller: Any,
        config: SupervisorConfig = SupervisorConfig(),
    ) -> None:
        self.controller = controller
        self.config = config
        self.faults = ControllerFaultState()
        self.alive = True
        #: Permanently dead: the retry budget (``config.max_restarts``)
        #: is exhausted and the supervisor has stopped restarting.
        self.quarantined = False
        self.crash_count = 0
        self.hang_kill_count = 0
        self.restart_count = 0
        #: Manual un-quarantine operations (see
        #: :meth:`reset_quarantine`).
        self.unquarantine_count = 0
        #: Deaths since the last successful inner poll (drives both the
        #: backoff doubling and the quarantine decision).
        self._consecutive_deaths = 0
        self._last_heartbeat_s: Optional[float] = None
        self._next_persist_s: Optional[float] = None
        self._restart_at_s: Optional[float] = None
        self._backoff_s = config.restart_backoff_s
        #: Last encoded state of the inner controller; None until the
        #: first persist (which happens on the first poll, before the
        #: controller can die with unsaved state).
        self._persisted: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------

    def _persist(self, now: float) -> None:
        from repro.checkpoint.controllers import encode_controller

        self._persisted = encode_controller(self.controller)
        self._next_persist_s = now + self.config.persist_interval_s

    def _die(self, host, now: float, metric: str, count: int) -> None:
        self.alive = False
        self._consecutive_deaths += 1
        if (
            self.config.max_restarts is not None
            and self._consecutive_deaths > self.config.max_restarts
        ):
            # Retry budget exhausted: stop restarting for good.
            self.quarantined = True
            self._restart_at_s = None
            host.metrics.record("supervisor/quarantined", now, 1.0)
        else:
            self._restart_at_s = now + self._backoff_s
            self._backoff_s = min(
                self.config.restart_backoff_max_s, self._backoff_s * 2.0
            )
        host.metrics.record(metric, now, float(count))

    def _restart(self, host, now: float) -> None:
        from repro.checkpoint.controllers import decode_controller

        if self._persisted is not None:
            # The crashed instance's in-memory state is gone; the
            # replacement resumes from the last persisted snapshot.
            self.controller = decode_controller(self._persisted)
        self.alive = True
        self.restart_count += 1
        self._restart_at_s = None
        self._last_heartbeat_s = now
        self._next_persist_s = now + self.config.persist_interval_s
        host.metrics.record("supervisor/restarts", now,
                            float(self.restart_count))

    def _record(self, host, now: float) -> None:
        host.metrics.record("supervisor/alive", now,
                            1.0 if self.alive else 0.0)

    # ------------------------------------------------------------------
    # control-plane surface (repro.fleetd)

    def replace_controller(self, controller: Any) -> None:
        """Swap the supervised controller live (a policy rollout).

        The watchdog bookkeeping that belongs to the *old* instance —
        persisted state, heartbeat, backoff ladder — is reset so the
        replacement starts clean; liveness and quarantine are left
        untouched (swapping the policy of a quarantined host does not
        revive it — that is :meth:`reset_quarantine`'s job).
        """
        self.controller = controller
        self._persisted = None
        self._next_persist_s = None
        self._last_heartbeat_s = None
        self._backoff_s = self.config.restart_backoff_s

    def reset_quarantine(self, host, now: float) -> bool:
        """Manually re-admit a quarantined controller.

        The operator's repair path: quarantine means the *automatic*
        restart budget is exhausted, not that the controller is
        unsalvageable. Re-admission restarts it from its last persisted
        state (the same codec round-trip an automatic restart uses),
        resets the death streak and backoff ladder, and records the
        ``supervisor/unquarantined`` edge. Returns False (a no-op) when
        the controller is not quarantined.
        """
        if not self.quarantined:
            return False
        self.quarantined = False
        self._consecutive_deaths = 0
        self._backoff_s = self.config.restart_backoff_s
        self._restart_at_s = None
        self._restart(host, now)
        self.unquarantine_count += 1
        host.metrics.record(
            "supervisor/unquarantined", now,
            float(self.unquarantine_count),
        )
        return True

    # ------------------------------------------------------------------

    def poll(self, host, now: float) -> None:
        """One watchdog round: detect death, restart, or delegate."""
        if not self.alive:
            if self._restart_at_s is not None and now >= self._restart_at_s:
                self._restart(host, now)
            self._record(host, now)
            return
        if self.faults.crash_pending:
            self.faults.crash_pending = False
            self.crash_count += 1
            self._die(host, now, "supervisor/crashes", self.crash_count)
            self._record(host, now)
            return
        if self._last_heartbeat_s is None:
            self._last_heartbeat_s = now
        if self.faults.hung:
            # The controller is wedged: no inner poll, no heartbeat.
            stale_s = now - self._last_heartbeat_s
            if stale_s >= self.config.hang_timeout_s:
                self.hang_kill_count += 1
                self._die(host, now, "supervisor/hang_kills",
                          self.hang_kill_count)
            self._record(host, now)
            return
        if self._next_persist_s is None or now >= self._next_persist_s:
            self._persist(now)
        try:
            self.controller.poll(host, now)
        except Exception:
            self.crash_count += 1
            self._die(host, now, "supervisor/crashes", self.crash_count)
            self._record(host, now)
            return
        self._last_heartbeat_s = now
        self._backoff_s = self.config.restart_backoff_s
        self._consecutive_deaths = 0
        self._record(host, now)

    def __repr__(self) -> str:
        if self.quarantined:
            state = "quarantined"
        else:
            state = "alive" if self.alive else "dead"
        return (
            f"Supervisor({type(self.controller).__name__}, {state}, "
            f"crashes={self.crash_count}, hangs={self.hang_kill_count}, "
            f"restarts={self.restart_count})"
        )
