"""Senpai's reclaim-sizing formula (Section 3.3).

::

    reclaim_mem = current_mem * reclaim_ratio * max(0, 1 - PSI_some / PSI_threshold)

No memory is reclaimed when observed pressure exceeds the threshold; as
pressure approaches the threshold, the step shrinks toward zero, settling
the container at a mild steady-state pressure. The step is additionally
capped at a fraction of the workload size per period (1% in production),
bounding the contraction rate to minutes while leaving expansion
unimpeded (the stateless knob never blocks allocation).
"""

from __future__ import annotations


def reclaim_amount(
    current_mem: int,
    psi_some: float,
    psi_threshold: float,
    reclaim_ratio: float,
    max_step_frac: float = 0.01,
) -> int:
    """Compute one period's reclaim target in bytes.

    Args:
        current_mem: the cgroup's current memory footprint in bytes.
        psi_some: observed ``some`` pressure over the last period, as a
            fraction of wall time in [0, 1].
        psi_threshold: the target pressure (production: 0.001 = 0.1%).
        reclaim_ratio: the per-period reclaim fraction (production:
            0.0005).
        max_step_frac: hard cap on the step as a fraction of
            ``current_mem`` (production: 1%).

    Returns:
        Bytes to reclaim this period (>= 0).
    """
    if current_mem < 0:
        raise ValueError(f"current_mem must be >= 0, got {current_mem}")
    if psi_threshold <= 0:
        raise ValueError(f"psi_threshold must be > 0, got {psi_threshold}")
    if reclaim_ratio < 0 or max_step_frac < 0:
        raise ValueError("reclaim_ratio and max_step_frac must be >= 0")
    backoff = max(0.0, 1.0 - psi_some / psi_threshold)
    step = current_mem * reclaim_ratio * backoff
    cap = current_mem * max_step_frac
    return int(min(step, cap))
