"""The g-swap baseline: promotion-rate-targeted offloading.

Section 4.3 compares TMO against the approach of Lagar-Cavilla et al.
[18] as the paper describes it: offline profiling establishes a *target
page-promotion rate* (swap-ins per second) per application, and the
controller offloads as much memory as it can while keeping the observed
promotion rate below that static target.

The paper's critique — which :mod:`benchmarks.test_fig12_psi_vs_promotion`
demonstrates — is that the same promotion rate means very different
things on a fast and a slow device, so a static target either leaves
savings on the table (fast device) or hurts the workload (slow device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class GSwapConfig:
    """g-swap controller tunables.

    Attributes:
        target_promotion_rate: swap-ins/second the offline profile
            declared safe for the application.
        interval_s: control period.
        initial_step_frac: first reclaim step as a fraction of the
            container size.
        increase_factor / decrease_factor: multiplicative adaptation of
            the reclaim step while under / over the target.
        max_step_frac: upper bound on the step.
        cgroups: containers to control; None = all hosted workloads.
    """

    target_promotion_rate: float = 20.0
    interval_s: float = 6.0
    initial_step_frac: float = 0.001
    increase_factor: float = 1.25
    decrease_factor: float = 0.5
    max_step_frac: float = 0.01
    cgroups: Optional[Tuple[str, ...]] = None


@dataclass
class _GswapState:
    step_frac: float
    last_pswpin: int = 0
    seen: bool = False


def profile_target_rate(
    host,
    cgroup: str,
    duration_s: float = 600.0,
    cold_age_s: float = 300.0,
    acceptable_fault_share: float = 0.10,
) -> float:
    """The offline-profiling step a g-swap deployment needs.

    Scans the container's idle-page ages (the cold-age-histogram
    methodology of [18]) and derives a static promotion-rate target:
    the rate at which re-touches of the cold band are expected to fault,
    scaled by the profiler's acceptable-fault budget.

    This is exactly the fragile part the paper criticises — the target
    is computed **once**, against whatever device and workload phase the
    profiling run happened to observe.
    """
    from repro.kernel.idle import IdlePageTracker

    host.run(duration_s)
    now = host.clock.now
    tracker = IdlePageTracker(host.mm)
    cold_pages = tracker.cold_bytes(
        cgroup, now, age_threshold_s=cold_age_s
    ) / host.mm.page_size_bytes
    # Expected re-touch rate of the cold band if fully offloaded:
    # roughly one touch per cold page per its age scale.
    expected_rate = cold_pages / max(1.0, cold_age_s)
    return max(0.01, expected_rate * acceptable_fault_share)


class GSwapController:
    """Static-promotion-rate-target controller (the paper's comparator)."""

    def __init__(self, config: GSwapConfig = GSwapConfig()) -> None:
        self.config = config
        self._states: Dict[str, _GswapState] = {}
        self._next_poll: Optional[float] = None
        # cgroup -> memoized metric-series name; formatting stays out
        # of the per-cgroup poll loop (TMO018). Rebuilt lazily, so a
        # restored controller just re-memoizes.
        self._metric_names: Dict[str, str] = {}  # tmo-lint: transient -- name memo

    def _targets(self, host):
        if self.config.cgroups is not None:
            return list(self.config.cgroups)
        return [h.cgroup_name for h in host.hosted()]

    def _reclaim_metric(self, cgroup: str) -> str:
        name = self._metric_names.get(cgroup)
        if name is None:
            name = f"{cgroup}/gswap_reclaim"
            self._metric_names[cgroup] = name
        return name

    def poll(self, host, now: float) -> None:
        if self._next_poll is None:
            self._next_poll = now + self.config.interval_s
            for cgroup in self._targets(host):
                state = self._states.setdefault(
                    cgroup, _GswapState(self.config.initial_step_frac)
                )
                state.last_pswpin = host.mm.cgroup(cgroup).vmstat.pswpin
                state.seen = True
            return
        if now + 1e-9 < self._next_poll:
            return
        self._next_poll = now + self.config.interval_s

        for cgroup in self._targets(host):
            state = self._states.setdefault(
                cgroup, _GswapState(self.config.initial_step_frac)
            )
            pswpin = host.mm.cgroup(cgroup).vmstat.pswpin
            rate = (pswpin - state.last_pswpin) / self.config.interval_s
            state.last_pswpin = pswpin

            if rate >= self.config.target_promotion_rate:
                # Over target: back off and skip reclaim this period.
                state.step_frac = max(
                    1e-5, state.step_frac * self.config.decrease_factor
                )
                host.metrics.record(self._reclaim_metric(cgroup), now, 0.0)
                continue
            state.step_frac = min(
                self.config.max_step_frac,
                state.step_frac * self.config.increase_factor,
            )
            current = host.mm.cgroup(cgroup).current_bytes()
            target = int(current * state.step_frac)
            outcome = host.mm.memory_reclaim(cgroup, target, now)
            host.metrics.record(
                self._reclaim_metric(cgroup), now, outcome.reclaimed_bytes
            )
