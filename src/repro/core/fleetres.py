"""Fleet resilience runtime: deadlines, recovery, retry, quarantine.

TMO runs on millions of servers where individual hosts crash, hang and
slow down constantly; fleet-wide savings numbers are only trustworthy
because the deployment tolerates partial failure. This module is the
robustness layer :class:`repro.core.fleet.Fleet` executes through:

* **Deadlines** — every host unit of work gets a wall-clock budget
  derived from its simulated duration. A worker that blows it is killed
  and treated as hung, so a wedged worker can no longer stall a rollout.
* **Checkpoint-based recovery** — workers periodically spool a snapshot
  (the :mod:`repro.checkpoint` envelope) to a per-host file; a crashed
  or hung host is retried by restoring its latest valid snapshot and
  continuing. The codec's crash-equivalence guarantee (see
  docs/RESILIENCE.md, "Recovery") makes the recovered host's metric
  digest bit-identical to an uninterrupted run.
* **Retry budgets + quarantine** — each host gets capped
  exponential-backoff retries; after ``max_attempts`` failures it is
  quarantined as a structured :class:`~repro.core.fleet.FailedHost`
  (phase, attempts, derived seed, traceback tail).
* **Fault consumption** — the seed-derived ``worker_crash`` /
  ``worker_hang`` / ``worker_slow`` events of a
  :class:`~repro.faults.plan.FaultPlan` are fired here, at the runner
  level, not by the in-host injector: they model the *worker process*
  failing, not the simulated host.

Two execution paths share every other line of logic:

* **serial** (``in_process=True``): faults are cooperative —
  ``worker_crash``/``worker_hang`` raise a simulated-failure exception
  that the attempt loop treats exactly like a real worker death, with
  instant detection instead of a deadline wait;
* **parallel**: each attempt runs in its own ``multiprocessing``
  process (fork start method where available, so test monkeypatches
  propagate). ``worker_crash`` hard-exits the process, ``worker_hang``
  wedges it until the deadline kill.

This module legitimately reads the wall clock and sleeps: it
orchestrates *real* processes around the simulation, it is not part of
the simulation (the TMO002 lint exemption in ``repro.lint.config``
records this).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import sys
import time
import traceback
from dataclasses import dataclass, replace
from math import ceil, isfinite
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint import SnapshotError
from repro.checkpoint.snapshot import dump_envelope, parse_document
from repro.faults.plan import FaultEvent
from repro.sim.host import Host
from repro.sim.rng import derive_seed

#: Exit code a parallel worker dies with when a ``worker_crash`` fault
#: fires (distinguishable from a genuine interpreter fault in logs).
CRASH_EXIT_CODE = 173

#: Scheduler poll interval while waiting on worker pipes (seconds).
_POLL_S = 0.02

#: Grace period between ``terminate()`` and ``kill()`` on a deadline
#: overrun (seconds).
_TERM_GRACE_S = 1.0


class SimulatedWorkerCrash(RuntimeError):
    """A ``worker_crash`` fault firing on the in-process (serial) path."""


class SimulatedWorkerHang(RuntimeError):
    """A ``worker_hang`` fault firing on the in-process (serial) path.

    Serial execution cannot literally wedge and be deadline-killed
    without stalling the whole rollout, so the hang is cooperative: it
    raises, and the attempt loop records the failure as hung — the same
    outcome the parallel path reaches via terminate-at-deadline.
    """


@dataclass(frozen=True)
class FleetResilienceConfig:
    """Policy knobs for one resilient fleet rollout.

    Attributes:
        max_attempts: total tries per host (first run + retries) before
            quarantine.
        retry_backoff_s: base delay before the first retry; doubles per
            subsequent failure.
        retry_backoff_max_s: cap on the backoff delay.
        deadline_min_s: floor on the per-host wall-clock budget.
        deadline_per_sim_s: wall-clock budget per simulated second; the
            deadline is ``max(deadline_min_s, duration_s * this)``.
        checkpoint_every_s: simulated-time interval between snapshot
            spools (rounded to whole ticks; at least one tick).
        slow_stall_s: wall-clock stall per unit severity when a
            ``worker_slow`` fault fires.
        spool_dir: directory for per-host snapshot spools; ``None``
            means the caller provisions a temporary directory.
    """

    max_attempts: int = 3
    retry_backoff_s: float = 0.05
    retry_backoff_max_s: float = 1.0
    deadline_min_s: float = 60.0
    deadline_per_sim_s: float = 0.5
    checkpoint_every_s: float = 60.0
    slow_stall_s: float = 1.0
    spool_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.retry_backoff_s < 0 or self.retry_backoff_max_s < 0:
            raise ValueError("retry backoffs must be >= 0")
        if self.deadline_min_s <= 0 or self.deadline_per_sim_s < 0:
            raise ValueError("deadline parameters must be positive")
        if self.checkpoint_every_s <= 0:
            raise ValueError(
                f"checkpoint_every_s must be > 0, "
                f"got {self.checkpoint_every_s}"
            )

    def deadline_s(self, duration_s: float) -> float:
        """Wall-clock budget for one attempt at a ``duration_s`` host."""
        return max(
            self.deadline_min_s, duration_s * self.deadline_per_sim_s
        )

    def backoff_s(self, failure_count: int) -> float:
        """Delay before the retry following failure ``failure_count``."""
        if failure_count < 1:
            return 0.0
        return min(
            self.retry_backoff_max_s,
            self.retry_backoff_s * (2.0 ** (failure_count - 1)),
        )


@dataclass(frozen=True)
class HostUnit:
    """One host's unit of work: everything an attempt needs, picklable.

    ``slot`` is the host's position in the fleet's canonical rollout
    order — the coordinate worker-level fault events target
    (``host:<slot>``). ``attempt`` is 1-based; fault events fire only on
    attempt 1, so a retry replays the surviving simulation state rather
    than re-injecting the process failure.
    """

    base_config: Any  # repro.sim.host.HostConfig (kept loose for pickle)
    fleet_seed: int
    plan: Any  # repro.core.fleet.HostPlan
    index: int
    slot: int
    duration_s: float
    spool_path: str
    checkpoint_every_s: float
    faults: Tuple[FaultEvent, ...] = ()
    attempt: int = 1
    slow_stall_s: float = 1.0

    @property
    def host_seed(self) -> int:
        """The derived seed this unit's host runs with."""
        return derive_seed(
            self.fleet_seed, f"host:{self.plan.app}:{self.index}"
        )


@dataclass(frozen=True)
class WorkerFailure:
    """One failed attempt, as observed by the scheduler.

    Attributes:
        phase: where the attempt died — ``"build"``, ``"run"`` or
            ``"measure"``.
        error: repr of the exception (or a synthesized description for
            process-level deaths).
        traceback_tail: last lines of the traceback, when one exists.
        hung: whether the failure was a hang (deadline kill or
            simulated hang) rather than a crash.
    """

    phase: str
    error: str
    traceback_tail: str = ""
    hung: bool = False


def _ticks_for(duration_s: float, tick_s: float) -> int:
    """Integer tick count for a duration — :meth:`Host.run`'s formula."""
    ratio = duration_s / tick_s
    nticks = int(ratio)
    if ratio - nticks > 1e-9 * max(1.0, ratio):
        nticks += 1
    return nticks


def _fire_tick(event: FaultEvent, tick_s: float) -> int:
    """The 1-based tick after which ``event`` fires.

    Aligned to the integer tick grid (never float accumulation): the
    event fires once the simulation clock first reaches or passes
    ``start_s``, i.e. after tick ``ceil(start_s / tick_s)``.
    """
    return max(1, ceil(event.start_s / tick_s))


def spool_snapshot(host: Host, path: str) -> None:
    """Atomically write ``host``'s snapshot envelope to ``path``.

    Written to ``path + ".tmp"`` then renamed, so a worker dying
    mid-write can never leave a torn spool file: the previous valid
    snapshot (or absence of one) survives.
    """
    text = dump_envelope(host.snapshot())
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def load_spooled_snapshot(path: str) -> Optional[Host]:
    """Restore a host from its spool file, or ``None`` if impossible.

    Any failure — missing file, torn write, digest mismatch, schema
    refusal — degrades to ``None``: the caller falls back to a
    from-scratch rerun, which is always correct, just slower.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        return None
    try:
        return Host.restore(parse_document(text))
    except SnapshotError:
        return None


def _fire(event: FaultEvent, unit: HostUnit, in_process: bool) -> None:
    """Fire one worker-level fault event."""
    if event.kind == "worker_crash":
        if in_process:
            raise SimulatedWorkerCrash(
                f"worker_crash fault at t={event.start_s:.0f}s "
                f"(host slot {unit.slot})"
            )
        # A real worker death: no exception propagation, no cleanup,
        # no result ever sent. The scheduler observes a dead process.
        os._exit(CRASH_EXIT_CODE)
    if event.kind == "worker_hang":
        if in_process:
            raise SimulatedWorkerHang(
                f"worker_hang fault at t={event.start_s:.0f}s "
                f"(host slot {unit.slot})"
            )
        # Wedge until the deadline kill arrives.
        while True:  # pragma: no cover - killed externally
            time.sleep(3600.0)
    if event.kind == "worker_slow":
        time.sleep(event.severity * unit.slow_stall_s)
        return
    raise ValueError(f"not a worker fault kind: {event.kind!r}")


def _run_with_spool(host: Host, unit: HostUnit, in_process: bool) -> None:
    """Drive ``host`` to ``unit.duration_s``, spooling checkpoints.

    The loop is integer-tick driven (same formula as :meth:`Host.run`)
    and resume-aware: a restored host picks up at ``host.tick_count``
    and executes exactly the remaining ticks, so the completed tick
    sequence — and therefore every metric series — is identical to an
    uninterrupted run. Spools happen every ``checkpoint_every_s`` of
    simulated time, after any fault events at that tick have fired (a
    crash therefore never makes it into the snapshot that outlives it).
    """
    tick_s = host.config.tick_s
    total_ticks = _ticks_for(unit.duration_s, tick_s)
    if isfinite(unit.checkpoint_every_s):
        ckpt_ticks = max(1, int(round(unit.checkpoint_every_s / tick_s)))
    else:
        # Spooling disabled (Fleet.run's fault-free fast path): retries
        # rerun from scratch instead of restoring.
        ckpt_ticks = total_ticks + 1
    fire_at: Dict[int, List[FaultEvent]] = {}
    if unit.attempt == 1:
        for event in unit.faults:
            fire_at.setdefault(_fire_tick(event, tick_s), []).append(event)
    for t in range(host.tick_count + 1, total_ticks + 1):
        host.step()
        for event in fire_at.get(t, ()):
            _fire(event, unit, in_process)
        if t % ckpt_ticks == 0 and t < total_ticks:
            spool_snapshot(host, unit.spool_path)


def run_host_attempt(unit: HostUnit, in_process: bool = True):
    """One attempt at one host: build-or-restore, run, measure.

    Returns a :class:`~repro.core.fleet.HostReport` on success or a
    :class:`WorkerFailure` on any in-attempt exception (including the
    simulated serial-path faults). On the parallel path a
    ``worker_crash``/``worker_hang`` fault never returns at all — the
    process dies or wedges and the scheduler synthesizes the failure.
    """
    # Deferred: fleet.py imports this module for its runner.
    from repro.core.fleet import build_fleet_host, measure_fleet_host

    phase = "build"
    recovered = False
    try:
        host: Optional[Host] = None
        if unit.attempt > 1:
            host = load_spooled_snapshot(unit.spool_path)
            recovered = host is not None
        if host is None:
            host = build_fleet_host(
                unit.base_config, unit.fleet_seed, unit.plan, unit.index
            )
        phase = "run"
        _run_with_spool(host, unit, in_process)
        phase = "measure"
        report = measure_fleet_host(host, unit.plan, unit.index)
        report.attempts = unit.attempt
        report.recovered = recovered
        return report
    except SimulatedWorkerHang as exc:
        return WorkerFailure(phase=phase, error=repr(exc), hung=True)
    except SimulatedWorkerCrash as exc:
        return WorkerFailure(phase=phase, error=repr(exc), hung=False)
    except Exception as exc:
        tail = "".join(
            traceback.format_exception(
                type(exc), exc, exc.__traceback__
            )
        ).strip().splitlines()[-6:]
        return WorkerFailure(
            phase=phase, error=repr(exc),
            traceback_tail="\n".join(tail),
        )


def _worker_main(conn, unit: HostUnit) -> None:
    """Parallel worker entrypoint: run one attempt, pipe back the outcome.

    Looks ``run_host_attempt`` up through the module object so test
    monkeypatches (which the fork start method propagates) take effect
    in the child too.
    """
    import repro.core.fleetres as _self

    try:
        outcome = _self.run_host_attempt(unit, in_process=False)
        conn.send(outcome)
    except BaseException as exc:  # pragma: no cover - last-ditch guard
        try:
            conn.send(WorkerFailure(phase="run", error=repr(exc)))
        except Exception as send_exc:
            # The pipe is gone too; the parent will synthesize a
            # crash failure from the dead process. Leave a trace for
            # the operator's stderr.
            print(
                f"fleetres worker: result delivery failed "
                f"({send_exc!r}) after {exc!r}",
                file=sys.stderr,
            )
    finally:
        conn.close()


def _quarantine(unit: HostUnit, failures: Sequence[WorkerFailure]):
    """Build the structured quarantine record for an exhausted host."""
    from repro.core.fleet import FailedHost

    last = failures[-1]
    return FailedHost(
        app=unit.plan.app,
        host_index=unit.index,
        error=last.error,
        seed=unit.host_seed,
        phase=last.phase,
        attempts=len(failures),
        traceback_tail=last.traceback_tail,
        hung=last.hung,
    )


def _run_unit_serial(unit: HostUnit, config: FleetResilienceConfig):
    """The serial attempt loop: retry with backoff, then quarantine."""
    failures: List[WorkerFailure] = []
    for attempt in range(1, config.max_attempts + 1):
        outcome = run_host_attempt(
            replace(unit, attempt=attempt), in_process=True
        )
        if not isinstance(outcome, WorkerFailure):
            return outcome
        failures.append(outcome)
        if attempt < config.max_attempts:
            time.sleep(config.backoff_s(len(failures)))
    return _quarantine(unit, failures)


@dataclass
class _UnitState:
    """Parallel-scheduler bookkeeping for one host unit."""

    unit: HostUnit
    order: int  # tmo-lint: transient -- scheduler bookkeeping
    attempt: int = 1  # tmo-lint: transient -- scheduler bookkeeping
    ready_at: float = 0.0  # tmo-lint: transient -- scheduler bookkeeping
    outcome: Any = None  # tmo-lint: transient -- scheduler bookkeeping
    failures: Tuple[WorkerFailure, ...] = ()  # tmo-lint: transient -- log


def _mp_context():
    """Fork where available (monkeypatches propagate to children)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _collect_outcome(proc, conn) -> Optional[Any]:
    """Drain a finished/living worker's pipe, if a result is waiting."""
    try:
        if conn.poll(0):
            return conn.recv()
    except (EOFError, OSError):
        return None
    return None


def _handle_failure(
    state: _UnitState,
    failure: WorkerFailure,
    config: FleetResilienceConfig,
    waiting: List[_UnitState],
) -> Optional[Any]:
    """Record one failed attempt; requeue or quarantine. Returns the
    final outcome when the host is quarantined, else ``None``."""
    state.failures = state.failures + (failure,)
    if state.attempt >= config.max_attempts:
        return _quarantine(state.unit, state.failures)
    state.attempt += 1
    state.ready_at = time.monotonic() + config.backoff_s(
        len(state.failures)
    )
    waiting.append(state)
    return None


def _run_units_parallel(
    units: Sequence[HostUnit],
    workers: int,
    config: FleetResilienceConfig,
) -> List[Any]:
    """The parallel scheduler: launch, deadline-kill, retry, quarantine.

    Own mini process pool (``multiprocessing.Process`` + ``Pipe``)
    rather than :class:`~concurrent.futures.ProcessPoolExecutor`: the
    executor cannot kill a hung worker without breaking the whole pool,
    and deadline kills are the point.
    """
    ctx = _mp_context()
    states = [
        _UnitState(unit=unit, order=i) for i, unit in enumerate(units)
    ]
    waiting: List[_UnitState] = list(states)
    # state -> (process, parent pipe end, wall-clock kill time)
    running: Dict[int, Tuple[Any, Any, float, _UnitState]] = {}
    try:
        while waiting or running:
            now = time.monotonic()
            # Launch everything ready, up to the worker cap.
            launchable = [
                s for s in waiting if s.ready_at <= now
            ]
            for state in launchable:
                if len(running) >= workers:
                    break
                waiting.remove(state)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                unit = replace(state.unit, attempt=state.attempt)
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn, unit),
                )
                proc.start()
                child_conn.close()
                kill_at = now + config.deadline_s(unit.duration_s)
                running[id(state)] = (proc, parent_conn, kill_at, state)

            progressed = False
            for key in list(running):
                proc, conn, kill_at, state = running[key]
                outcome = _collect_outcome(proc, conn)
                if outcome is None and not proc.is_alive():
                    # Worker exited without a drained result. One last
                    # poll closes the send-then-exit race window.
                    try:
                        if conn.poll(0.2):
                            outcome = conn.recv()
                    except (EOFError, OSError):
                        outcome = None
                    if outcome is None:
                        outcome = WorkerFailure(
                            phase="run",
                            error=(
                                "worker process died "
                                f"(exitcode={proc.exitcode})"
                            ),
                        )
                elif outcome is None and time.monotonic() >= kill_at:
                    # Deadline blown: kill the worker, record a hang.
                    proc.terminate()
                    proc.join(_TERM_GRACE_S)
                    if proc.is_alive():  # pragma: no cover - stubborn
                        proc.kill()
                        proc.join()
                    outcome = WorkerFailure(
                        phase="run",
                        error=(
                            "worker deadline exceeded "
                            f"({config.deadline_s(state.unit.duration_s):.0f}s "
                            "wall clock); killed"
                        ),
                        hung=True,
                    )
                if outcome is None:
                    continue
                progressed = True
                del running[key]
                proc.join()
                conn.close()
                if isinstance(outcome, WorkerFailure):
                    final = _handle_failure(
                        state, outcome, config, waiting
                    )
                    if final is not None:
                        state.outcome = final
                else:
                    state.outcome = outcome
            if not progressed and running:
                # Sleep until a worker pipe has data (or its end dies,
                # which also readies the pipe), the earliest deadline,
                # or the earliest backoff expiry — whichever is first.
                now = time.monotonic()
                horizon = min(
                    [kill_at for _, _, kill_at, _ in running.values()]
                    + [s.ready_at for s in waiting]
                )
                multiprocessing.connection.wait(
                    [conn for _, conn, _, _ in running.values()],
                    timeout=max(0.0, min(horizon - now, _POLL_S * 50)),
                )
            elif not progressed:
                time.sleep(_POLL_S)
    finally:
        for proc, conn, _, _ in running.values():
            proc.terminate()
            proc.join(_TERM_GRACE_S)
            if proc.is_alive():  # pragma: no cover - stubborn
                proc.kill()
                proc.join()
            conn.close()
    return [state.outcome for state in states]


def run_units(
    units: Sequence[HostUnit],
    workers: int,
    config: FleetResilienceConfig,
) -> List[Any]:
    """Run every unit through the resilience runtime.

    Outcomes (:class:`~repro.core.fleet.HostReport` or
    :class:`~repro.core.fleet.FailedHost`) come back in the input
    order, regardless of completion order, preserving the fleet's
    parallel-vs-serial bit-identity contract.
    """
    if workers <= 1:
        return [_run_unit_serial(unit, config) for unit in units]
    return _run_units_parallel(units, workers, config)
