"""Tick-share profiling behind ``python -m repro bench --profile``.

Runs the microbench scenario (the same warmed bench host the
regression gate times) under :mod:`cProfile` and writes a
schema-versioned per-function profile the hot-path lint consumes:
``tmo-lint --flow --profile BENCH_profile.json`` escalates findings in
measured-hot functions and reports functions that are measured hot but
unreachable in the static hot region.

The schema is owned by the consumer — :data:`PROFILE_SCHEMA_VERSION`
is imported from :mod:`repro.lint.hotpath` so the lint CLI stays
import-light and the two sides cannot drift apart.

Document shape::

    {
      "schema_version": 1,
      "bench_id": "BENCH_5",
      "seed": 20260704,
      "steps": 2000,
      "total_tt_s": 1.23,
      "functions": [
        {"file": "src/repro/sim/host.py", "line": 397,
         "name": "step", "ncalls": 2000, "cumtime_s": 1.20,
         "tottime_s": 0.04, "tick_share": 0.97},
        ...
      ]
    }

``tick_share`` is cumulative time divided by total profiled time
(clamped to 1.0): the fraction of the tick loop spent in or under that
function. Built-in/stdlib frames (``<...>``, ``~``) are dropped; the
lint matches the rest to its static call graph by file and name.

Profiling happens *after* warm-up, and drives :meth:`Host.step`
directly rather than :meth:`Host.run`, so bench-driver frames never
show up as hot-but-unanalyzed.
"""

from __future__ import annotations

import cProfile
import json
import pstats
from pathlib import Path
from typing import Any, Dict, Union

from repro.lint.hotpath import PROFILE_SCHEMA_VERSION
from repro.perf.harness import BENCH_ID, BENCH_SEED, _bench_host

#: Default output path; CI uploads it next to ``lint-stats.json``.
PROFILE_DEFAULT_OUT = "BENCH_profile.json"

#: Microbench defaults: long enough for stable shares, short enough
#: for CI (the profiled region is a few seconds of simulated load).
DEFAULT_PROFILE_STEPS = 2000
DEFAULT_WARMUP_S = 30.0


def run_profile(
    seed: int = BENCH_SEED,
    steps: int = DEFAULT_PROFILE_STEPS,
    warmup_s: float = DEFAULT_WARMUP_S,
) -> Dict[str, Any]:
    """Profile ``steps`` ticks of the warmed bench host.

    Returns the profile document (see module docstring); callers
    persist it with :func:`write_profile`.
    """
    host = _bench_host(seed)
    host.run(warmup_s)  # fault in the working set outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(steps):
        host.step()
    profiler.disable()

    stats = pstats.Stats(profiler)
    total = max(getattr(stats, "total_tt", 0.0), 1e-12)
    functions = []
    for (filename, line, name), entry in stats.stats.items():  # type: ignore[attr-defined]
        cc, nc, tt, ct = entry[0], entry[1], entry[2], entry[3]
        if filename.startswith("<") or filename.startswith("~"):
            continue
        functions.append({
            "file": Path(filename).as_posix(),
            "line": int(line),
            "name": name,
            "ncalls": int(nc),
            "tottime_s": round(float(tt), 6),
            "cumtime_s": round(float(ct), 6),
            "tick_share": round(min(float(ct) / total, 1.0), 6),
        })
    functions.sort(key=lambda f: (-f["tick_share"], f["file"], f["name"]))
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "bench_id": BENCH_ID,
        "seed": seed,
        "steps": steps,
        "total_tt_s": round(float(total), 6),
        "functions": functions,
    }


def write_profile(
    document: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write a profile document as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path
