"""The benchmark harness behind ``python -m repro bench``.

Runs a canonical scenario matrix over the simulator's hot paths and
emits a machine-readable report (``BENCH_5.json``):

* ``microbench_tick`` — steady-state cost of one :meth:`Host.step` on a
  warmed bench host (the number the ≥3× tentpole target is stated in).
* ``single_host``    — an end-to-end single-host run under Senpai.
* ``fleet_serial`` / ``fleet_parallel`` — the same fleet rollout with
  ``workers=1`` and ``workers=N``; their metric digests must agree.
* ``chaos``          — a fault-injected run under invariant checking.

Every scenario reports wall-clock seconds, simulated ticks/sec, pages
reclaimed/sec and peak RSS. Because absolute ticks/sec depends on the
machine, the regression gate compares *normalized* scores: each
scenario's ticks/sec divided by a pure-Python calibration loop's ops/sec
measured in the same process, which cancels most host-speed variation
between the committed baseline and the CI runner.

Wall-clock reads here are measurement of the simulator, not simulated
state, and are the one sanctioned exception to the repo's wall-clock
ban (TMO002); nothing read from the clock flows into simulation state
or metric series.
"""

from __future__ import annotations

import json
import resource
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.core.fleet import Fleet, HostPlan
from repro.core.senpai import Senpai, SenpaiConfig
from repro.faults.chaos import ChaosConfig, build_chaos_host
from repro.sim.host import Host, HostConfig
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload

MB = 1 << 20

BENCH_SCHEMA_VERSION = 1
BENCH_ID = "BENCH_5"
BENCH_SEED = 20260704

#: Allowed relative drop of a scenario's normalized score vs. baseline.
DEFAULT_TOLERANCE = 0.20

#: Raw ticks/sec measured at the pre-PR commit with these same scenario
#: definitions, on the machine that produced benchmarks/
#: BENCH_baseline.json. Only ``speedup_vs_pre_pr`` on comparable
#: hardware is meaningful; the regression gate never uses these.
PRE_PR_TICKS_PER_S: Dict[str, float] = {
    "microbench_tick": 2730.7,
    "single_host": 1823.5,
    "fleet_serial": 377.8,
    "chaos": 681.9,
}


def _wall() -> float:
    """Monotonic wall clock for timing the simulator itself."""
    return time.perf_counter()  # lint: ignore[TMO002]


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process so far (bytes)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _pgsteal(host: Host) -> int:
    return sum(cg.vmstat.pgsteal for cg in host.mm.cgroups())


def calibrate(ops: int = 2_000_000) -> float:
    """Ops/sec of a fixed pure-Python loop on this machine.

    The unit the regression gate normalizes by: scenario ticks/sec
    divided by this cancels interpreter/host speed differences between
    the baseline machine and the current one.
    """
    t0 = _wall()
    acc = 0
    for i in range(ops):
        acc += i & 7
    elapsed = _wall() - t0
    del acc
    return ops / max(elapsed, 1e-9)


@dataclass
class ScenarioResult:
    """One scenario's measurements, as serialized into the report."""

    wall_s: float
    ticks: int
    ticks_per_s: float
    pages_reclaimed: int
    pages_reclaimed_per_s: float
    peak_rss_bytes: int


def _measure(
    ticks_fn: Callable[[], Tuple[int, int]]
) -> ScenarioResult:
    """Time one scenario body returning ``(ticks, pages_reclaimed)``."""
    t0 = _wall()
    ticks, reclaimed = ticks_fn()
    wall = max(_wall() - t0, 1e-9)
    return ScenarioResult(
        wall_s=wall,
        ticks=ticks,
        ticks_per_s=ticks / wall,
        pages_reclaimed=reclaimed,
        pages_reclaimed_per_s=reclaimed / wall,
        peak_rss_bytes=_peak_rss_bytes(),
    )


# ----------------------------------------------------------------------
# scenario definitions


def _bench_host(seed: int) -> Host:
    """The standard bench host: 4 GB / 1 MiB pages / Feed under Senpai."""
    host = Host(HostConfig(
        ram_gb=4.0,
        ncpu=16,
        page_size_bytes=1 * MB,
        seed=seed,
        backend="zswap",
    ))
    host.add_workload(
        Workload, profile=APP_CATALOG["Feed"], name="app", size_scale=0.05,
    )
    host.add_controller(Senpai(SenpaiConfig()))
    return host


def _scenario_microbench(
    seed: int, steps: int, rounds: int = 3
) -> ScenarioResult:
    """Steady-state tick cost: best of ``rounds`` timed runs.

    Warm-up (faulting in the working set) happens outside the timed
    region, and the best round is reported — standard microbenchmark
    practice to suppress scheduler noise on shared runners.
    """
    host = _bench_host(seed)
    host.run(30.0)
    best: Optional[ScenarioResult] = None
    for _ in range(rounds):
        before = _pgsteal(host)

        def body() -> Tuple[int, int]:
            for _ in range(steps):
                host.step()
            return steps, _pgsteal(host) - before

        result = _measure(body)
        if best is None or result.ticks_per_s > best.ticks_per_s:
            best = result
    assert best is not None
    return best


def _scenario_single_host(seed: int, duration_s: float) -> Tuple[int, int]:
    host = _bench_host(seed)
    host.run(duration_s)
    return host.tick_count, _pgsteal(host)


def _fleet_plans(quick: bool) -> List[HostPlan]:
    count = 1 if quick else 2
    return [
        HostPlan(app="Feed", count=count, size_scale=0.003),
        HostPlan(app="Web", count=count, size_scale=0.003),
    ]


def _scenario_fleet(
    seed: int, duration_s: float, quick: bool, workers: Optional[int]
) -> Tuple[Tuple[int, int], List[str]]:
    config = HostConfig(ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4)
    fleet = Fleet(base_config=config, seed=seed)
    result = fleet.run(_fleet_plans(quick), duration_s, workers=workers)
    ticks = (len(result.reports) + len(result.failed_hosts)) * int(
        duration_s / config.tick_s
    )
    reclaimed = sum(r.pgsteal for r in result.reports)
    digests = [r.metrics_digest for r in result.reports]
    return (ticks, reclaimed), digests


def _scenario_fleet_faulted(
    seed: int, duration_s: float, quick: bool
) -> Tuple[Tuple[int, int], List[str]]:
    """A serial fleet under a worker-fault storm with recovery.

    Measures the resilience runtime's overhead path: periodic
    checkpoint spooling, simulated crash/hang faults, restore-and-
    continue retries. Digest-compatible with the fault-free fleet
    scenarios — recovery must not change what the hosts compute.
    """
    from repro.core.fleetres import FleetResilienceConfig
    from repro.faults.plan import FaultPlan

    config = HostConfig(ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4)
    plans = _fleet_plans(quick)
    planned = sum(plan.count for plan in plans)
    fault_plan = FaultPlan.generate(
        seed, duration_s, extra_events=0,
        worker_faults=2, fleet_hosts=planned,
    )
    resilience = FleetResilienceConfig(
        retry_backoff_s=0.01,
        retry_backoff_max_s=0.1,
        checkpoint_every_s=30.0,
    )
    fleet = Fleet(base_config=config, seed=seed)
    result = fleet.run(
        plans, duration_s,
        resilience=resilience, fault_plan=fault_plan,
    )
    ticks = planned * int(duration_s / config.tick_s)
    reclaimed = sum(r.pgsteal for r in result.reports)
    digests = [r.metrics_digest for r in result.reports]
    return (ticks, reclaimed), digests


def _scenario_chaos(seed: int, duration_s: float) -> Tuple[int, int]:
    host, _injector, _senpai = build_chaos_host(
        ChaosConfig(seed=seed, duration_s=duration_s)
    )
    host.run(duration_s)
    return host.tick_count, _pgsteal(host)


# ----------------------------------------------------------------------
# harness


def run_bench(
    seed: int = BENCH_SEED,
    quick: bool = False,
    workers: int = 4,
) -> Dict:
    """Run the full scenario matrix and return the report dict.

    ``quick=True`` shrinks every scenario (for tests and smoke runs);
    quick reports are still schema-valid but their numbers are noisy —
    never commit one as the baseline.
    """
    micro_steps = 200 if quick else 2000
    single_s = 60.0 if quick else 600.0
    fleet_s = 60.0 if quick else 300.0
    chaos_s = 120.0 if quick else 600.0

    calibration = calibrate()
    scenarios: Dict[str, ScenarioResult] = {}

    scenarios["microbench_tick"] = _scenario_microbench(seed, micro_steps)
    scenarios["single_host"] = _measure(
        lambda: _scenario_single_host(seed, single_s)
    )

    serial_digests: List[str] = []
    parallel_digests: List[str] = []

    def fleet_body(workers_n: Optional[int], sink: List[str]):
        def run() -> Tuple[int, int]:
            counts, digests = _scenario_fleet(
                seed, fleet_s, quick, workers_n
            )
            sink.extend(digests)
            return counts
        return run

    scenarios["fleet_serial"] = _measure(
        fleet_body(None, serial_digests)
    )
    scenarios["fleet_parallel"] = _measure(
        fleet_body(workers, parallel_digests)
    )

    faulted_digests: List[str] = []

    def fleet_faulted_body() -> Tuple[int, int]:
        counts, digests = _scenario_fleet_faulted(seed, fleet_s, quick)
        faulted_digests.extend(digests)
        return counts

    scenarios["fleet_faulted"] = _measure(fleet_faulted_body)
    scenarios["chaos"] = _measure(
        lambda: _scenario_chaos(seed, chaos_s)
    )

    report: Dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench_id": BENCH_ID,
        "seed": seed,
        "quick": quick,
        "workers": workers,
        "calibration_ops_per_s": calibration,
        "scenarios": {},
        "parallel_digests_match": (
            bool(serial_digests) and serial_digests == parallel_digests
        ),
        # Recovery equivalence at bench scale: the faulted fleet (with
        # crash/hang injection and checkpoint restores) must reproduce
        # the fault-free serial digests exactly.
        "faulted_digests_match": (
            bool(serial_digests) and serial_digests == faulted_digests
        ),
        "pre_pr": dict(PRE_PR_TICKS_PER_S),
        "speedup_vs_pre_pr": {},
    }
    for name, res in scenarios.items():
        entry = asdict(res)
        entry["normalized_score"] = res.ticks_per_s / calibration
        report["scenarios"][name] = entry
        if name in PRE_PR_TICKS_PER_S:
            report["speedup_vs_pre_pr"][name] = (
                res.ticks_per_s / PRE_PR_TICKS_PER_S[name]
            )
    return report


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        report = json.load(fh)
    if report.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version "
            f"{report.get('schema_version')!r} != {BENCH_SCHEMA_VERSION}"
        )
    return report


def check_regression(
    report: Dict,
    baseline: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Compare normalized scores against a baseline report.

    Returns one message per regressed scenario (empty = gate passes).
    A scenario regresses when its normalized score (ticks/sec over the
    same-process calibration throughput) drops more than ``tolerance``
    below the baseline's.
    """
    problems: List[str] = []
    for name, base_entry in baseline.get("scenarios", {}).items():
        entry = report.get("scenarios", {}).get(name)
        if entry is None:
            problems.append(f"{name}: missing from current report")
            continue
        base_score = base_entry["normalized_score"]
        score = entry["normalized_score"]
        floor = base_score * (1.0 - tolerance)
        if score < floor:
            problems.append(
                f"{name}: normalized score {score:.6f} is "
                f"{100 * (1 - score / base_score):.1f}% below baseline "
                f"{base_score:.6f} (tolerance {100 * tolerance:.0f}%)"
            )
    if not report.get("parallel_digests_match", False):
        problems.append(
            "fleet_parallel: metric digests diverged from fleet_serial"
        )
    # Older baselines predate the faulted scenario; only reports that
    # carry the field are held to it.
    if (
        "faulted_digests_match" in report
        and not report["faulted_digests_match"]
    ):
        problems.append(
            "fleet_faulted: recovery changed metric digests vs "
            "fleet_serial"
        )
    return problems


def format_report(report: Dict) -> str:
    rows = []
    for name, entry in report["scenarios"].items():
        speedup = report["speedup_vs_pre_pr"].get(name)
        rows.append((
            name,
            f"{entry['wall_s']:.3f}",
            f"{entry['ticks_per_s']:.1f}",
            f"{entry['pages_reclaimed_per_s']:.1f}",
            f"{entry['peak_rss_bytes'] / MB:.0f}",
            f"{speedup:.2f}x" if speedup is not None else "-",
        ))
    table = format_table(
        ["scenario", "wall (s)", "ticks/s", "reclaim pages/s",
         "peak RSS (MB)", "vs pre-PR"],
        rows,
        title=f"{report['bench_id']} (seed {report['seed']}"
              f"{', quick' if report['quick'] else ''})",
    )
    digest_line = (
        "parallel fleet digests match serial: "
        f"{report['parallel_digests_match']}"
    )
    return f"{table}\n{digest_line}"
