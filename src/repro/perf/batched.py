"""The batched-API registry behind the hot-path lint (TMO017/TMO021).

The columnar-kernel roadmap replaces scalar per-page calls with batched
equivalents; this module is the single declared mapping between the two
shapes. ``repro.lint.hotpath`` parses these literal tables statically
(phase A of ``tmo-lint --flow``), so editing them re-triggers the
scalar-loop checks on every cached file:

* ``BATCHED_EQUIVALENTS`` — scalar API -> its batched equivalent.
  Calling the scalar form per element inside a loop in the hot region
  is TMO017 (the batched form exists; use it).
* ``SUPERSEDED_SCALAR_APIS`` — scalar APIs the batched rewrite has
  fully replaced on hot paths. Any hot-region call is TMO021, even
  outside a loop. An API can be batched-equivalent without being
  superseded: ``MemoryManager.touch`` stays callable because
  ``touch_batch`` itself falls back to it for non-resident pages.

Keys are fully qualified (``module.Class.method`` / ``module.func``)
and must be literal strings: the lint reads the AST, not the import.
"""

from typing import Dict, Tuple

#: scalar API -> batched equivalent (loop-over-scalar is TMO017).
BATCHED_EQUIVALENTS: Dict[str, str] = {
    "repro.kernel.mm.MemoryManager.touch":
        "repro.kernel.mm.MemoryManager.touch_batch",
    "repro.kernel.idle.AgeHistogram.add":
        "repro.kernel.idle.IdlePageTracker.scan",
}

#: scalar APIs with no remaining hot-path caller (any call is TMO021).
#: ``AgeHistogram.add`` survives for tests and ad-hoc analysis only;
#: the idle scanner builds histograms vectorized via searchsorted.
SUPERSEDED_SCALAR_APIS: Tuple[str, ...] = (
    "repro.kernel.idle.AgeHistogram.add",
)
