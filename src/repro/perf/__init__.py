"""Simulator performance layer: benchmark harness and regression gate.

``python -m repro bench`` runs the canonical scenario matrix (single
host, fleet serial+parallel, chaos-enabled, tick microbenchmark), writes
a machine-readable ``BENCH_5.json`` and optionally gates against a
committed baseline (see :mod:`repro.perf.harness` and
docs/PERFORMANCE.md).
"""

from repro.perf.harness import (
    BENCH_ID,
    BENCH_SCHEMA_VERSION,
    BENCH_SEED,
    DEFAULT_TOLERANCE,
    PRE_PR_TICKS_PER_S,
    check_regression,
    format_report,
    load_report,
    run_bench,
    write_report,
)

__all__ = [
    "BENCH_ID",
    "BENCH_SCHEMA_VERSION",
    "BENCH_SEED",
    "DEFAULT_TOLERANCE",
    "PRE_PR_TICKS_PER_S",
    "check_regression",
    "format_report",
    "load_report",
    "run_bench",
    "write_report",
]
