"""Simulator performance layer: benchmark harness and regression gate.

``python -m repro bench`` runs the canonical scenario matrix (single
host, fleet serial+parallel, chaos-enabled, tick microbenchmark), writes
a machine-readable ``BENCH_5.json`` and optionally gates against a
committed baseline (see :mod:`repro.perf.harness` and
docs/PERFORMANCE.md). ``python -m repro bench --profile`` instead
profiles the microbench under cProfile and writes the tick-share
document the hot-path lint cross-checks (:mod:`repro.perf.profile`,
docs/LINTING.md "Hot paths"). :mod:`repro.perf.batched` is the
batched-API registry that same lint reads statically.
"""

from repro.perf.batched import BATCHED_EQUIVALENTS, SUPERSEDED_SCALAR_APIS
from repro.perf.harness import (
    BENCH_ID,
    BENCH_SCHEMA_VERSION,
    BENCH_SEED,
    DEFAULT_TOLERANCE,
    PRE_PR_TICKS_PER_S,
    check_regression,
    format_report,
    load_report,
    run_bench,
    write_report,
)
from repro.perf.profile import (
    PROFILE_DEFAULT_OUT,
    PROFILE_SCHEMA_VERSION,
    run_profile,
    write_profile,
)

__all__ = [
    "BATCHED_EQUIVALENTS",
    "SUPERSEDED_SCALAR_APIS",
    "PROFILE_DEFAULT_OUT",
    "PROFILE_SCHEMA_VERSION",
    "run_profile",
    "write_profile",
    "BENCH_ID",
    "BENCH_SCHEMA_VERSION",
    "BENCH_SEED",
    "DEFAULT_TOLERANCE",
    "PRE_PR_TICKS_PER_S",
    "check_regression",
    "format_report",
    "load_report",
    "run_bench",
    "write_report",
]
