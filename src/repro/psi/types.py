"""Task states and resources tracked by PSI."""

from __future__ import annotations

import enum


class Resource(enum.Enum):
    """Resources for which PSI reports pressure."""

    CPU = "cpu"
    MEMORY = "memory"
    IO = "io"


class TaskFlags(enum.IntFlag):
    """Scheduling-relevant state bits of a simulated task.

    Mirrors the kernel's PSI task accounting:

    * ``RUNNING``  — the task currently occupies a CPU.
    * ``RUNNABLE`` — the task wants a CPU but is waiting for one
      (contributes to CPU pressure).
    * ``MEMSTALL`` — the task is delayed by a memory-shortage event:
      direct reclaim, a refault of recently evicted file cache, or a
      swap-in (contributes to memory pressure).
    * ``IOSTALL``  — the task is blocked on block-IO completion
      (contributes to IO pressure).

    A task with no flags set is idle (sleeping on something unrelated to
    resource shortage) and is invisible to PSI.
    """

    NONE = 0
    RUNNING = enum.auto()
    RUNNABLE = enum.auto()
    MEMSTALL = enum.auto()
    IOSTALL = enum.auto()

    @property
    def nonidle(self) -> bool:
        """True when the task counts toward the domain's compute potential."""
        return self != TaskFlags.NONE

    def stalled_on(self, resource: Resource) -> bool:
        """True when this state stalls on ``resource``."""
        if resource is Resource.MEMORY:
            return bool(self & TaskFlags.MEMSTALL)
        if resource is Resource.IO:
            return bool(self & TaskFlags.IOSTALL)
        # CPU: runnable but not actually running.
        return bool(self & TaskFlags.RUNNABLE) and not bool(
            self & TaskFlags.RUNNING
        )

    def productive_for(self, resource: Resource) -> bool:
        """True when this state represents productive work w.r.t. ``resource``.

        A task is productive for memory/IO when it is running (or at least
        runnable, i.e. it *could* run) and not stalled on the resource; for
        CPU, only a task actually occupying a CPU is productive.
        """
        if resource is Resource.CPU:
            return bool(self & TaskFlags.RUNNING)
        on_cpu_or_waiting = bool(self & (TaskFlags.RUNNING | TaskFlags.RUNNABLE))
        return on_cpu_or_waiting and not self.stalled_on(resource)


#: Resources in a fixed order, used to index the transition table and
#: the per-group counter lists.
RESOURCE_ORDER: "tuple[Resource, ...]" = (
    Resource.CPU, Resource.MEMORY, Resource.IO,
)

#: Ordinal of each resource in :data:`RESOURCE_ORDER`.
RESOURCE_INDEX = {resource: i for i, resource in enumerate(RESOURCE_ORDER)}

#: Number of distinct :class:`TaskFlags` values (4 bits).
N_FLAG_STATES = 16


def _transition_delta(old: TaskFlags, new: TaskFlags):
    """Counter deltas for one ``old -> new`` flag transition.

    Returns ``(stalled_deltas, productive_deltas, nonidle_delta)`` with
    the per-resource deltas ordered by :data:`RESOURCE_ORDER`. Derived
    from :meth:`TaskFlags.stalled_on` / :meth:`TaskFlags.productive_for`
    so the table below can never drift from the predicate definitions.
    """
    stalled = tuple(
        int(new.stalled_on(r)) - int(old.stalled_on(r))
        for r in RESOURCE_ORDER
    )
    productive = tuple(
        int(new.productive_for(r)) - int(old.productive_for(r))
        for r in RESOURCE_ORDER
    )
    return stalled, productive, int(new.nonidle) - int(old.nonidle)


#: ``TRANSITION_DELTAS[old_value * N_FLAG_STATES + new_value]`` gives the
#: counter deltas of that transition without any per-event enum
#: arithmetic — the PSI hot path (one lookup per task transition per
#: domain) indexes this instead of re-evaluating the predicates.
TRANSITION_DELTAS = tuple(
    _transition_delta(TaskFlags(old_value), TaskFlags(new_value))
    for old_value in range(N_FLAG_STATES)
    for new_value in range(N_FLAG_STATES)
)


def _sparse(deltas: "tuple[int, ...]") -> "tuple[tuple[int, int], ...]":
    """Non-zero deltas as ``(resource ordinal, delta)`` pairs."""
    return tuple((i, d) for i, d in enumerate(deltas) if d)


#: Same table, sparsified: most transitions move one or two counters,
#: so the hot path iterates only the non-zero ``(ordinal, delta)``
#: pairs instead of all three resources twice.
TRANSITION_SPARSE = tuple(
    (_sparse(stalled), _sparse(productive), nonidle)
    for stalled, productive, nonidle in TRANSITION_DELTAS
)
