"""Task states and resources tracked by PSI."""

from __future__ import annotations

import enum


class Resource(enum.Enum):
    """Resources for which PSI reports pressure."""

    CPU = "cpu"
    MEMORY = "memory"
    IO = "io"


class TaskFlags(enum.IntFlag):
    """Scheduling-relevant state bits of a simulated task.

    Mirrors the kernel's PSI task accounting:

    * ``RUNNING``  — the task currently occupies a CPU.
    * ``RUNNABLE`` — the task wants a CPU but is waiting for one
      (contributes to CPU pressure).
    * ``MEMSTALL`` — the task is delayed by a memory-shortage event:
      direct reclaim, a refault of recently evicted file cache, or a
      swap-in (contributes to memory pressure).
    * ``IOSTALL``  — the task is blocked on block-IO completion
      (contributes to IO pressure).

    A task with no flags set is idle (sleeping on something unrelated to
    resource shortage) and is invisible to PSI.
    """

    NONE = 0
    RUNNING = enum.auto()
    RUNNABLE = enum.auto()
    MEMSTALL = enum.auto()
    IOSTALL = enum.auto()

    @property
    def nonidle(self) -> bool:
        """True when the task counts toward the domain's compute potential."""
        return self != TaskFlags.NONE

    def stalled_on(self, resource: Resource) -> bool:
        """True when this state stalls on ``resource``."""
        if resource is Resource.MEMORY:
            return bool(self & TaskFlags.MEMSTALL)
        if resource is Resource.IO:
            return bool(self & TaskFlags.IOSTALL)
        # CPU: runnable but not actually running.
        return bool(self & TaskFlags.RUNNABLE) and not bool(
            self & TaskFlags.RUNNING
        )

    def productive_for(self, resource: Resource) -> bool:
        """True when this state represents productive work w.r.t. ``resource``.

        A task is productive for memory/IO when it is running (or at least
        runnable, i.e. it *could* run) and not stalled on the resource; for
        CPU, only a task actually occupying a CPU is productive.
        """
        if resource is Resource.CPU:
            return bool(self & TaskFlags.RUNNING)
        on_cpu_or_waiting = bool(self & (TaskFlags.RUNNING | TaskFlags.RUNNABLE))
        return on_cpu_or_waiting and not self.stalled_on(resource)
