"""PSI triggers: threshold-crossing notification.

The upstream PSI interface lets userspace register a trigger by writing
``"some 150000 1000000"`` to a pressure file — meaning *notify me when
total stall time exceeds 150 ms within any 1 s window*. Monitors
(userspace OOM killers, load shedders) then block in ``poll()`` instead
of busy-reading averages. This module reproduces that mechanism against
:class:`~repro.psi.group.PsiGroup`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.psi.group import FULL, SOME, PsiGroup
from repro.psi.types import Resource

#: Kernel bounds on trigger windows (500 ms .. 10 s).
MIN_WINDOW_S = 0.5
MAX_WINDOW_S = 10.0


@dataclass(frozen=True)
class TriggerSpec:
    """One registered trigger.

    Attributes:
        resource: which pressure file the trigger is on.
        kind: ``"some"`` or ``"full"``.
        stall_threshold_s: stall seconds within the window that fire it.
        window_s: the observation window.
    """

    resource: Resource
    kind: str
    stall_threshold_s: float
    window_s: float

    def __post_init__(self) -> None:
        if self.kind not in (SOME, FULL):
            raise ValueError(
                f"trigger kind must be 'some' or 'full', got {self.kind!r}"
            )
        if not MIN_WINDOW_S <= self.window_s <= MAX_WINDOW_S:
            raise ValueError(
                f"trigger window must be in [{MIN_WINDOW_S}, "
                f"{MAX_WINDOW_S}] s, got {self.window_s}"
            )
        if not 0.0 < self.stall_threshold_s <= self.window_s:
            raise ValueError(
                "stall threshold must be positive and fit the window"
            )

    @classmethod
    def parse(cls, resource: Resource, line: str) -> "TriggerSpec":
        """Parse the kernel's trigger syntax: ``<some|full> <us> <us>``.

        >>> TriggerSpec.parse(Resource.MEMORY, "some 150000 1000000")
        TriggerSpec(resource=<Resource.MEMORY: 'memory'>, kind='some', \
stall_threshold_s=0.15, window_s=1.0)
        """
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(
                f"trigger line must be '<some|full> <stall_us> "
                f"<window_us>', got {line!r}"
            )
        kind, stall_us, window_us = parts
        return cls(
            resource=resource,
            kind=kind,
            stall_threshold_s=float(stall_us) / 1e6,
            window_s=float(window_us) / 1e6,
        )


class PsiTrigger:
    """A polling monitor over one group's stall integral.

    Call :meth:`update` periodically (at least once per window); it
    returns True on the updates where the trigger fires. Like the
    kernel, a fired trigger re-arms only after a full window elapses
    without the threshold being crossed is *not* required — but
    successive firings are rate-limited to one per window.
    """

    def __init__(self, group: PsiGroup, spec: TriggerSpec, now: float = 0.0):
        self.group = group
        self.spec = spec
        self._window_start = now
        self._start_total = group.total(spec.resource, spec.kind)
        self._last_fire: Optional[float] = None
        self.fire_count = 0

    def update(self, now: float) -> bool:
        """Advance the trigger; True when the threshold fired."""
        self.group.tick(now)
        total = self.group.total(self.spec.resource, self.spec.kind)
        growth = total - self._start_total
        fired = False
        if growth >= self.spec.stall_threshold_s:
            rate_limited = (
                self._last_fire is not None
                and now - self._last_fire < self.spec.window_s
            )
            if not rate_limited:
                fired = True
                self.fire_count += 1
                self._last_fire = now
            self._window_start = now
            self._start_total = total
        elif now - self._window_start >= self.spec.window_s:
            # Window elapsed quietly: slide it forward.
            self._window_start = now
            self._start_total = total
        return fired


class TriggerSet:
    """All triggers registered against one host's PSI domains."""

    def __init__(self) -> None:
        self._triggers: List[PsiTrigger] = []

    def register(
        self, group: PsiGroup, spec: TriggerSpec, now: float = 0.0
    ) -> PsiTrigger:
        trigger = PsiTrigger(group, spec, now)
        self._triggers.append(trigger)
        return trigger

    def update(self, now: float) -> List[PsiTrigger]:
        """Update all triggers; return the ones that fired."""
        return [t for t in self._triggers if t.update(now)]

    def __len__(self) -> int:
        return len(self._triggers)
