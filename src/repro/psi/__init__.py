"""Pressure Stall Information (PSI).

This package reimplements the PSI mechanism the paper upstreamed into the
Linux kernel (Section 3.2): per-task stall-state tracking, aggregated per
container and machine-wide into ``some`` and ``full`` time integrals per
resource (CPU, memory, IO), with 10s/1m/5m exponential running averages.

``some`` is the share of wall time during which at least one non-idle task
in the domain was stalled on the resource; ``full`` is the share during
which *all* non-idle tasks were stalled simultaneously (no productive
execution at all). ``some >= full`` always holds.
"""

from repro.psi.avgs import PSI_AVG_PERIOD, PSI_WINDOWS, RunningAverages
from repro.psi.group import PressureSample, PsiGroup, format_pressure_file
from repro.psi.tracker import PsiSystem, PsiTask
from repro.psi.trigger import PsiTrigger, TriggerSet, TriggerSpec
from repro.psi.types import Resource, TaskFlags

__all__ = [
    "PSI_AVG_PERIOD",
    "PSI_WINDOWS",
    "PressureSample",
    "PsiGroup",
    "PsiSystem",
    "PsiTask",
    "PsiTrigger",
    "TriggerSet",
    "TriggerSpec",
    "Resource",
    "RunningAverages",
    "TaskFlags",
    "format_pressure_file",
]
