"""Exponential running averages over the kernel's PSI windows.

The kernel folds raw stall time into running averages every
``PSI_AVG_PERIOD`` (2 s), over 10 s / 60 s / 300 s windows. Those three
averages are what ``/proc/pressure/*`` and the per-cgroup ``*.pressure``
files report as ``avg10``, ``avg60`` and ``avg300``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Seconds between average refreshes, matching the kernel's PSI_FREQ.
PSI_AVG_PERIOD = 2.0

#: The reporting windows, in seconds.
PSI_WINDOWS: Tuple[float, float, float] = (10.0, 60.0, 300.0)


@dataclass
class RunningAverages:
    """avg10/avg60/avg300 for one (resource, some|full) stall integral."""

    #: Exponential moving averages keyed by window length, as fractions
    #: in [0, 1] (multiply by 100 for the kernel's percentage form).
    avgs: Dict[float, float] = field(
        default_factory=lambda: {w: 0.0 for w in PSI_WINDOWS}
    )
    #: Total stall seconds folded in so far.
    last_total: float = 0.0

    def update(self, total: float, period_s: float = PSI_AVG_PERIOD) -> None:
        """Fold the stall-total delta since the last update into the averages.

        Args:
            total: cumulative stall seconds for this state.
            period_s: seconds elapsed since the previous update.
        """
        if period_s <= 0:
            raise ValueError(f"update period must be positive, got {period_s}")
        delta = max(0.0, total - self.last_total)
        self.last_total = total
        sample = min(1.0, delta / period_s)
        for window in self.avgs:
            alpha = 1.0 - math.exp(-period_s / window)
            self.avgs[window] += (sample - self.avgs[window]) * alpha

    @property
    def avg10(self) -> float:
        return self.avgs[10.0]

    @property
    def avg60(self) -> float:
        return self.avgs[60.0]

    @property
    def avg300(self) -> float:
        return self.avgs[300.0]
