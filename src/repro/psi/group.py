"""Per-domain PSI aggregation.

A :class:`PsiGroup` corresponds to one pressure domain: a cgroup, or the
whole machine. It keeps task-state counters, integrates ``some`` and
``full`` stall time on every state transition, and maintains the running
averages exposed through the pressure-file interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.psi.avgs import PSI_AVG_PERIOD, RunningAverages
from repro.psi.types import Resource, TaskFlags

#: The two pressure indicators per resource.
SOME = "some"
FULL = "full"

_STATES: Tuple[Tuple[Resource, str], ...] = tuple(
    (resource, kind) for resource in Resource for kind in (SOME, FULL)
)


@dataclass(frozen=True)
class PressureSample:
    """A point-in-time read of one resource's pressure in a domain.

    All values are fractions in [0, 1]; multiply by 100 for the kernel's
    percentage presentation.
    """

    resource: Resource
    some_avg10: float
    some_avg60: float
    some_avg300: float
    some_total: float
    full_avg10: float
    full_avg60: float
    full_avg300: float
    full_total: float


class PsiGroup:
    """Stall-time accounting for one pressure domain.

    The group is fed task state transitions by :class:`repro.psi.tracker.
    PsiSystem`; it never inspects tasks itself. Between transitions the
    domain's pressure state is constant, so integration happens lazily at
    transition (and read) time.
    """

    def __init__(
        self,
        name: str,
        ncpu: int,
        now: float = 0.0,
        parent: Optional["PsiGroup"] = None,
    ) -> None:
        if ncpu < 1:
            raise ValueError(f"a PSI domain needs at least one CPU, got {ncpu}")
        self.name = name
        self.ncpu = ncpu
        self.parent = parent
        # Task counters, updated by the tracker.
        self.nr_stalled: Dict[Resource, int] = {r: 0 for r in Resource}
        self.nr_productive: Dict[Resource, int] = {r: 0 for r in Resource}
        self.nr_nonidle = 0
        # Stall-time integrals in seconds.
        self.totals: Dict[Tuple[Resource, str], float] = {
            state: 0.0 for state in _STATES
        }
        self._avgs: Dict[Tuple[Resource, str], RunningAverages] = {
            state: RunningAverages() for state in _STATES
        }
        self._last_change = now
        self._next_avg_update = now + PSI_AVG_PERIOD

    # ------------------------------------------------------------------
    # state evaluation

    def _state_active(self, resource: Resource, kind: str) -> bool:
        """Whether the (resource, kind) stall state is active right now."""
        stalled = self.nr_stalled[resource] > 0
        if kind == SOME:
            return stalled
        return stalled and self.nr_productive[resource] == 0

    def _integrate(self, now: float) -> None:
        """Accrue stall time for all active states up to ``now``."""
        elapsed = now - self._last_change
        if elapsed < 0:
            raise ValueError(
                f"PSI group {self.name!r}: time went backwards "
                f"({self._last_change} -> {now})"
            )
        if elapsed > 0:
            for state in _STATES:
                if self._state_active(*state):
                    self.totals[state] += elapsed
            self._last_change = now

    # ------------------------------------------------------------------
    # transition feed (called by the tracker)

    def change_task_state(
        self, old: TaskFlags, new: TaskFlags, now: float
    ) -> None:
        """Apply one task's transition from ``old`` to ``new`` flags."""
        self.tick(now)
        for resource in Resource:
            if old.stalled_on(resource):
                self.nr_stalled[resource] -= 1
            if new.stalled_on(resource):
                self.nr_stalled[resource] += 1
            if old.productive_for(resource):
                self.nr_productive[resource] -= 1
            if new.productive_for(resource):
                self.nr_productive[resource] += 1
        self.nr_nonidle += int(new.nonidle) - int(old.nonidle)
        if self.nr_nonidle < 0 or any(
            n < 0 for n in self.nr_stalled.values()
        ):
            raise RuntimeError(
                f"PSI group {self.name!r}: task counters went negative; "
                "a transition was fed with mismatched old flags"
            )

    # ------------------------------------------------------------------
    # reads

    def tick(self, now: float) -> None:
        """Advance time and refresh running averages if a period elapsed.

        Integration is performed period-by-period so a large time jump
        attributes stall time to every averaging window it spans, not
        just the first.
        """
        while now >= self._next_avg_update:
            self._integrate(self._next_avg_update)
            for state in _STATES:
                self._avgs[state].update(
                    self.totals[state], PSI_AVG_PERIOD
                )
            self._next_avg_update += PSI_AVG_PERIOD
        self._integrate(now)

    def total(self, resource: Resource, kind: str = SOME) -> float:
        """Cumulative stall seconds for ``(resource, kind)``."""
        return self.totals[(resource, kind)]

    def sample(self, resource: Resource, now: float) -> PressureSample:
        """Read the pressure file for ``resource`` at time ``now``."""
        self.tick(now)
        some = self._avgs[(resource, SOME)]
        full = self._avgs[(resource, FULL)]
        return PressureSample(
            resource=resource,
            some_avg10=some.avg10,
            some_avg60=some.avg60,
            some_avg300=some.avg300,
            some_total=self.totals[(resource, SOME)],
            full_avg10=full.avg10,
            full_avg60=full.avg60,
            full_avg300=full.avg300,
            full_total=self.totals[(resource, FULL)],
        )

    def productivity_loss(self, resource: Resource) -> float:
        """Instantaneous share of compute potential lost to stalls.

        The paper defines compute potential as the number of non-idle
        tasks capped at the CPU count; this returns the stalled share of
        that potential at the current instant.
        """
        potential = min(self.nr_nonidle, self.ncpu)
        if potential == 0:
            return 0.0
        stalled = min(self.nr_stalled[resource], potential)
        return stalled / potential

    def __repr__(self) -> str:
        return (
            f"PsiGroup(name={self.name!r}, nonidle={self.nr_nonidle}, "
            f"stalled={{{', '.join(f'{r.value}:{n}' for r, n in self.nr_stalled.items())}}})"
        )


def format_pressure_file(group: PsiGroup, resource: Resource, now: float) -> str:
    """Render a domain's pressure in the kernel's ``/proc/pressure`` format.

    >>> group = PsiGroup("system", ncpu=4)
    >>> print(format_pressure_file(group, Resource.MEMORY, now=0.0))
    some avg10=0.00 avg60=0.00 avg300=0.00 total=0
    full avg10=0.00 avg60=0.00 avg300=0.00 total=0
    """
    sample = group.sample(resource, now)
    some_line = (
        f"some avg10={sample.some_avg10 * 100:.2f} "
        f"avg60={sample.some_avg60 * 100:.2f} "
        f"avg300={sample.some_avg300 * 100:.2f} "
        f"total={int(sample.some_total * 1e6)}"
    )
    full_line = (
        f"full avg10={sample.full_avg10 * 100:.2f} "
        f"avg60={sample.full_avg60 * 100:.2f} "
        f"avg300={sample.full_avg300 * 100:.2f} "
        f"total={int(sample.full_total * 1e6)}"
    )
    return f"{some_line}\n{full_line}"
