"""Per-domain PSI aggregation.

A :class:`PsiGroup` corresponds to one pressure domain: a cgroup, or the
whole machine. It keeps task-state counters, integrates ``some`` and
``full`` stall time on every state transition, and maintains the running
averages exposed through the pressure-file interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.psi.avgs import PSI_AVG_PERIOD, RunningAverages
from repro.psi.types import (
    N_FLAG_STATES,
    RESOURCE_INDEX,
    RESOURCE_ORDER,
    TRANSITION_SPARSE,
    Resource,
    TaskFlags,
)

#: The two pressure indicators per resource.
SOME = "some"
FULL = "full"

_STATES: Tuple[Tuple[Resource, str], ...] = tuple(
    (resource, kind) for resource in Resource for kind in (SOME, FULL)
)


@dataclass(frozen=True)
class PressureSample:
    """A point-in-time read of one resource's pressure in a domain.

    All values are fractions in [0, 1]; multiply by 100 for the kernel's
    percentage presentation.
    """

    resource: Resource
    some_avg10: float
    some_avg60: float
    some_avg300: float
    some_total: float
    full_avg10: float
    full_avg60: float
    full_avg300: float
    full_total: float


class PsiGroup:
    """Stall-time accounting for one pressure domain.

    The group is fed task state transitions by :class:`repro.psi.tracker.
    PsiSystem`; it never inspects tasks itself. Between transitions the
    domain's pressure state is constant, so integration happens lazily at
    transition (and read) time.
    """

    def __init__(
        self,
        name: str,
        ncpu: int,
        now: float = 0.0,
        parent: Optional["PsiGroup"] = None,
    ) -> None:
        if ncpu < 1:
            raise ValueError(f"a PSI domain needs at least one CPU, got {ncpu}")
        self.name = name
        self.ncpu = ncpu
        self.parent = parent
        # Task counters, updated by the tracker; indexed by the
        # resource's ordinal in RESOURCE_ORDER (plain list indexing is
        # markedly cheaper than enum-keyed dicts on this path).
        self.nr_stalled: List[int] = [0] * len(RESOURCE_ORDER)
        self.nr_productive: List[int] = [0] * len(RESOURCE_ORDER)
        self.nr_nonidle = 0
        # Stall-time integrals in seconds.
        self.totals: Dict[Tuple[Resource, str], float] = {
            state: 0.0 for state in _STATES
        }
        self._avgs: Dict[Tuple[Resource, str], RunningAverages] = {
            state: RunningAverages() for state in _STATES
        }
        self._last_change = now
        self._next_avg_update = now + PSI_AVG_PERIOD

    # ------------------------------------------------------------------
    # state evaluation

    def _state_active(self, resource: Resource, kind: str) -> bool:
        """Whether the (resource, kind) stall state is active right now."""
        index = RESOURCE_INDEX[resource]
        stalled = self.nr_stalled[index] > 0
        if kind == SOME:
            return stalled
        return stalled and self.nr_productive[index] == 0

    def _integrate(self, now: float) -> None:
        """Accrue stall time for all active states up to ``now``.

        Inlines :meth:`_state_active` (``some`` = anyone stalled,
        ``full`` = stalled with nobody productive) — this runs once per
        task transition per domain.
        """
        elapsed = now - self._last_change
        if elapsed < 0:
            raise ValueError(
                f"PSI group {self.name!r}: time went backwards "
                f"({self._last_change} -> {now})"
            )
        if elapsed > 0:
            totals = self.totals
            nr_stalled = self.nr_stalled
            nr_productive = self.nr_productive
            for index, resource in enumerate(RESOURCE_ORDER):
                if nr_stalled[index] > 0:
                    totals[(resource, SOME)] += elapsed
                    if nr_productive[index] == 0:
                        totals[(resource, FULL)] += elapsed
            self._last_change = now

    # ------------------------------------------------------------------
    # transition feed (called by the tracker)

    def change_task_state(
        self, old: TaskFlags, new: TaskFlags, now: float
    ) -> None:
        """Apply one task's transition from ``old`` to ``new`` flags.

        Hot path: the per-resource counter deltas come from the
        precomputed :data:`~repro.psi.types.TRANSITION_DELTAS` table
        (one lookup) rather than re-evaluating the flag predicates per
        resource per event.
        """
        self.tick(now)
        stalled_pairs, productive_pairs, nonidle_d = TRANSITION_SPARSE[
            old._value_ * N_FLAG_STATES + new._value_
        ]
        bad = False
        if stalled_pairs:
            nr_stalled = self.nr_stalled
            for index, delta in stalled_pairs:
                nr_stalled[index] += delta
                if nr_stalled[index] < 0:
                    bad = True
        if productive_pairs:
            nr_productive = self.nr_productive
            for index, delta in productive_pairs:
                nr_productive[index] += delta
        if nonidle_d:
            self.nr_nonidle += nonidle_d
            if self.nr_nonidle < 0:
                bad = True
        if bad:
            raise RuntimeError(
                f"PSI group {self.name!r}: task counters went negative; "
                "a transition was fed with mismatched old flags"
            )

    # ------------------------------------------------------------------
    # reads

    def tick(self, now: float) -> None:
        """Advance time and refresh running averages if a period elapsed.

        Integration is performed period-by-period so a large time jump
        attributes stall time to every averaging window it spans, not
        just the first.
        """
        while now >= self._next_avg_update:
            self._integrate(self._next_avg_update)
            for state in _STATES:
                self._avgs[state].update(
                    self.totals[state], PSI_AVG_PERIOD
                )
            self._next_avg_update += PSI_AVG_PERIOD
        self._integrate(now)

    def total(self, resource: Resource, kind: str = SOME) -> float:
        """Cumulative stall seconds for ``(resource, kind)``."""
        return self.totals[(resource, kind)]

    def sample(self, resource: Resource, now: float) -> PressureSample:
        """Read the pressure file for ``resource`` at time ``now``."""
        self.tick(now)
        some = self._avgs[(resource, SOME)]
        full = self._avgs[(resource, FULL)]
        return PressureSample(
            resource=resource,
            some_avg10=some.avg10,
            some_avg60=some.avg60,
            some_avg300=some.avg300,
            some_total=self.totals[(resource, SOME)],
            full_avg10=full.avg10,
            full_avg60=full.avg60,
            full_avg300=full.avg300,
            full_total=self.totals[(resource, FULL)],
        )

    def quick_read(
        self, resource: Resource, now: float
    ) -> Tuple[float, float]:
        """``(some avg10, some total)`` without building a sample object.

        The per-tick metrics hot path needs just these two numbers per
        resource; :meth:`sample` stays the full read for everyone else.
        """
        self.tick(now)
        return (
            self._avgs[(resource, SOME)].avg10,
            self.totals[(resource, SOME)],
        )

    def productivity_loss(self, resource: Resource) -> float:
        """Instantaneous share of compute potential lost to stalls.

        The paper defines compute potential as the number of non-idle
        tasks capped at the CPU count; this returns the stalled share of
        that potential at the current instant.
        """
        potential = min(self.nr_nonidle, self.ncpu)
        if potential == 0:
            return 0.0
        stalled = min(self.nr_stalled[RESOURCE_INDEX[resource]], potential)
        return stalled / potential

    def __repr__(self) -> str:
        stalled = ", ".join(
            f"{r.value}:{n}"
            for r, n in zip(RESOURCE_ORDER, self.nr_stalled)
        )
        return (
            f"PsiGroup(name={self.name!r}, nonidle={self.nr_nonidle}, "
            f"stalled={{{stalled}}})"
        )


def format_pressure_file(group: PsiGroup, resource: Resource, now: float) -> str:
    """Render a domain's pressure in the kernel's ``/proc/pressure`` format.

    >>> group = PsiGroup("system", ncpu=4)
    >>> print(format_pressure_file(group, Resource.MEMORY, now=0.0))
    some avg10=0.00 avg60=0.00 avg300=0.00 total=0
    full avg10=0.00 avg60=0.00 avg300=0.00 total=0
    """
    sample = group.sample(resource, now)
    some_line = (
        f"some avg10={sample.some_avg10 * 100:.2f} "
        f"avg60={sample.some_avg60 * 100:.2f} "
        f"avg300={sample.some_avg300 * 100:.2f} "
        f"total={int(sample.some_total * 1e6)}"
    )
    full_line = (
        f"full avg10={sample.full_avg10 * 100:.2f} "
        f"avg60={sample.full_avg60 * 100:.2f} "
        f"avg300={sample.full_avg300 * 100:.2f} "
        f"total={int(sample.full_total * 1e6)}"
    )
    return f"{some_line}\n{full_line}"
