"""Task registry that routes state transitions into PSI domains.

:class:`PsiSystem` owns the machine-wide group plus one group per cgroup.
Tasks are registered against a cgroup group; every flag change is applied
to that group and all of its ancestors, and to the machine-wide group —
exactly how cgroup2 pressure files aggregate in the kernel.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.psi.group import PsiGroup
from repro.psi.types import Resource, TaskFlags


class PsiTask:
    """A handle for one simulated task's PSI state."""

    __slots__ = ("name", "flags", "_groups")

    def __init__(self, name: str, groups: List[PsiGroup]) -> None:
        self.name = name
        self.flags = TaskFlags.NONE
        self._groups = groups

    def set_flags(self, flags: TaskFlags, now: float) -> None:
        """Transition this task to ``flags`` at time ``now``."""
        if flags == self.flags:
            for group in self._groups:
                group.tick(now)
            return
        for group in self._groups:
            group.change_task_state(self.flags, flags, now)
        self.flags = flags

    def __repr__(self) -> str:
        return f"PsiTask(name={self.name!r}, flags={self.flags!r})"


class PsiSystem:
    """All PSI domains of one host."""

    def __init__(self, ncpu: int, now: float = 0.0) -> None:
        self.ncpu = ncpu
        self.system = PsiGroup("system", ncpu=ncpu, now=now)
        self._groups: Dict[str, PsiGroup] = {"system": self.system}
        self._tasks: Dict[str, PsiTask] = {}
        #: When not None, the virtual time at which the *read side* of
        #: the telemetry froze (see :meth:`freeze_telemetry`).
        self._frozen_at_s: Optional[float] = None
        self._frozen_totals: Dict[tuple, float] = {}

    def add_group(
        self, name: str, parent: Optional[str] = None, now: float = 0.0
    ) -> PsiGroup:
        """Create the pressure domain for a cgroup.

        Args:
            name: unique domain name (the cgroup path).
            parent: name of the parent domain; the machine-wide domain is
                always an implicit ancestor and need not be named.
        """
        if name in self._groups:
            raise ValueError(f"PSI group {name!r} already exists")
        parent_group = None
        if parent is not None:
            parent_group = self._groups.get(parent)
            if parent_group is None:
                raise KeyError(f"unknown parent PSI group {parent!r}")
        group = PsiGroup(name, ncpu=self.ncpu, now=now, parent=parent_group)
        self._groups[name] = group
        return group

    def group(self, name: str) -> PsiGroup:
        return self._groups[name]

    def groups(self) -> List[PsiGroup]:
        """All pressure domains, the system-wide one included."""
        return list(self._groups.values())

    def _lineage(self, group: PsiGroup) -> Iterator[PsiGroup]:
        node: Optional[PsiGroup] = group
        while node is not None:
            yield node
            node = node.parent
        if group is not self.system:
            yield self.system

    def add_task(self, name: str, group_name: str) -> PsiTask:
        """Register a task whose transitions hit ``group_name`` and ancestors."""
        if name in self._tasks:
            raise ValueError(f"PSI task {name!r} already exists")
        group = self._groups[group_name]
        task = PsiTask(name, list(self._lineage(group)))
        self._tasks[name] = task
        return task

    def remove_task(self, name: str, now: float) -> None:
        """Deregister a task, first settling it to idle."""
        task = self._tasks.pop(name)
        task.set_flags(TaskFlags.NONE, now)

    def task(self, name: str) -> PsiTask:
        return self._tasks[name]

    def tick(self, now: float) -> None:
        """Advance all domains to ``now`` (integrals + running averages)."""
        for group in self._groups.values():
            group.tick(now)

    def some_total(self, group_name: str, resource: Resource) -> float:
        """Cumulative ``some`` stall seconds for a domain — the counter
        Senpai diffs between polling periods.

        While the telemetry is frozen (an injected fault; see
        :meth:`freeze_telemetry`) this serves the value captured at
        freeze time: the counter appears stuck, exactly like a hung
        pressure-file reader in production.
        """
        if self._frozen_at_s is not None:
            key = (group_name, resource)
            if key in self._frozen_totals:
                return self._frozen_totals[key]
        return self._groups[group_name].total(resource, "some")

    # ------------------------------------------------------------------
    # telemetry-fault seam

    @property
    def telemetry_frozen(self) -> bool:
        return self._frozen_at_s is not None

    def telemetry_age_s(self, now: float) -> float:
        """Seconds since the served telemetry was last fresh.

        0.0 while healthy; grows monotonically while frozen. Controllers
        use this as their staleness signal instead of guessing from
        unchanged counters (a genuinely idle host also has unchanged
        counters).
        """
        if self._frozen_at_s is None:
            return 0.0
        return max(0.0, now - self._frozen_at_s)

    def freeze_telemetry(self, now: float) -> None:
        """Freeze the *read side* of PSI at its current values.

        Accumulation continues underneath (the stalls are still
        happening — only their reporting is stuck), so invariant checks
        against internal state stay valid. Idempotent: re-freezing
        keeps the original capture.
        """
        if self._frozen_at_s is not None:
            return
        self._frozen_at_s = now
        self._frozen_totals = {}
        for name, group in self._groups.items():
            for resource in Resource:
                self._frozen_totals[(name, resource)] = group.total(
                    resource, "some"
                )

    def thaw_telemetry(self) -> None:
        """Resume serving live telemetry."""
        self._frozen_at_s = None
        self._frozen_totals = {}
