"""TMO: Transparent Memory Offloading in Datacenters — reproduction.

A full Python reproduction of Weiner et al., ASPLOS '22, on a simulated
kernel/device substrate:

* :mod:`repro.psi` — Pressure Stall Information, the kernel mechanism
  that measures lost work due to CPU/memory/IO shortage.
* :mod:`repro.kernel` — the memory-management substrate: cgroups, LRU
  lists, shadow-entry refault detection, and the legacy vs TMO reclaim
  balancing algorithms.
* :mod:`repro.backends` — offload backends: the Figure 5 SSD catalog
  and the zswap compressed pool.
* :mod:`repro.workloads` — the application catalog parameterised by the
  paper's published workload characteristics.
* :mod:`repro.core` — the control plane: Senpai, its legacy limit-based
  ancestor, the g-swap baseline, write-endurance regulation, and the
  fleet harness.
* :mod:`repro.sim` — the deterministic host simulator.
* :mod:`repro.analysis` — cost trends, coldness profiling, reporting.

Quickstart::

    from repro import Host, HostConfig, Senpai, SenpaiConfig, Workload
    from repro.workloads import APP_CATALOG

    host = Host(HostConfig(ram_gb=4.0, page_size_bytes=1 << 20, backend="zswap"))
    host.add_workload(Workload, profile=APP_CATALOG["Feed"],
                      name="feed", size_scale=0.05)
    host.add_controller(Senpai(SenpaiConfig()))
    host.run(600.0)
    print(host.mm.cgroup("feed").zswap_bytes)
"""

from repro.backends import SSD_CATALOG, SsdSwapBackend, ZswapBackend
from repro.checkpoint import SnapshotError
from repro.core import (
    FailedHost,
    Fleet,
    FleetResult,
    GSwapConfig,
    GSwapController,
    HostPlan,
    LimitSenpai,
    LimitSenpaiConfig,
    Oomd,
    OomdConfig,
    Senpai,
    SenpaiConfig,
    SenpaiDaemon,
    SenpaiDaemonConfig,
    Supervisor,
    SupervisorConfig,
    WriteRegulator,
    reclaim_amount,
)
from repro.core.senpai import SloTier
from repro.core.fleet import cgroup_memory_savings
from repro.kernel import (
    Cgroup,
    LegacyReclaimPolicy,
    MemoryManager,
    OutOfMemoryError,
    Page,
    PageKind,
    PageState,
    TmoReclaimPolicy,
)
from repro.psi import PsiGroup, PsiSystem, Resource, TaskFlags
from repro.sim.host import Host, HostConfig
from repro.workloads import (
    APP_CATALOG,
    AppProfile,
    TaxWorkload,
    WebConfig,
    WebWorkload,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "APP_CATALOG",
    "AppProfile",
    "Cgroup",
    "FailedHost",
    "Fleet",
    "FleetResult",
    "GSwapConfig",
    "GSwapController",
    "Host",
    "HostConfig",
    "HostPlan",
    "LegacyReclaimPolicy",
    "LimitSenpai",
    "LimitSenpaiConfig",
    "MemoryManager",
    "OutOfMemoryError",
    "Page",
    "PageKind",
    "PageState",
    "PsiGroup",
    "PsiSystem",
    "Resource",
    "SSD_CATALOG",
    "SnapshotError",
    "Supervisor",
    "SupervisorConfig",
    "Oomd",
    "OomdConfig",
    "Senpai",
    "SenpaiConfig",
    "SenpaiDaemon",
    "SenpaiDaemonConfig",
    "SloTier",
    "SsdSwapBackend",
    "TaskFlags",
    "TaxWorkload",
    "TmoReclaimPolicy",
    "WebConfig",
    "WebWorkload",
    "Workload",
    "WriteRegulator",
    "ZswapBackend",
    "cgroup_memory_savings",
    "reclaim_amount",
]
