"""The snapshot envelope: versioning, integrity, refusal semantics.

A snapshot is a canonical-JSON document in a three-field envelope::

    {"schema_version": 1, "digest": "<sha256>", "payload": {...}}

``digest`` is the SHA-256 of the *canonical* payload encoding
(``json.dumps(payload, sort_keys=True, separators=(",", ":"))``), so a
snapshot is content-addressed: two hosts with identical state produce
byte-identical envelopes, and a single flipped bit in the payload is
caught before any restore work begins.

Refusal semantics (docs/RESILIENCE.md, "Recovery"): a bad snapshot —
truncated file, unknown schema version, digest mismatch, wrong shape —
raises :class:`SnapshotError` naming the offending field or byte
offset. Validation happens *before* any host object is constructed, so
a failed restore can never leave a half-restored host behind.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

#: Current snapshot schema version. Bump on any change to the payload
#: layout; old versions are refused, never silently migrated (the
#: versioning policy is documented in docs/RESILIENCE.md).
#: v2: Supervisor payloads carry ``quarantined``/``consecutive_deaths``
#: and an Optional ``max_restarts`` in their config.
SCHEMA_VERSION = 2

#: Payload marker distinguishing host snapshots from other documents.
PAYLOAD_KIND = "tmo-host-snapshot"


class SnapshotError(ValueError):
    """A snapshot could not be produced or refused to load.

    Attributes:
        field: the envelope/payload field that failed validation
            (``"schema_version"``, ``"digest"``, ...), when known.
        offset: byte offset of a parse failure in the serialized
            document, when known (truncated/corrupt files).
    """

    def __init__(
        self,
        message: str,
        field: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> None:
        detail = message
        if field is not None:
            detail += f" (field: {field})"
        if offset is not None:
            detail += f" (offset: {offset})"
        super().__init__(detail)
        self.field = field
        self.offset = offset


def canonical_json(payload: Any) -> str:
    """The one true serialization of a payload (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical payload encoding."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def wrap_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Build the versioned, digest-carrying envelope around a payload."""
    return {
        "schema_version": SCHEMA_VERSION,
        "digest": payload_digest(payload),
        "payload": payload,
    }


def validate_envelope(envelope: Any) -> Dict[str, Any]:
    """Check an envelope end to end; return the verified payload.

    Raises :class:`SnapshotError` on any defect — wrong shape, missing
    field, schema-version mismatch, digest mismatch, wrong payload
    kind — without constructing anything.
    """
    if not isinstance(envelope, dict):
        raise SnapshotError(
            f"snapshot envelope must be a JSON object, "
            f"got {type(envelope).__name__}",
        )
    for key in ("schema_version", "digest", "payload"):
        if key not in envelope:
            raise SnapshotError("snapshot envelope is missing a field",
                                field=key)
    version = envelope["schema_version"]
    if version != SCHEMA_VERSION:
        raise SnapshotError(
            f"unsupported snapshot schema version {version!r}; "
            f"this build reads version {SCHEMA_VERSION}",
            field="schema_version",
        )
    payload = envelope["payload"]
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload must be a JSON object",
                            field="payload")
    expected = payload_digest(payload)
    found = envelope["digest"]
    if found != expected:
        raise SnapshotError(
            f"snapshot digest mismatch: envelope says {found!r}, "
            f"payload hashes to {expected!r} — refusing a corrupt "
            "snapshot",
            field="digest",
        )
    kind = payload.get("kind")
    if kind != PAYLOAD_KIND:
        raise SnapshotError(
            f"payload kind {kind!r} is not {PAYLOAD_KIND!r}",
            field="kind",
        )
    return payload


def dump_envelope(envelope: Dict[str, Any]) -> str:
    """Serialize a full envelope (canonical form, trailing newline)."""
    return canonical_json(envelope) + "\n"


def parse_document(text: str) -> Any:
    """Parse a serialized snapshot, mapping JSON errors to SnapshotError.

    A truncated or otherwise unparseable document reports the byte
    offset where decoding failed.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"snapshot is truncated or not valid JSON: {exc.msg}",
            offset=exc.pos,
        ) from exc
