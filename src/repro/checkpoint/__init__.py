"""Crash-safe checkpoint/restore of the whole simulation.

The paper's controllers survive restarts because ``memory.reclaim`` is
stateless (Section 3.3); this package extends that restartability to
the entire reproduction. A host — clock, memory manager, cgroup trees,
LRU orders, shadow entries, PSI trackers, device queues, fault seams,
RNG streams, workloads, controllers, metric series — serializes to a
single versioned, digest-protected JSON document, and restores to a
host that continues *bit-identically*: running to ``t1``, snapshotting,
killing the process, restoring and running to ``t2`` produces the same
metric-series digest as running straight to ``t2``. The chaos
harness's crash-equivalence mode (``python -m repro crash-equivalence``)
asserts exactly that.

Entry points: ``Host.snapshot()`` / ``Host.restore()`` wrap
:func:`snapshot_host` / :func:`restore_host`; :func:`save_snapshot` /
:func:`load_snapshot` add the file layer used by
``python -m repro run --checkpoint-every N --resume PATH``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.checkpoint.codec import build_host, encode_host_state
from repro.checkpoint.snapshot import (
    SCHEMA_VERSION,
    SnapshotError,
    dump_envelope,
    parse_document,
    payload_digest,
    validate_envelope,
    wrap_payload,
)

__all__ = [
    "SCHEMA_VERSION",
    "SnapshotError",
    "snapshot_host",
    "restore_host",
    "save_snapshot",
    "load_snapshot",
    "payload_digest",
]


def snapshot_host(host) -> Dict[str, Any]:
    """Snapshot a host into a versioned, digest-carrying envelope."""
    return wrap_payload(encode_host_state(host))


def restore_host(envelope: Any):
    """Validate an envelope and rebuild the host it describes.

    The envelope is checked end to end (schema version, digest, shape)
    *before* any construction, so a bad snapshot raises
    :class:`SnapshotError` and never yields a half-restored host.
    """
    return build_host(validate_envelope(envelope))


def save_snapshot(host, path: str) -> str:
    """Snapshot ``host`` to ``path``; returns the payload digest."""
    envelope = snapshot_host(host)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_envelope(envelope))
    return envelope["digest"]


def load_snapshot(path: str):
    """Read, validate and restore a snapshot file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    return restore_host(parse_document(text))
