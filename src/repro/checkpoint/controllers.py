"""Encoders/decoders for controller state.

Controllers hold the state TMO deliberately keeps *out* of the kernel —
Senpai's breaker phase and per-cgroup backoff timers, oomd's watch
windows, the fault injector's fired/active sets, a supervisor's
restart bookkeeping. These codecs serve two layers:

* the host snapshot (:mod:`repro.checkpoint.codec`) embeds one encoded
  document per attached controller, in polling order;
* the :class:`~repro.core.supervisor.Supervisor` persists its inner
  controller through the same codec, so a restarted controller resumes
  from exactly the state a host-level restore would have given it.

A controller type without a codec raises :class:`SnapshotError` at
snapshot time — loudly, before anything is written — rather than
producing a snapshot that cannot restore.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from repro.checkpoint.snapshot import SnapshotError
from repro.core.autotune import AutoTuneConfig, AutoTuneSenpai, _TuneState
from repro.core.gswap import GSwapConfig, GSwapController, _GswapState
from repro.core.daemon import (
    SenpaiDaemon,
    SenpaiDaemonConfig,
    _DaemonCgroupState,
)
from repro.core.oomd import Oomd, OomdConfig, _WatchState
from repro.core.senpai import Senpai, SenpaiConfig, SloTier, _CgroupState
from repro.core.supervisor import Supervisor, SupervisorConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.psi.types import Resource


def _opt_float(value: Optional[float]) -> Optional[float]:
    return None if value is None else float(value)


# ----------------------------------------------------------------------
# Senpai (and the AIMD-tuned subclass)


def _encode_senpai_config(config: SenpaiConfig) -> Dict[str, Any]:
    return {
        "interval_s": float(config.interval_s),
        "psi_threshold": float(config.psi_threshold),
        "io_threshold": float(config.io_threshold),
        "reclaim_ratio": float(config.reclaim_ratio),
        "max_step_frac": float(config.max_step_frac),
        "write_limit_mb_s": _opt_float(config.write_limit_mb_s),
        "file_only_mode": bool(config.file_only_mode),
        "swap_free_margin_frac": float(config.swap_free_margin_frac),
        "endurance_limit_frac": float(config.endurance_limit_frac),
        "cgroups": list(config.cgroups) if config.cgroups else None,
        "slo_tiers": [
            [name, float(tier.pressure_scale), float(tier.ratio_scale)]
            for name, tier in config.slo_tiers
        ],
        "stale_after_s": float(config.stale_after_s),
        "breaker_trip_polls": int(config.breaker_trip_polls),
        "breaker_probe_s": float(config.breaker_probe_s),
        "error_backoff_s": float(config.error_backoff_s),
        "error_backoff_max_s": float(config.error_backoff_max_s),
    }


def _decode_senpai_config(enc: Dict[str, Any]) -> SenpaiConfig:
    kwargs = dict(enc)
    cgroups = kwargs.pop("cgroups")
    slo_tiers = kwargs.pop("slo_tiers")
    return SenpaiConfig(
        cgroups=tuple(cgroups) if cgroups else None,
        slo_tiers=tuple(
            (name, SloTier(pressure_scale=p, ratio_scale=r))
            for name, p, r in slo_tiers
        ),
        **kwargs,
    )


def _encode_senpai_state(senpai: Senpai) -> Dict[str, Any]:
    regulator = None
    if senpai.regulator is not None:
        regulator = {
            "limit_bytes_per_s": float(senpai.regulator.limit_bytes_per_s),
            "window_s": float(senpai.regulator.window_s),
            "rate": float(senpai.regulator._rate),
            "last_bytes_written": int(senpai.regulator._last_bytes_written),
            "allowance": float(senpai.regulator._allowance),
        }
    return {
        "states": [
            [name, float(st.last_mem_total), float(st.last_io_total),
             bool(st.seen), int(st.error_streak), float(st.skip_until_s)]
            for name, st in senpai._states.items()
        ],
        "next_poll": _opt_float(senpai._next_poll),
        "last_tick": _opt_float(senpai._last_tick),
        "last_period_at": _opt_float(senpai._last_period_at),
        "total_requested": int(senpai.total_requested),
        "total_reclaimed": int(senpai.total_reclaimed),
        "breaker_state": senpai.breaker_state,
        "breaker_open_count": int(senpai.breaker_open_count),
        "breaker_reclose_count": int(senpai.breaker_reclose_count),
        "breaker_faulty_streak": int(senpai._breaker_faulty_streak),
        "breaker_opened_at_s": _opt_float(senpai._breaker_opened_at_s),
        "last_swap_ops": int(senpai._last_swap_ops),
        "last_swap_faults": int(senpai._last_swap_faults),
        "stale_skips": int(senpai.stale_skips),
        "error_skips": int(senpai.error_skips),
        "regulator": regulator,
    }


def _apply_senpai_state(senpai: Senpai, enc: Dict[str, Any]) -> None:
    senpai._states = {
        name: _CgroupState(
            last_mem_total=float(mem_total),
            last_io_total=float(io_total),
            seen=bool(seen),
            error_streak=int(streak),
            skip_until_s=float(skip_until_s),
        )
        for name, mem_total, io_total, seen, streak, skip_until_s
        in enc["states"]
    }
    senpai._next_poll = _opt_float(enc["next_poll"])
    senpai._last_tick = _opt_float(enc["last_tick"])
    senpai._last_period_at = _opt_float(enc["last_period_at"])
    senpai.total_requested = int(enc["total_requested"])
    senpai.total_reclaimed = int(enc["total_reclaimed"])
    senpai.breaker_state = enc["breaker_state"]
    senpai.breaker_open_count = int(enc["breaker_open_count"])
    senpai.breaker_reclose_count = int(enc["breaker_reclose_count"])
    senpai._breaker_faulty_streak = int(enc["breaker_faulty_streak"])
    senpai._breaker_opened_at_s = _opt_float(enc["breaker_opened_at_s"])
    senpai._last_swap_ops = int(enc["last_swap_ops"])
    senpai._last_swap_faults = int(enc["last_swap_faults"])
    senpai.stale_skips = int(enc["stale_skips"])
    senpai.error_skips = int(enc["error_skips"])
    if enc["regulator"] is not None and senpai.regulator is not None:
        reg_enc = enc["regulator"]
        senpai.regulator.limit_bytes_per_s = float(
            reg_enc["limit_bytes_per_s"]
        )
        senpai.regulator.window_s = float(reg_enc["window_s"])
        senpai.regulator._rate = float(reg_enc["rate"])
        senpai.regulator._last_bytes_written = int(
            reg_enc["last_bytes_written"]
        )
        senpai.regulator._allowance = float(reg_enc["allowance"])


def _encode_senpai(senpai: Senpai) -> Dict[str, Any]:
    return {
        "type": "Senpai",
        "config": _encode_senpai_config(senpai.config),
        "state": _encode_senpai_state(senpai),
    }


def _decode_senpai(enc: Dict[str, Any]) -> Senpai:
    senpai = Senpai(_decode_senpai_config(enc["config"]))
    _apply_senpai_state(senpai, enc["state"])
    return senpai


def _encode_autotune(senpai: AutoTuneSenpai) -> Dict[str, Any]:
    tune = senpai.tune
    return {
        "type": "AutoTuneSenpai",
        "config": {
            "base": _encode_senpai_config(tune.base),
            "ratio_min": float(tune.ratio_min),
            "ratio_max": float(tune.ratio_max),
            "raise_below": float(tune.raise_below),
            "raise_factor": float(tune.raise_factor),
            "backoff_factor": float(tune.backoff_factor),
            "settle_periods": int(tune.settle_periods),
        },
        "state": _encode_senpai_state(senpai),
        "ratios": [
            [name, float(st.ratio), int(st.calm_periods)]
            for name, st in senpai._ratios.items()
        ],
    }


def _decode_autotune(enc: Dict[str, Any]) -> AutoTuneSenpai:
    config_enc = dict(enc["config"])
    base = _decode_senpai_config(config_enc.pop("base"))
    senpai = AutoTuneSenpai(AutoTuneConfig(base=base, **config_enc))
    _apply_senpai_state(senpai, enc["state"])
    senpai._ratios = {
        name: _TuneState(ratio=float(ratio), calm_periods=int(calm))
        for name, ratio, calm in enc["ratios"]
    }
    return senpai


# ----------------------------------------------------------------------
# g-swap (the static-promotion-rate comparator)


def _encode_gswap(controller: GSwapController) -> Dict[str, Any]:
    config = controller.config
    return {
        "type": "GSwapController",
        "config": {
            "target_promotion_rate": float(config.target_promotion_rate),
            "interval_s": float(config.interval_s),
            "initial_step_frac": float(config.initial_step_frac),
            "increase_factor": float(config.increase_factor),
            "decrease_factor": float(config.decrease_factor),
            "max_step_frac": float(config.max_step_frac),
            "cgroups": list(config.cgroups) if config.cgroups else None,
        },
        "states": [
            [name, float(st.step_frac), int(st.last_pswpin),
             bool(st.seen)]
            for name, st in controller._states.items()
        ],
        "next_poll": _opt_float(controller._next_poll),
    }


def _decode_gswap(enc: Dict[str, Any]) -> GSwapController:
    config_enc = dict(enc["config"])
    cgroups = config_enc.pop("cgroups")
    controller = GSwapController(GSwapConfig(
        cgroups=tuple(cgroups) if cgroups else None, **config_enc
    ))
    controller._states = {
        name: _GswapState(
            step_frac=float(step_frac),
            last_pswpin=int(last_pswpin),
            seen=bool(seen),
        )
        for name, step_frac, last_pswpin, seen in enc["states"]
    }
    controller._next_poll = _opt_float(enc["next_poll"])
    return controller


# ----------------------------------------------------------------------
# file-protocol senpai daemon


def _encode_daemon(daemon: SenpaiDaemon) -> Dict[str, Any]:
    return {
        "type": "SenpaiDaemon",
        "config": {
            "interval_s": float(daemon.config.interval_s),
            "psi_threshold": float(daemon.config.psi_threshold),
            "reclaim_ratio": float(daemon.config.reclaim_ratio),
            "max_step_frac": float(daemon.config.max_step_frac),
            "cgroups": list(daemon.config.cgroups),
            "error_backoff_s": float(daemon.config.error_backoff_s),
            "error_backoff_max_s": float(daemon.config.error_backoff_max_s),
        },
        "states": [
            [name, int(st.last_total_us), _opt_float(st.last_poll_at_s),
             int(st.error_streak), float(st.skip_until_s)]
            for name, st in daemon._states.items()
        ],
        "next_poll": _opt_float(daemon._next_poll),
        "skipped_reads": int(daemon.skipped_reads),
        "failed_writes": int(daemon.failed_writes),
    }


def _decode_daemon(enc: Dict[str, Any]) -> SenpaiDaemon:
    config_enc = dict(enc["config"])
    cgroups = config_enc.pop("cgroups")
    daemon = SenpaiDaemon(
        SenpaiDaemonConfig(cgroups=tuple(cgroups), **config_enc)
    )
    daemon._states = {
        name: _DaemonCgroupState(
            last_total_us=int(total_us),
            last_poll_at_s=_opt_float(poll_at),
            error_streak=int(streak),
            skip_until_s=float(skip_until),
        )
        for name, total_us, poll_at, streak, skip_until in enc["states"]
    }
    daemon._next_poll = _opt_float(enc["next_poll"])
    daemon.skipped_reads = int(enc["skipped_reads"])
    daemon.failed_writes = int(enc["failed_writes"])
    return daemon


# ----------------------------------------------------------------------
# oomd


def _encode_oomd(oomd: Oomd) -> Dict[str, Any]:
    config = oomd.config
    return {
        "type": "Oomd",
        "config": {
            "full_threshold": float(config.full_threshold),
            "sustain_s": float(config.sustain_s),
            "resource": config.resource.value,
            "interval_s": float(config.interval_s),
            "cgroups": list(config.cgroups) if config.cgroups else None,
        },
        "states": [
            [name, _opt_float(st.over_since)]
            for name, st in oomd._states.items()
        ],
        "next_poll": _opt_float(oomd._next_poll),
        "kills": [[float(t), name] for t, name in oomd.kills],
        "lost_races": int(oomd.lost_races),
    }


def _decode_oomd(enc: Dict[str, Any]) -> Oomd:
    config_enc = enc["config"]
    oomd = Oomd(OomdConfig(
        full_threshold=float(config_enc["full_threshold"]),
        sustain_s=float(config_enc["sustain_s"]),
        resource=Resource(config_enc["resource"]),
        interval_s=float(config_enc["interval_s"]),
        cgroups=(
            tuple(config_enc["cgroups"])
            if config_enc["cgroups"] else None
        ),
    ))
    oomd._states = {
        name: _WatchState(over_since=_opt_float(over_since))
        for name, over_since in enc["states"]
    }
    oomd._next_poll = _opt_float(enc["next_poll"])
    oomd.kills = [(float(t), name) for t, name in enc["kills"]]
    oomd.lost_races = int(enc["lost_races"])
    return oomd


# ----------------------------------------------------------------------
# fault injector


def _encode_injector(injector: FaultInjector) -> Dict[str, Any]:
    plan = injector.plan
    return {
        "type": "FaultInjector",
        "plan": {
            "seed": int(plan.seed),
            "duration_s": float(plan.duration_s),
            "events": [
                [ev.kind, ev.target, float(ev.start_s),
                 float(ev.duration_s), float(ev.severity)]
                for ev in plan.events
            ],
        },
        "active": sorted(int(i) for i in injector._active),
        "fired": sorted(int(i) for i in injector._fired),
        "injected": dict(injector.injected),
        "skipped": int(injector.skipped),
    }


def _decode_injector(enc: Dict[str, Any]) -> FaultInjector:
    plan_enc = enc["plan"]
    plan = FaultPlan(
        seed=int(plan_enc["seed"]),
        duration_s=float(plan_enc["duration_s"]),
        events=tuple(
            FaultEvent(
                kind=kind, target=target, start_s=float(start_s),
                duration_s=float(duration_s), severity=float(severity),
            )
            for kind, target, start_s, duration_s, severity
            in plan_enc["events"]
        ),
    )
    injector = FaultInjector(plan)
    injector._active = {int(i) for i in enc["active"]}
    injector._fired = {int(i) for i in enc["fired"]}
    injector.injected = {
        kind: int(n) for kind, n in enc["injected"].items()
    }
    injector.skipped = int(enc["skipped"])
    return injector


# ----------------------------------------------------------------------
# supervisor


def _encode_supervisor(supervisor: Supervisor) -> Dict[str, Any]:
    return {
        "type": "Supervisor",
        "config": {
            # max_restarts is Optional[int]; everything else is float.
            f.name: (
                None if getattr(supervisor.config, f.name) is None
                else float(getattr(supervisor.config, f.name))
            )
            for f in dataclasses.fields(supervisor.config)
        },
        "controller": encode_controller(supervisor.controller),
        "alive": bool(supervisor.alive),
        "quarantined": bool(supervisor.quarantined),
        "consecutive_deaths": int(supervisor._consecutive_deaths),
        "crash_count": int(supervisor.crash_count),
        "hang_kill_count": int(supervisor.hang_kill_count),
        "restart_count": int(supervisor.restart_count),
        "unquarantine_count": int(supervisor.unquarantine_count),
        "last_heartbeat_s": _opt_float(supervisor._last_heartbeat_s),
        "next_persist_s": _opt_float(supervisor._next_persist_s),
        "restart_at_s": _opt_float(supervisor._restart_at_s),
        "backoff_s": float(supervisor._backoff_s),
        "faults": {
            "crash_pending": bool(supervisor.faults.crash_pending),
            "hung": bool(supervisor.faults.hung),
        },
        "persisted": supervisor._persisted,
    }


def _decode_supervisor(enc: Dict[str, Any]) -> Supervisor:
    supervisor = Supervisor(
        decode_controller(enc["controller"]),
        SupervisorConfig(**{
            key: (
                None if value is None
                else int(value) if key == "max_restarts"
                else float(value)
            )
            for key, value in enc["config"].items()
        }),
    )
    supervisor.alive = bool(enc["alive"])
    supervisor.quarantined = bool(enc["quarantined"])
    supervisor._consecutive_deaths = int(enc["consecutive_deaths"])
    supervisor.crash_count = int(enc["crash_count"])
    supervisor.hang_kill_count = int(enc["hang_kill_count"])
    supervisor.restart_count = int(enc["restart_count"])
    # Absent in pre-control-plane snapshots: default, don't demand.
    supervisor.unquarantine_count = int(enc.get("unquarantine_count", 0))
    supervisor._last_heartbeat_s = _opt_float(enc["last_heartbeat_s"])
    supervisor._next_persist_s = _opt_float(enc["next_persist_s"])
    supervisor._restart_at_s = _opt_float(enc["restart_at_s"])
    supervisor._backoff_s = float(enc["backoff_s"])
    supervisor.faults.crash_pending = bool(enc["faults"]["crash_pending"])
    supervisor.faults.hung = bool(enc["faults"]["hung"])
    supervisor._persisted = enc["persisted"]
    return supervisor


# ----------------------------------------------------------------------
# dispatch

_DECODERS = {
    "Senpai": _decode_senpai,
    "AutoTuneSenpai": _decode_autotune,
    "GSwapController": _decode_gswap,
    "SenpaiDaemon": _decode_daemon,
    "Oomd": _decode_oomd,
    "FaultInjector": _decode_injector,
    "Supervisor": _decode_supervisor,
}


def encode_controller(controller: Any) -> Dict[str, Any]:
    """Encode one controller; raises SnapshotError for unknown types.

    Dispatch is on the *exact* class: a subclass with extra state must
    register its own codec rather than silently losing that state
    through its parent's.
    """
    type_name = type(controller).__name__
    if type_name == "Senpai":
        return _encode_senpai(controller)
    if type_name == "AutoTuneSenpai":
        return _encode_autotune(controller)
    if type_name == "GSwapController":
        return _encode_gswap(controller)
    if type_name == "SenpaiDaemon":
        return _encode_daemon(controller)
    if type_name == "Oomd":
        return _encode_oomd(controller)
    if type_name == "FaultInjector":
        return _encode_injector(controller)
    if type_name == "Supervisor":
        return _encode_supervisor(controller)
    raise SnapshotError(
        f"no snapshot codec for controller type {type_name!r}; "
        f"supported: {sorted(_DECODERS)}",
        field="controllers",
    )


def decode_controller(enc: Dict[str, Any]) -> Any:
    """Rebuild one controller from its encoded document."""
    type_name = enc.get("type")
    decoder = _DECODERS.get(type_name)
    if decoder is None:
        raise SnapshotError(
            f"snapshot names unknown controller type {type_name!r}; "
            f"supported: {sorted(_DECODERS)}",
            field="controllers",
        )
    return decoder(enc)
