"""Field-level encoders/decoders for the full host state.

``encode_host_state`` walks every mutable structure of a
:class:`~repro.sim.host.Host` — clock, memory manager, cgroups, LRU
orders, shadow entries, PSI groups/tasks/averages, device queues and
fault seams, RNG streams, workloads, controllers, metric series — into
plain JSON types (dicts with string keys, lists, numbers, strings,
booleans, None). ``build_host`` does the inverse: construct a fresh
``Host`` from the snapshotted config, then overwrite all mutable state
so the restored host is *bit-identical* to the snapshotted one — the
crash-equivalence guarantee the chaos harness verifies.

Encoding conventions:

* dicts with non-string keys (tuple-keyed PSI totals, int-keyed page
  tables) become lists of ``[key..., value]`` entries, preserving
  insertion order — Python dict order is semantic here (LRU order,
  controller polling order, metric series order);
* enums are encoded by ``.value`` and rebuilt by construction;
* NumPy generator state round-trips through
  ``Generator.bit_generator.state`` (a JSON-clean dict).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

import numpy as np

from repro.checkpoint.snapshot import PAYLOAD_KIND, SnapshotError
from repro.kernel.page import Page, PageKind, PageState
from repro.psi.avgs import RunningAverages
from repro.psi.group import PsiGroup
from repro.psi.trigger import PsiTrigger, TriggerSpec
from repro.psi.types import RESOURCE_INDEX, RESOURCE_ORDER, Resource, TaskFlags
from repro.sim.metrics import Series
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload
from repro.workloads.diurnal import DiurnalWorkload
from repro.workloads.tax import TaxWorkload
from repro.workloads.web import WebConfig, WebWorkload
from repro.workloads.access import HeatBands

#: Workload classes the codec can round-trip. Trace-driven workloads
#: hold open recorders/replays and are refused at snapshot time.
WORKLOAD_TYPES = {
    "Workload": Workload,
    "WebWorkload": WebWorkload,
    "TaxWorkload": TaxWorkload,
    "DiurnalWorkload": DiurnalWorkload,
}


def _opt_float(value: Optional[float]) -> Optional[float]:
    return None if value is None else float(value)


def _opt_int(value: Optional[int]) -> Optional[int]:
    return None if value is None else int(value)


# ----------------------------------------------------------------------
# RNG streams


def encode_rng(rng: np.random.Generator) -> Dict[str, Any]:
    """A generator's exact position in its stream (JSON-clean dict)."""
    return rng.bit_generator.state


def apply_rng(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    rng.bit_generator.state = state


# ----------------------------------------------------------------------
# device / backend substrate


def _encode_latencies(reservoir) -> Dict[str, Any]:
    return {
        "capacity_entries": int(reservoir.capacity_entries),
        "samples": [float(s) for s in reservoir.samples()],
        "next": int(reservoir._next),
    }


def _apply_latencies(reservoir, enc: Dict[str, Any]) -> None:
    reservoir.capacity_entries = int(enc["capacity_entries"])
    reservoir.set_samples(
        [float(s) for s in enc["samples"]], int(enc["next"])
    )


def _encode_stats(stats) -> Dict[str, Any]:
    return {
        "reads": int(stats.reads),
        "writes": int(stats.writes),
        "bytes_read": int(stats.bytes_read),
        "bytes_written": int(stats.bytes_written),
        "read_stall_seconds": float(stats.read_stall_seconds),
        "write_stall_seconds": float(stats.write_stall_seconds),
        "latencies": _encode_latencies(stats.latencies),
    }


def _apply_stats(stats, enc: Dict[str, Any]) -> None:
    stats.reads = int(enc["reads"])
    stats.writes = int(enc["writes"])
    stats.bytes_read = int(enc["bytes_read"])
    stats.bytes_written = int(enc["bytes_written"])
    stats.read_stall_seconds = float(enc["read_stall_seconds"])
    stats.write_stall_seconds = float(enc["write_stall_seconds"])
    _apply_latencies(stats.latencies, enc["latencies"])


def encode_device_faults(faults) -> Dict[str, Any]:
    return {
        "latency_multiplier": float(faults.latency_multiplier),
        "io_error_rate": float(faults.io_error_rate),
        "available": bool(faults.available),
    }


def apply_device_faults(faults, enc: Dict[str, Any]) -> None:
    faults.latency_multiplier = float(enc["latency_multiplier"])
    faults.io_error_rate = float(enc["io_error_rate"])
    faults.available = bool(enc["available"])


def _encode_device(device) -> Dict[str, Any]:
    return {
        "read_rate": float(device._read_rate),
        "write_rate": float(device._write_rate),
        "pending_reads": float(device._pending_reads),
        "pending_writes": float(device._pending_writes),
        "util_window_s": float(device._util_window),
        "faults": encode_device_faults(device.faults),
        "rng_state": encode_rng(device._rng),
    }


def _apply_device(device, enc: Dict[str, Any]) -> None:
    device._read_rate = float(enc["read_rate"])
    device._write_rate = float(enc["write_rate"])
    device._pending_reads = float(enc["pending_reads"])
    device._pending_writes = float(enc["pending_writes"])
    device._util_window = float(enc["util_window_s"])
    apply_device_faults(device.faults, enc["faults"])
    apply_rng(device._rng, enc["rng_state"])


def _encode_ssd(ssd) -> Dict[str, Any]:
    return {
        "stored_bytes": int(ssd._stored),
        "endurance_bytes_written": int(ssd.endurance_bytes_written),
        "stats": _encode_stats(ssd.stats),
    }


def _apply_ssd(ssd, enc: Dict[str, Any]) -> None:
    ssd._stored = int(enc["stored_bytes"])
    ssd.endurance_bytes_written = int(enc["endurance_bytes_written"])
    _apply_stats(ssd.stats, enc["stats"])


def _encode_zswap(zswap) -> Dict[str, Any]:
    return {
        "pool_bytes": int(zswap._pool_bytes),
        "logical_bytes": int(zswap._logical_bytes),
        "compress_cpu_seconds": float(zswap.compress_cpu_seconds),
        "decompress_cpu_seconds": float(zswap.decompress_cpu_seconds),
        "faults": encode_device_faults(zswap.faults),
        "rng_state": encode_rng(zswap._rng),
        "stats": _encode_stats(zswap.stats),
    }


def _apply_zswap(zswap, enc: Dict[str, Any]) -> None:
    zswap._pool_bytes = int(enc["pool_bytes"])
    zswap._logical_bytes = int(enc["logical_bytes"])
    zswap.compress_cpu_seconds = float(enc["compress_cpu_seconds"])
    zswap.decompress_cpu_seconds = float(enc["decompress_cpu_seconds"])
    apply_device_faults(zswap.faults, enc["faults"])
    apply_rng(zswap._rng, enc["rng_state"])
    _apply_stats(zswap.stats, enc["stats"])


def _encode_farmem(backend) -> Dict[str, Any]:
    return {
        "stored_bytes": int(backend._stored),
        "endurance_bytes_written": int(backend.endurance_bytes_written),
        "rng_state": encode_rng(backend._rng),
        "stats": _encode_stats(backend.stats),
    }


def _apply_farmem(backend, enc: Dict[str, Any]) -> None:
    backend._stored = int(enc["stored_bytes"])
    backend.endurance_bytes_written = int(enc["endurance_bytes_written"])
    apply_rng(backend._rng, enc["rng_state"])
    _apply_stats(backend.stats, enc["stats"])


def _encode_backends(host) -> Dict[str, Any]:
    enc: Dict[str, Any] = {
        "fs_stats": _encode_stats(host.fs.stats),
        "fs_device": _encode_device(host.fs.device),
    }
    backend = host.config.backend
    swap = host.swap_backend
    if backend == "ssd":
        # The swap SSD shares the filesystem's physical device; the
        # shared QueuedDevice is encoded once, under "fs_device".
        enc["swap"] = _encode_ssd(swap)
    elif backend == "zswap":
        enc["swap"] = _encode_zswap(swap)
    elif backend == "tiered":
        enc["swap"] = {
            "stats": _encode_stats(swap.stats),
            "placement": [
                [int(pid), tier] for pid, tier in swap._placement.items()
            ],
            "spilled_stores": int(swap.spilled_stores),
            "zswap": _encode_zswap(swap.zswap),
            "ssd": _encode_ssd(swap.ssd),
        }
    elif backend in ("nvm", "cxl"):
        enc["swap"] = _encode_farmem(swap)
    return enc


def _apply_backends(host, enc: Dict[str, Any]) -> None:
    _apply_stats(host.fs.stats, enc["fs_stats"])
    _apply_device(host.fs.device, enc["fs_device"])
    backend = host.config.backend
    swap = host.swap_backend
    if backend == "ssd":
        _apply_ssd(swap, enc["swap"])
    elif backend == "zswap":
        _apply_zswap(swap, enc["swap"])
    elif backend == "tiered":
        _apply_stats(swap.stats, enc["swap"]["stats"])
        swap._placement = {
            int(pid): tier for pid, tier in enc["swap"]["placement"]
        }
        swap.spilled_stores = int(enc["swap"]["spilled_stores"])
        _apply_zswap(swap.zswap, enc["swap"]["zswap"])
        _apply_ssd(swap.ssd, enc["swap"]["ssd"])
    elif backend in ("nvm", "cxl"):
        _apply_farmem(swap, enc["swap"])


# ----------------------------------------------------------------------
# memory manager: pages, cgroups, LRU orders, shadow entries


def _encode_page(page: Page) -> List[Any]:
    return [
        int(page.page_id),
        page.kind.value,
        page.cgroup,
        page.state.value,
        bool(page.active),
        bool(page.referenced),
        bool(page.dirty),
        float(page.compressibility),
        float(page.last_access),
        _opt_int(page.shadow_stamp),
    ]


def _decode_page(enc: List[Any]) -> Page:
    return Page(
        page_id=int(enc[0]),
        kind=PageKind(enc[1]),
        cgroup=enc[2],
        state=PageState(enc[3]),
        active=bool(enc[4]),
        referenced=bool(enc[5]),
        dirty=bool(enc[6]),
        compressibility=float(enc[7]),
        last_access=float(enc[8]),
        shadow_stamp=_opt_int(enc[9]),
    )


def _encode_rate(rate) -> List[float]:
    return [float(rate.window_s), float(rate.rate), int(rate._last_count)]


def _apply_rate(rate, enc: List[float]) -> None:
    rate.window_s = float(enc[0])
    rate.rate = float(enc[1])
    rate._last_count = int(enc[2])


def _encode_cgroup(cg) -> Dict[str, Any]:
    vmstat = [
        int(getattr(cg.vmstat, f.name))
        for f in dataclasses.fields(cg.vmstat)
    ]
    lru: Dict[str, Any] = {}
    for kind, lru_set in cg.lru.items():
        lru[kind.value] = {
            "active": [int(pid) for pid in lru_set.active._pages],
            "inactive": [int(pid) for pid in lru_set.inactive._pages],
        }
    return {
        "name": cg.name,
        "parent": cg.parent.name if cg.parent is not None else None,
        "compressibility": float(cg.compressibility),
        "memory_max": _opt_int(cg.memory_max),
        "memory_low": int(cg.memory_low),
        "swap_max": _opt_int(cg.swap_max),
        "anon_bytes": int(cg.anon_bytes),
        "file_bytes": int(cg.file_bytes),
        "swap_bytes": int(cg.swap_bytes),
        "zswap_bytes": int(cg.zswap_bytes),
        "vmstat": vmstat,
        "refault_rate": _encode_rate(cg.refault_rate),
        "swapin_rate": _encode_rate(cg.swapin_rate),
        "reuse_hist": [
            [int(b), int(n)] for b, n in cg.reuse_distance_hist.items()
        ],
        "shadow": {
            "clock": int(cg.shadow._clock),
            "capacity_entries": _opt_int(cg.shadow._capacity),
            "stamps": [
                [int(pid), int(stamp)]
                for pid, stamp in cg.shadow._stamps.items()
            ],
        },
        "lru": lru,
    }


def _apply_cgroup(cg, enc: Dict[str, Any], pages: Dict[int, Page]) -> None:
    cg.compressibility = float(enc["compressibility"])
    cg.memory_max = _opt_int(enc["memory_max"])
    cg.memory_low = int(enc["memory_low"])
    cg.swap_max = _opt_int(enc["swap_max"])
    cg.anon_bytes = int(enc["anon_bytes"])
    cg.file_bytes = int(enc["file_bytes"])
    cg.swap_bytes = int(enc["swap_bytes"])
    cg.zswap_bytes = int(enc["zswap_bytes"])
    for f, value in zip(dataclasses.fields(cg.vmstat), enc["vmstat"]):
        setattr(cg.vmstat, f.name, int(value))
    _apply_rate(cg.refault_rate, enc["refault_rate"])
    _apply_rate(cg.swapin_rate, enc["swapin_rate"])
    cg.reuse_distance_hist = {
        int(b): int(n) for b, n in enc["reuse_hist"]
    }
    cg.shadow._clock = int(enc["shadow"]["clock"])
    cg.shadow._capacity = _opt_int(enc["shadow"]["capacity_entries"])
    cg.shadow._stamps = {
        int(pid): int(stamp) for pid, stamp in enc["shadow"]["stamps"]
    }
    for kind, lru_set in cg.lru.items():
        kind_enc = enc["lru"][kind.value]
        for lru_list, pids in (
            (lru_set.active, kind_enc["active"]),
            (lru_set.inactive, kind_enc["inactive"]),
        ):
            lru_list._pages.clear()
            # Re-inserting in the stored cold-to-hot iteration order
            # reproduces the OrderedDict order exactly.
            for pid in pids:
                lru_list._pages[int(pid)] = pages[int(pid)]


def _encode_mm(mm) -> Dict[str, Any]:
    return {
        "next_page_id": int(mm._next_page_id),
        "proactive_cpu_seconds": float(mm.proactive_cpu_seconds),
        "retry_stall_s": float(mm.retry_stall_s),
        "swap_op_count": int(mm.swap_op_count),
        "swap_fault_count": int(mm.swap_fault_count),
        "fs_op_count": int(mm.fs_op_count),
        "fs_fault_count": int(mm.fs_fault_count),
        "kswapd_low_frac": float(mm.kswapd_low_frac),
        "kswapd_high_frac": float(mm.kswapd_high_frac),
        "kswapd_reclaimed_bytes": int(mm.kswapd_reclaimed_bytes),
        "pages": [_encode_page(p) for p in mm._pages.values()],
        "cgroups": [_encode_cgroup(cg) for cg in mm._cgroups.values()],
    }


def _apply_mm(mm, enc: Dict[str, Any]) -> None:
    mm._next_page_id = int(enc["next_page_id"])
    mm.proactive_cpu_seconds = float(enc["proactive_cpu_seconds"])
    mm.retry_stall_s = float(enc["retry_stall_s"])
    mm.swap_op_count = int(enc["swap_op_count"])
    mm.swap_fault_count = int(enc["swap_fault_count"])
    mm.fs_op_count = int(enc["fs_op_count"])
    mm.fs_fault_count = int(enc["fs_fault_count"])
    mm.kswapd_low_frac = float(enc["kswapd_low_frac"])
    mm.kswapd_high_frac = float(enc["kswapd_high_frac"])
    mm.kswapd_reclaimed_bytes = int(enc["kswapd_reclaimed_bytes"])

    pages: Dict[int, Page] = {}
    for page_enc in enc["pages"]:
        page = _decode_page(page_enc)
        pages[page.page_id] = page
    mm._pages = pages

    for cg_enc in enc["cgroups"]:
        name = cg_enc["name"]
        if name not in mm._cgroups:
            mm.create_cgroup(
                name,
                parent=cg_enc["parent"] or "root",
                compressibility=float(cg_enc["compressibility"]),
            )
        _apply_cgroup(mm._cgroups[name], cg_enc, pages)


# ----------------------------------------------------------------------
# PSI: groups, running averages, tasks, freeze state, triggers


def _encode_psi_group(group: PsiGroup) -> Dict[str, Any]:
    avgs = []
    for (resource, kind), running in group._avgs.items():
        avgs.append([
            resource.value,
            kind,
            [[float(w), float(v)] for w, v in running.avgs.items()],
            float(running.last_total),
        ])
    return {
        "name": group.name,
        "parent": group.parent.name if group.parent is not None else None,
        "nr_stalled": [
            [r.value, int(n)]
            for r, n in zip(RESOURCE_ORDER, group.nr_stalled)
        ],
        "nr_productive": [
            [r.value, int(n)]
            for r, n in zip(RESOURCE_ORDER, group.nr_productive)
        ],
        "nr_nonidle": int(group.nr_nonidle),
        "totals": [
            [r.value, kind, float(v)]
            for (r, kind), v in group.totals.items()
        ],
        "avgs": avgs,
        "last_change": float(group._last_change),
        "next_avg_update": float(group._next_avg_update),
    }


def _apply_psi_group(group: PsiGroup, enc: Dict[str, Any]) -> None:
    for r_value, n in enc["nr_stalled"]:
        group.nr_stalled[RESOURCE_INDEX[Resource(r_value)]] = int(n)
    for r_value, n in enc["nr_productive"]:
        group.nr_productive[RESOURCE_INDEX[Resource(r_value)]] = int(n)
    group.nr_nonidle = int(enc["nr_nonidle"])
    for r_value, kind, value in enc["totals"]:
        group.totals[(Resource(r_value), kind)] = float(value)
    for r_value, kind, windows, last_total in enc["avgs"]:
        running: RunningAverages = group._avgs[(Resource(r_value), kind)]
        running.avgs = {float(w): float(v) for w, v in windows}
        running.last_total = float(last_total)
    group._last_change = float(enc["last_change"])
    group._next_avg_update = float(enc["next_avg_update"])


def _encode_psi(psi) -> Dict[str, Any]:
    return {
        "groups": [_encode_psi_group(g) for g in psi._groups.values()],
        "tasks": [
            [task.name, task._groups[0].name, int(task.flags)]
            for task in psi._tasks.values()
        ],
        "frozen_at_s": _opt_float(psi._frozen_at_s),
        "frozen_totals": [
            [name, resource.value, float(v)]
            for (name, resource), v in psi._frozen_totals.items()
        ],
    }


def _apply_psi(psi, enc: Dict[str, Any]) -> None:
    for group_enc in enc["groups"]:
        name = group_enc["name"]
        if name not in psi._groups:
            psi.add_group(name, parent=group_enc["parent"])
        _apply_psi_group(psi._groups[name], group_enc)
    for name, group_name, flags in enc["tasks"]:
        task = psi.add_task(name, group_name)
        # Direct assignment: set_flags would re-apply counter deltas
        # the group encodings above already carry.
        task.flags = TaskFlags(int(flags))
    psi._frozen_at_s = _opt_float(enc["frozen_at_s"])
    psi._frozen_totals = {
        (name, Resource(r_value)): float(v)
        for name, r_value, v in enc["frozen_totals"]
    }


def _encode_controlfs(controlfs) -> Dict[str, Any]:
    faults = controlfs.faults
    triggers = []
    for (cgroup_name, filename), trig in controlfs._triggers.items():
        triggers.append([
            cgroup_name,
            filename,
            trig.spec.resource.value,
            trig.spec.kind,
            float(trig.spec.stall_threshold_s),
            float(trig.spec.window_s),
            float(trig._window_start),
            float(trig._start_total),
            _opt_float(trig._last_fire),
            int(trig.fire_count),
        ])
    return {
        "faults": {
            "frozen_pressure": bool(faults.frozen_pressure),
            "malformed_pressure": bool(faults.malformed_pressure),
            "error_on_read": bool(faults.error_on_read),
            "error_on_write": bool(faults.error_on_write),
        },
        "pressure_cache": [
            [cgroup_name, filename, text]
            for (cgroup_name, filename), text
            in controlfs._pressure_cache.items()
        ],
        "triggers": triggers,
    }


def _apply_controlfs(host, enc: Dict[str, Any]) -> None:
    controlfs = host.controlfs
    faults_enc = enc["faults"]
    controlfs.faults.frozen_pressure = bool(faults_enc["frozen_pressure"])
    controlfs.faults.malformed_pressure = bool(
        faults_enc["malformed_pressure"]
    )
    controlfs.faults.error_on_read = bool(faults_enc["error_on_read"])
    controlfs.faults.error_on_write = bool(faults_enc["error_on_write"])
    controlfs._pressure_cache = {
        (cgroup_name, filename): text
        for cgroup_name, filename, text in enc["pressure_cache"]
    }
    triggers = {}
    for (cgroup_name, filename, r_value, kind, stall_threshold_s,
         window_s, window_start, start_total, last_fire,
         fire_count) in enc["triggers"]:
        spec = TriggerSpec(
            resource=Resource(r_value),
            kind=kind,
            stall_threshold_s=float(stall_threshold_s),
            window_s=float(window_s),
        )
        trig = PsiTrigger(host.psi.group(cgroup_name), spec)
        trig._window_start = float(window_start)
        trig._start_total = float(start_total)
        trig._last_fire = _opt_float(last_fire)
        trig.fire_count = int(fire_count)
        triggers[(cgroup_name, filename)] = trig
    controlfs._triggers = triggers
    # Derived path memo (see ControlFs.__init__) must track _triggers.
    controlfs._trigger_paths = {
        (cgroup_name, filename): f"{cgroup_name}/{filename}"
        for cgroup_name, filename in triggers
    }


# ----------------------------------------------------------------------
# workloads


def encode_profile(profile: AppProfile) -> Dict[str, Any]:
    enc = {}
    for f in dataclasses.fields(profile):
        value = getattr(profile, f.name)
        if f.name == "bands":
            value = [
                float(value.used_1min),
                float(value.used_2min),
                float(value.used_5min),
            ]
        enc[f.name] = value
    return enc


def decode_profile(enc: Dict[str, Any]) -> AppProfile:
    kwargs = dict(enc)
    bands = kwargs.pop("bands")
    return AppProfile(
        bands=HeatBands(float(bands[0]), float(bands[1]), float(bands[2])),
        **kwargs,
    )


def _encode_workload(workload: Workload) -> Dict[str, Any]:
    type_name = type(workload).__name__
    if type_name not in WORKLOAD_TYPES:
        raise SnapshotError(
            f"cannot snapshot workload type {type_name!r}; supported "
            f"types: {sorted(WORKLOAD_TYPES)}",
            field="workloads",
        )
    enc: Dict[str, Any] = {
        "type": type_name,
        "cgroup": workload.cgroup_name,
        "profile": encode_profile(workload.profile),
        "pages": [int(p.page_id) for p in workload._pages],
        "intervals": [float(v) for v in workload._intervals],
        "growth_carry": float(workload._growth_carry),
        "pending_spike_pages": int(workload._pending_spike_pages),
        "started": bool(workload.started),
        "initial_pages": _opt_int(getattr(workload, "_initial_pages", None)),
        "rng_state": encode_rng(workload._rng),
    }
    if type_name == "WebWorkload":
        enc["web_config"] = {
            f.name: getattr(workload.config, f.name)
            for f in dataclasses.fields(workload.config)
        }
        enc["rps"] = float(workload.rps)
    elif type_name == "TaxWorkload":
        enc["tax_kind"] = workload.kind
    elif type_name == "DiurnalWorkload":
        enc["diurnal"] = {
            "period_s": float(workload.period_s),
            "amplitude": float(workload.amplitude),
            "footprint_swing": float(workload.footprint_swing),
            "phase_s": float(workload.phase_s),
            "swing_pages": [int(p.page_id) for p in workload._swing_pages],
            "current_intensity": _opt_float(
                getattr(workload, "_current_intensity", None)
            ),
        }
    return enc


def _decode_workload(host, enc: Dict[str, Any]) -> Workload:
    type_name = enc["type"]
    if type_name not in WORKLOAD_TYPES:
        raise SnapshotError(
            f"snapshot names unknown workload type {type_name!r}",
            field="workloads",
        )
    cgroup_name = enc["cgroup"]
    seed = host.config.seed
    profile = decode_profile(enc["profile"])
    if type_name == "Workload":
        workload: Workload = Workload(host.mm, profile, cgroup_name, seed)
    elif type_name == "WebWorkload":
        workload = WebWorkload(
            host.mm, cgroup_name=cgroup_name, seed=seed,
            config=WebConfig(**enc["web_config"]), profile=profile,
        )
        workload.rps = float(enc["rps"])
    elif type_name == "TaxWorkload":
        workload = TaxWorkload(
            host.mm, kind=enc["tax_kind"], cgroup_name=cgroup_name,
            seed=seed,
        )
    else:  # DiurnalWorkload
        diurnal = enc["diurnal"]
        workload = DiurnalWorkload(
            host.mm, profile, cgroup_name, seed,
            period_s=float(diurnal["period_s"]),
            amplitude=float(diurnal["amplitude"]),
            footprint_swing=float(diurnal["footprint_swing"]),
            phase_s=float(diurnal["phase_s"]),
        )
        workload._swing_pages = [
            host.mm._pages[int(pid)] for pid in diurnal["swing_pages"]
        ]
        if diurnal["current_intensity"] is not None:
            workload._current_intensity = float(
                diurnal["current_intensity"]
            )
    workload._pages = [host.mm._pages[int(pid)] for pid in enc["pages"]]
    workload._intervals = np.array(enc["intervals"], dtype=np.float64)
    workload._growth_carry = float(enc["growth_carry"])
    workload._pending_spike_pages = int(enc["pending_spike_pages"])
    workload.started = bool(enc["started"])
    if enc["initial_pages"] is not None:
        workload._initial_pages = int(enc["initial_pages"])
    apply_rng(workload._rng, enc["rng_state"])
    return workload


# ----------------------------------------------------------------------
# the whole host


def encode_host_state(host) -> Dict[str, Any]:
    """Encode the full mutable state of a host as a JSON-clean payload."""
    from repro.checkpoint.controllers import encode_controller

    config_enc = {
        f.name: getattr(host.config, f.name)
        for f in dataclasses.fields(host.config)
    }
    hosted = []
    for name, entry in host._hosted.items():
        hosted.append({
            "cgroup": name,
            "workload": _encode_workload(entry.workload),
            "task_names": [t.name for t in entry.psi_tasks],
        })
    payload: Dict[str, Any] = {
        "kind": PAYLOAD_KIND,
        "config": config_enc,
        "clock_now_s": float(host.clock.now),
        "tick_index": int(host._tick_index),
        "prev_device_stats": [
            [label, int(r), int(w), int(b)]
            for label, (r, w, b) in host._prev_device_stats.items()
        ],
        "mm": _encode_mm(host.mm),
        "backends": _encode_backends(host),
        "psi": _encode_psi(host.psi),
        "controlfs": _encode_controlfs(host.controlfs),
        "hosted": hosted,
        "controllers": [
            encode_controller(c) for c in host._controllers
        ],
        "metrics": [
            [series.name,
             [float(t) for t in series.times],
             [float(v) for v in series.values]]
            for series in host.metrics._series.values()
        ],
        "invariants": (
            [
                [group, resource.value, kind, float(v)]
                for (group, resource, kind), v
                in host.invariants._psi_totals.items()
            ]
            if host.invariants is not None else None
        ),
    }
    return payload


def build_host(payload: Dict[str, Any]):
    """Construct a fresh host from a verified payload.

    The host is assembled completely before being returned; a failure
    anywhere raises and the partially-built object is discarded, so the
    caller never observes a half-restored host.
    """
    from repro.checkpoint.controllers import decode_controller
    from repro.sim.host import Host, HostConfig, HostedWorkload

    host = Host(HostConfig(**payload["config"]))
    host.clock.advance_to(float(payload["clock_now_s"]))
    host._tick_index = int(payload["tick_index"])
    host._prev_device_stats = {
        label: (int(r), int(w), int(b))
        for label, r, w, b in payload["prev_device_stats"]
    }
    _apply_mm(host.mm, payload["mm"])
    _apply_backends(host, payload["backends"])
    _apply_psi(host.psi, payload["psi"])
    _apply_controlfs(host, payload["controlfs"])
    for entry in payload["hosted"]:
        workload = _decode_workload(host, entry["workload"])
        host._hosted[entry["cgroup"]] = HostedWorkload(
            workload=workload,
            cgroup_name=entry["cgroup"],
            psi_tasks=[host.psi.task(n) for n in entry["task_names"]],
        )
    host._controllers = [
        decode_controller(enc) for enc in payload["controllers"]
    ]
    host.metrics._series = {
        name: Series(
            name=name,
            times=[float(t) for t in times],
            values=[float(v) for v in values],
        )
        for name, times, values in payload["metrics"]
    }
    if payload["invariants"] is not None and host.invariants is not None:
        host.invariants._psi_totals = {
            (group, Resource(r_value), kind): float(v)
            for group, r_value, kind, v in payload["invariants"]
        }
    return host
