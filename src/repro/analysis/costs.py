"""Hardware cost trends (Figure 1, Section 2.1).

DRAM's share of server cost grows across hardware generations toward
33% (Gen 6); compressed memory — DRAM provisioned at a 3x average
compression ratio — costs a third of that; and iso-capacity SSD stays
under 1% of server cost across generations, about 10x cheaper per byte
than compressed memory. DRAM power follows the same trend toward 38%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Average production compression ratio the paper uses to price the
#: compressed-memory tier.
DEFAULT_COMPRESSION_RATIO = 3.0


@dataclass(frozen=True)
class GenerationCost:
    """Cost shares (% of compute infrastructure) for one HW generation.

    Attributes:
        generation: 1 (end of life) .. 6 (upcoming).
        memory_pct: DRAM cost share.
        ssd_iso_capacity_pct: cost share of SSD sized iso-capacity to
            the DRAM (the sub-1% line in Figure 1).
        memory_power_pct: DRAM's share of infrastructure power.
    """

    generation: int
    memory_pct: float
    ssd_iso_capacity_pct: float
    memory_power_pct: float

    def compressed_memory_pct(
        self, ratio: float = DEFAULT_COMPRESSION_RATIO
    ) -> float:
        """Cost of a compressed pool with DRAM-equivalent capacity."""
        if ratio < 1.0:
            raise ValueError(f"compression ratio must be >= 1, got {ratio}")
        return self.memory_pct / ratio


#: Figure 1's six generations. Memory climbs from the mid-teens toward
#: the stated 33% (and 38% of power); iso-capacity SSD stays below 1%.
COST_TRENDS: List[GenerationCost] = [
    GenerationCost(1, memory_pct=14.0, ssd_iso_capacity_pct=0.45,
                   memory_power_pct=16.0),
    GenerationCost(2, memory_pct=18.0, ssd_iso_capacity_pct=0.55,
                   memory_power_pct=21.0),
    GenerationCost(3, memory_pct=22.0, ssd_iso_capacity_pct=0.65,
                   memory_power_pct=26.0),
    GenerationCost(4, memory_pct=26.0, ssd_iso_capacity_pct=0.75,
                   memory_power_pct=30.0),
    GenerationCost(5, memory_pct=30.0, ssd_iso_capacity_pct=0.85,
                   memory_power_pct=34.0),
    GenerationCost(6, memory_pct=33.0, ssd_iso_capacity_pct=0.95,
                   memory_power_pct=38.0),
]


def compressed_memory_cost_pct(
    generation: int, ratio: float = DEFAULT_COMPRESSION_RATIO
) -> float:
    """Compressed-memory cost share for a generation (1-based)."""
    for row in COST_TRENDS:
        if row.generation == generation:
            return row.compressed_memory_pct(ratio)
    raise KeyError(f"no cost data for generation {generation}")


def fleet_cost_reduction_pct(
    memory_savings_frac: float,
    generation: int = 6,
    backend: str = "zswap",
    compression_ratio: float = DEFAULT_COMPRESSION_RATIO,
) -> float:
    """Net infrastructure-cost reduction from TMO-style savings.

    Ties Section 4.1's savings to Figure 1's cost model: saving a
    fraction of DRAM removes that share of the memory cost line, but
    the displaced capacity must live somewhere — a compressed pool
    (DRAM at ``1/ratio`` density) or iso-capacity SSD.

    Args:
        memory_savings_frac: share of server DRAM freed (e.g. 0.25 for
            the paper's fleet-wide 20-32% band midpoint).
        generation: hardware generation for the cost shares.
        backend: ``"zswap"`` or ``"ssd"`` — where the offloaded bytes go.
        compression_ratio: pool density for the zswap case.

    Returns:
        Percentage points of total infrastructure cost removed.
    """
    if not 0.0 <= memory_savings_frac <= 1.0:
        raise ValueError(
            f"savings fraction must be in [0,1], got {memory_savings_frac}"
        )
    if backend not in ("zswap", "ssd"):
        raise ValueError(f"backend must be 'zswap' or 'ssd', not {backend!r}")
    row = next(
        (r for r in COST_TRENDS if r.generation == generation), None
    )
    if row is None:
        raise KeyError(f"no cost data for generation {generation}")
    dram_saved_pct = row.memory_pct * memory_savings_frac
    if backend == "zswap":
        replacement_pct = (
            row.compressed_memory_pct(compression_ratio)
            * memory_savings_frac
        )
    else:
        replacement_pct = row.ssd_iso_capacity_pct * memory_savings_frac
    return dram_saved_pct - replacement_pct


def cost_table(ratio: float = DEFAULT_COMPRESSION_RATIO):
    """Figure 1 as rows of ``(gen, memory, compressed, ssd_iso)`` percents."""
    return [
        (
            row.generation,
            row.memory_pct,
            row.compressed_memory_pct(ratio),
            row.ssd_iso_capacity_pct,
        )
        for row in COST_TRENDS
    ]
