"""Analysis helpers: cost modelling, coldness profiling, reporting."""

from repro.analysis.coldness import ColdnessProfile, measure_coldness
from repro.analysis.costs import (
    COST_TRENDS,
    GenerationCost,
    compressed_memory_cost_pct,
    cost_table,
)
from repro.analysis.reporting import format_table
from repro.analysis.workingset import (
    ProvisioningEstimate,
    WorkingSetProfiler,
    miss_ratio_curve,
    required_cache_for_miss_ratio,
)

__all__ = [
    "COST_TRENDS",
    "ColdnessProfile",
    "GenerationCost",
    "compressed_memory_cost_pct",
    "cost_table",
    "format_table",
    "measure_coldness",
    "miss_ratio_curve",
    "required_cache_for_miss_ratio",
    "ProvisioningEstimate",
    "WorkingSetProfiler",
]
