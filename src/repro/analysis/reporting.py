"""Plain-text table formatting for the benchmark harness.

Every benchmark prints the rows/series its figure reports; this keeps
the formatting consistent and readable in pytest output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    Floats are shown with three significant decimals; everything else
    via ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has "
                f"{len(headers)} headers"
            )
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
