"""Exporting experiment metrics.

Benchmarks print paper-shaped tables; for downstream analysis (plots,
regressions across runs) the recorder's series can be exported as CSV —
one wide table on a common time axis, or one long (tidy) table.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional

from repro.sim.metrics import MetricsRecorder


def to_csv_long(
    metrics: MetricsRecorder, names: Optional[Iterable[str]] = None
) -> str:
    """Tidy CSV: one row per sample — ``series,time,value``."""
    wanted = list(names) if names is not None else sorted(metrics.names())
    out = io.StringIO()
    out.write("series,time,value\n")
    for name in wanted:
        series = metrics.series(name)
        for t, v in zip(series.times, series.values):
            out.write(f"{_csv_escape(name)},{t!r},{v!r}\n")
    return out.getvalue()


def to_csv_wide(
    metrics: MetricsRecorder, names: Iterable[str]
) -> str:
    """Wide CSV: one row per timestamp, one column per series.

    All requested series must share a common time axis (the host
    records every series each tick, so host metrics always do).
    """
    wanted = list(names)
    if not wanted:
        raise ValueError("to_csv_wide needs at least one series name")
    base = metrics.series(wanted[0])
    for name in wanted[1:]:
        series = metrics.series(name)
        if series.times != base.times:
            raise ValueError(
                f"series {name!r} is not on the same time axis as "
                f"{wanted[0]!r}; use to_csv_long instead"
            )
    out = io.StringIO()
    out.write("time," + ",".join(_csv_escape(n) for n in wanted) + "\n")
    columns = [metrics.series(name).values for name in wanted]
    for i, t in enumerate(base.times):
        row = ",".join(repr(col[i]) for col in columns)
        out.write(f"{t!r},{row}\n")
    return out.getvalue()


def _csv_escape(text: str) -> str:
    if "," in text or '"' in text or "\n" in text:
        return '"' + text.replace('"', '""') + '"'
    return text
