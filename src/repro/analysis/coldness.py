"""Memory-coldness measurement (Figure 2).

Replays the paper's characterisation: after letting a workload run long
enough for its access pattern to reach steady state, classify every page
by how recently it was touched — within 1, 2 or 5 minutes — with the
remainder counted as cold (the offloading opportunity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import Workload


@dataclass(frozen=True)
class ColdnessProfile:
    """Recency histogram of one workload's memory, as fractions."""

    used_1min: float
    used_2min: float
    used_5min: float
    cold: float

    @property
    def warm(self) -> float:
        return 1.0 - self.cold


def measure_coldness(workload: Workload, now: float) -> ColdnessProfile:
    """Classify the workload's pages by last-touch recency at ``now``.

    Offloaded pages count by the same rule — a page swapped out two
    minutes after its last touch is "cold" precisely because it has not
    been touched; placement does not affect recency.
    """
    pages = workload.pages
    if not pages:
        raise ValueError(
            f"workload {workload.profile.name!r} has no pages to profile"
        )
    buckets = [0, 0, 0, 0]
    for page in pages:
        age = now - page.last_access
        if age <= 60.0:
            buckets[0] += 1
        elif age <= 120.0:
            buckets[1] += 1
        elif age <= 300.0:
            buckets[2] += 1
        else:
            buckets[3] += 1
    total = len(pages)
    return ColdnessProfile(
        used_1min=buckets[0] / total,
        used_2min=buckets[1] / total,
        used_5min=buckets[2] / total,
        cold=buckets[3] / total,
    )
