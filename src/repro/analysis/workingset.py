"""Working-set profiling and miss-ratio curves.

Section 3.3: Senpai's continuous mild pressure "provides an accurate
workingset profile of the application over time. This allows
application developers to more precisely provision memory capacity for
their workloads." This module turns the simulator's observations into
that profile two ways:

* :class:`WorkingSetProfiler` — samples (footprint, pressure) over time
  and derives the *required* memory: the smallest footprint observed
  while the container's pressure stayed at or under the target.
* :func:`miss_ratio_curve` — converts the cgroup's refault
  reuse-distance histogram into the classic miss-ratio-vs-cache-size
  curve (Mattson-style): the probability that a file fault would have
  been a hit had the resident set been ``s`` pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.kernel.cgroup import Cgroup


@dataclass
class WorkingSetSample:
    """One observation of a container's footprint and health."""

    time: float
    footprint_bytes: int
    pressure: float  # normalised some-pressure over the last period


@dataclass
class ProvisioningEstimate:
    """The capacity recommendation a profile run produces."""

    required_bytes: int
    peak_bytes: int
    samples: int

    @property
    def overprovision_frac(self) -> float:
        """Share of the peak footprint the workload never needed."""
        if self.peak_bytes == 0:
            return 0.0
        return 1.0 - self.required_bytes / self.peak_bytes


class WorkingSetProfiler:
    """Accumulates footprint/pressure samples for one container."""

    def __init__(self, pressure_target: float = 1.0) -> None:
        """
        Args:
            pressure_target: normalised pressure (1.0 = Senpai's
                threshold) below which the workload counts as healthy.
        """
        self.pressure_target = pressure_target
        self.samples: List[WorkingSetSample] = []

    def record(
        self, time: float, footprint_bytes: int, pressure: float
    ) -> None:
        self.samples.append(
            WorkingSetSample(time, footprint_bytes, pressure)
        )

    def record_from_host(self, host, cgroup: str, now: float) -> None:
        """Convenience: sample a hosted container's resident footprint
        and its recorded Senpai pressure."""
        cg = host.mm.cgroup(cgroup)
        series = host.metrics.series(f"{cgroup}/senpai_pressure")
        pressure = series.last() if len(series) else 0.0
        self.record(now, cg.resident_bytes, pressure)

    def estimate(self) -> ProvisioningEstimate:
        """Derive the provisioning recommendation from the samples."""
        if not self.samples:
            raise ValueError("no samples recorded")
        healthy = [
            s.footprint_bytes
            for s in self.samples
            if s.pressure <= self.pressure_target
        ]
        peak = max(s.footprint_bytes for s in self.samples)
        required = min(healthy) if healthy else peak
        return ProvisioningEstimate(
            required_bytes=required,
            peak_bytes=peak,
            samples=len(self.samples),
        )


def miss_ratio_curve(
    cgroup: Cgroup,
) -> List[Tuple[int, float]]:
    """Miss-ratio curve from the cgroup's reuse-distance histogram.

    Returns ``(cache_size_pages, refault_fraction)`` points: the share
    of observed re-references whose reuse distance *exceeded* that cache
    size — i.e. the fraction that would still miss with a resident set
    of that size. Monotonically non-increasing in cache size.
    """
    hist = cgroup.reuse_distance_hist
    if not hist:
        return []
    total = sum(hist.values())
    buckets = sorted(hist)
    curve: List[Tuple[int, float]] = []
    for bucket in buckets:
        cache_pages = 1 << (bucket + 1)  # distances in this bucket fit
        misses_beyond = sum(
            count for b, count in hist.items() if b > bucket
        )
        curve.append((cache_pages, misses_beyond / total))
    return curve


def required_cache_for_miss_ratio(
    cgroup: Cgroup, target_miss_ratio: float
) -> Optional[int]:
    """Smallest cache size (pages) whose modelled miss ratio is at or
    below ``target_miss_ratio``; None when the curve never gets there."""
    if not 0.0 <= target_miss_ratio <= 1.0:
        raise ValueError(
            f"miss ratio must be in [0,1], got {target_miss_ratio}"
        )
    for cache_pages, miss_ratio in miss_ratio_curve(cgroup):
        if miss_ratio <= target_miss_ratio:
            return cache_pages
    return None
