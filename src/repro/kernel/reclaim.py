"""Reclaim: choosing and evicting cold pages.

Two balancing policies are provided (Section 3.4):

* :class:`LegacyReclaimPolicy` — the historic kernel behaviour. Heavily
  skewed toward file cache through heuristics; swap is only an emergency
  overflow once the file cache is nearly exhausted. The paper observed
  that substantial parts of a workload's file *working set* were
  reclaimed (causing refaults) before any cold anonymous page was
  considered.

* :class:`TmoReclaimPolicy` — the upstreamed rewrite. Reclaim comes
  exclusively from file cache as long as no refaults occur; once refaults
  appear, reclaim is balanced between file and anon according to the
  observed refault rate and swap-in rate, equalising the cost of paging
  across the two pools and minimising aggregate paging.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.backends.base import BackendFaultError
from repro.kernel.page import Page, PageKind, PageState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.cgroup import Cgroup
    from repro.kernel.mm import MemoryManager


#: CPU cost of examining one page during an LRU scan, in seconds. The
#: paper reports Senpai-driven reclaim at 0.05% of all CPU cycles; this
#: constant reproduces that order of magnitude at production scan rates.
SCAN_COST_S = 2e-6


class ReclaimPolicy(abc.ABC):
    """Decides how reclaim scanning is split between file and anon."""

    name: str = "abstract"

    @abc.abstractmethod
    def file_scan_fraction(
        self, cgroup: "Cgroup", swap_available: bool
    ) -> float:
        """Fraction of reclaim scanning aimed at the file LRU (0..1)."""


class TmoReclaimPolicy(ReclaimPolicy):
    """Refault/swap-in balanced reclaim (the TMO kernel change)."""

    name = "tmo"

    def __init__(self, refault_floor_per_s: float = 0.1) -> None:
        """
        Args:
            refault_floor_per_s: refault rate below which the file cache
                is considered to still hold only cold pages, so reclaim
                stays file-exclusive.
        """
        self.refault_floor_per_s = refault_floor_per_s

    def file_scan_fraction(
        self, cgroup: "Cgroup", swap_available: bool
    ) -> float:
        if not swap_available:
            return 1.0
        refaults = cgroup.refault_rate.rate
        swapins = cgroup.swapin_rate.rate
        if refaults < self.refault_floor_per_s:
            # No sign the file working set is being hit: file-only.
            return 1.0
        # Balance by paging cost: scan each pool inversely proportional
        # to the IO cost it is currently incurring.
        inv_file = 1.0 / (1.0 + refaults)
        inv_anon = 1.0 / (1.0 + swapins)
        return inv_file / (inv_file + inv_anon)


class LegacyReclaimPolicy(ReclaimPolicy):
    """The historic file-skewed balance (pre-TMO kernels)."""

    name = "legacy"

    def __init__(
        self,
        emergency_file_fraction: float = 0.05,
        emergency_file_scan: float = 0.4,
    ) -> None:
        """
        Args:
            emergency_file_fraction: once the resident file share drops
                below this, the kernel finally starts swapping.
            emergency_file_scan: the file-scan fraction used in that
                emergency regime.
        """
        self.emergency_file_fraction = emergency_file_fraction
        self.emergency_file_scan = emergency_file_scan

    def file_scan_fraction(
        self, cgroup: "Cgroup", swap_available: bool
    ) -> float:
        if not swap_available:
            return 1.0
        resident = cgroup.resident_bytes
        if resident == 0:
            return 1.0
        file_share = cgroup.file_bytes / resident
        if file_share > self.emergency_file_fraction:
            return 1.0
        return self.emergency_file_scan


@dataclass
class ReclaimOutcome:
    """What one reclaim invocation accomplished and what it cost."""

    requested_bytes: int
    reclaimed_bytes: int = 0
    reclaimed_file_bytes: int = 0
    reclaimed_anon_bytes: int = 0
    scanned_pages: int = 0
    #: CPU time spent scanning + compressing, attributed by the caller
    #: (app stall for direct reclaim, controller CPU for proactive).
    cpu_seconds: float = 0.0
    #: Synchronous stall time (e.g. waiting for writeback under direct
    #: reclaim); proactive reclaim keeps this at zero.
    stall_seconds: float = 0.0
    #: The reclaim hit the end of both LRUs before meeting the target.
    exhausted: bool = False

    def merge(self, other: "ReclaimOutcome") -> None:
        self.reclaimed_bytes += other.reclaimed_bytes
        self.reclaimed_file_bytes += other.reclaimed_file_bytes
        self.reclaimed_anon_bytes += other.reclaimed_anon_bytes
        self.scanned_pages += other.scanned_pages
        self.cpu_seconds += other.cpu_seconds
        self.stall_seconds += other.stall_seconds
        self.exhausted = self.exhausted or other.exhausted


class Reclaimer:
    """Executes reclaim against a cgroup's LRU lists.

    Owned by the :class:`~repro.kernel.mm.MemoryManager`; the policy
    object is swappable so experiments can A/B the legacy and TMO
    balancing on identical workloads.
    """

    #: Give up after scanning this multiple of the target page count.
    MAX_SCAN_FACTOR = 8

    def __init__(self, mm: "MemoryManager", policy: ReclaimPolicy) -> None:
        self.mm = mm
        self.policy = policy

    # ------------------------------------------------------------------

    def reclaim(
        self,
        cgroup: "Cgroup",
        nr_bytes: int,
        now: float,
        synchronous: bool = False,
        file_only: bool = False,
    ) -> ReclaimOutcome:
        """Reclaim up to ``nr_bytes`` from ``cgroup``'s subtree.

        Args:
            cgroup: root of the subtree to reclaim from. When it has
                children, the target is spread over leaves proportionally
                to their resident size.
            nr_bytes: reclaim target.
            synchronous: True for direct reclaim from the allocation
                path — writeback waits become stall time.
            file_only: skip the anon pool entirely (file-only deployment
                mode, or Senpai's SSD write-endurance regulation).
        """
        outcome = ReclaimOutcome(requested_bytes=nr_bytes)
        if nr_bytes <= 0:
            return outcome
        leaves = [cg for cg in cgroup.leaves() if cg.resident_bytes > 0]
        # memory.low is best-effort protection: protected cgroups are
        # skipped while any unprotected candidate remains.
        unprotected = [cg for cg in leaves if not cg.protected()]
        if unprotected:
            leaves = unprotected
        if not leaves:
            outcome.exhausted = True
            return outcome
        total_resident = sum(cg.resident_bytes for cg in leaves)
        for leaf in leaves:
            share = leaf.resident_bytes / total_resident
            target = int(math.ceil(nr_bytes * share))
            part = self._reclaim_leaf(leaf, target, now, synchronous, file_only)
            outcome.merge(part)
        outcome.exhausted = all(
            cg.resident_bytes == 0 for cg in leaves
        ) or outcome.reclaimed_bytes == 0
        return outcome

    # ------------------------------------------------------------------

    def _reclaim_leaf(
        self,
        cgroup: "Cgroup",
        nr_bytes: int,
        now: float,
        synchronous: bool,
        file_only: bool = False,
    ) -> ReclaimOutcome:
        outcome = ReclaimOutcome(requested_bytes=nr_bytes)
        page_size_bytes = cgroup.page_size_bytes
        target_pages = max(1, int(math.ceil(nr_bytes / page_size_bytes)))
        swap_available = (not file_only) and self.mm.swap_available(page_size_bytes)
        file_frac = self.policy.file_scan_fraction(cgroup, swap_available)

        # Weighted round-robin between the two pools via an accumulator.
        file_credit = 0.0
        scan_budget = self.MAX_SCAN_FACTOR * target_pages
        reclaimed_pages = 0
        while reclaimed_pages < target_pages and scan_budget > 0:
            file_credit += file_frac
            if file_credit >= 1.0 and len(cgroup.lru[PageKind.FILE]) > 0:
                kind = PageKind.FILE
                file_credit -= 1.0
            elif swap_available and len(cgroup.lru[PageKind.ANON]) > 0:
                kind = PageKind.ANON
            elif len(cgroup.lru[PageKind.FILE]) > 0:
                kind = PageKind.FILE
            else:
                outcome.exhausted = True
                break

            page, scans = self._isolate_cold_page(cgroup, kind)
            scan_budget -= max(1, scans)
            outcome.scanned_pages += max(1, scans)
            cgroup.vmstat.pgscan += max(1, scans)
            if page is None:
                continue
            evicted = self._evict(cgroup, page, now, synchronous, outcome)
            if evicted:
                reclaimed_pages += 1
            elif kind is PageKind.ANON:
                # Swap filled up mid-reclaim: stop considering anon.
                swap_available = False
                file_frac = 1.0

        outcome.cpu_seconds += outcome.scanned_pages * SCAN_COST_S
        return outcome

    def _isolate_cold_page(self, cgroup: "Cgroup", kind: PageKind):
        """Pull one evictable page off the inactive tail.

        Returns ``(page_or_None, pages_scanned)``. Handles deactivation
        of an oversized active list and second chances for referenced
        pages.
        """
        lru = cgroup.lru[kind]
        scans = 0
        # Refill the inactive list when it is empty or undersized.
        while len(lru.inactive) == 0 and len(lru.active) > 0:
            demoted = lru.deactivate_one()
            scans += 1
            cgroup.vmstat.pgdeactivate += 1
            if scans > len(lru.active) + 1:
                break
            if demoted is None:
                continue
        if lru.needs_deactivation():
            if lru.deactivate_one() is not None:
                cgroup.vmstat.pgdeactivate += 1
            scans += 1
        page, evictable = lru.scan_tail()
        scans += 1
        if page is None or not evictable:
            if page is not None:
                cgroup.vmstat.pgactivate += 1
            return None, scans
        return page, scans

    def _evict(
        self,
        cgroup: "Cgroup",
        page: Page,
        now: float,
        synchronous: bool,
        outcome: ReclaimOutcome,
    ) -> bool:
        """Evict an isolated page to its backend. Returns success.

        On failure (offload backend full, or a transient device fault
        on swap-out / dirty writeback) the page is put back on its LRU
        and the caller falls back to the other pool.
        """
        page_size_bytes = cgroup.page_size_bytes
        if page.kind is PageKind.FILE:
            if page.dirty:
                # Write back *before* any eviction bookkeeping so a
                # device fault leaves the page fully intact (dirty,
                # resident, on its LRU) for a later pass to retry.
                self.mm.fs_op_count += 1
                try:
                    latency = self.mm.fs.store(
                        page_size_bytes, page.compressibility, now
                    )
                except BackendFaultError:
                    self.mm.fs_fault_count += 1
                    cgroup.lru[PageKind.FILE].insert_active(page)
                    return False
                cgroup.vmstat.pgwriteback += 1
                page.dirty = False
                if synchronous:
                    outcome.stall_seconds += latency
            stamp = cgroup.shadow.record_eviction(page.page_id)
            page.shadow_stamp = stamp
            page.state = PageState.EVICTED
            cgroup.vmstat.workingset_evict += 1
            cgroup.uncharge(PageKind.FILE, page_size_bytes)
            outcome.reclaimed_file_bytes += page_size_bytes
        else:
            cpu_cost = self.mm.swap_out(page, now)
            if cpu_cost is None:
                # Backend full: put the page back; it stays resident.
                cgroup.lru[PageKind.ANON].insert_active(page)
                return False
            outcome.cpu_seconds += cpu_cost
            cgroup.uncharge(PageKind.ANON, page_size_bytes)
            cgroup.swap_bytes += page_size_bytes if page.state is PageState.SWAPPED else 0
            cgroup.zswap_bytes += (
                page_size_bytes if page.state is PageState.ZSWAPPED else 0
            )
            cgroup.vmstat.pswpout += 1
            outcome.reclaimed_anon_bytes += page_size_bytes

        cgroup.vmstat.pgsteal += 1
        outcome.reclaimed_bytes += page_size_bytes
        return True
