"""Idle-page tracking and page-age histograms.

The cold-page detectors the paper positions itself against (Section 6):
idle-bit scanning [10, 20] and g-swap's page-age histograms [18]. TMO
itself deliberately does *not* scan pages — it lets LRU reclaim find
cold memory — but the offline-profiling comparator (and the Figure 2
characterisation methodology) needs an explicit scanner, so the
simulator provides one.

The scanner charges a CPU cost per page examined, reproducing the
paper's observation that scan overhead grows with memory size, whereas
TMO's reclaim cost scales only with the paging rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.kernel.mm import MemoryManager

#: CPU seconds to test-and-clear one page's idle bit.
IDLE_SCAN_COST_S = 0.5e-6

#: Default histogram bucket edges, in seconds of idleness.
DEFAULT_AGE_BUCKETS_S = (60.0, 120.0, 300.0, 900.0, 3600.0)


@dataclass
class AgeHistogram:
    """Counts of resident pages by idle age.

    ``counts[i]`` holds pages with ``edges[i-1] <= age < edges[i]``;
    the final bucket is everything at least as old as the last edge.
    """

    edges: Sequence[float]
    counts: List[int] = field(default_factory=list)
    total_pages: int = 0

    def __post_init__(self) -> None:
        if list(self.edges) != sorted(self.edges):
            raise ValueError(f"bucket edges must ascend: {self.edges}")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def add(self, age_s: float) -> None:
        for i, edge in enumerate(self.edges):
            if age_s < edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total_pages += 1

    def fraction_older_than(self, age_s: float) -> float:
        """Share of pages idle for at least ``age_s`` (must be an edge)."""
        if age_s not in self.edges:
            raise ValueError(
                f"{age_s} is not a bucket edge of {list(self.edges)}"
            )
        index = list(self.edges).index(age_s)
        if self.total_pages == 0:
            return 0.0
        return sum(self.counts[index + 1:]) / self.total_pages


class IdlePageTracker:
    """Scans a cgroup's resident pages and builds age histograms."""

    def __init__(self, mm: MemoryManager) -> None:
        self.mm = mm
        #: Total CPU seconds consumed by scanning (the cost TMO avoids).
        self.scan_cpu_seconds = 0.0
        self.pages_scanned = 0

    def _resident_ages(self, cgroup_name: str, now: float) -> np.ndarray:
        """Idle ages of the cgroup's resident pages, in LRU-list order.

        The cgroup's active/inactive lists hold exactly its resident
        pages, so one pass over them replaces the old filter over every
        page the memory manager has ever allocated.
        """
        cgroup = self.mm.cgroup(cgroup_name)
        ages = np.fromiter(
            (
                page.last_access
                for lruset in cgroup.lru.values()
                for lru in (lruset.active, lruset.inactive)
                for page in lru
            ),
            dtype=np.float64,
        )
        np.subtract(now, ages, out=ages)
        np.maximum(ages, 0.0, out=ages)
        return ages

    def _charge(self, npages: int) -> None:
        """Charge the scan cost for ``npages`` inspected pages."""
        self.pages_scanned += npages
        self.scan_cpu_seconds += npages * IDLE_SCAN_COST_S

    def scan(
        self,
        cgroup_name: str,
        now: float,
        buckets: Sequence[float] = DEFAULT_AGE_BUCKETS_S,
    ) -> AgeHistogram:
        """One full scan of the cgroup's resident pages."""
        edges = tuple(buckets)
        ages = self._resident_ages(cgroup_name, now)
        self._charge(len(ages))
        # ``add()`` puts an age in the first bucket whose edge is still
        # greater; searchsorted(side="right") computes the same index
        # (the count of edges <= age) for every page at once.
        bucket_index = np.searchsorted(np.asarray(edges), ages, side="right")
        counts = np.bincount(bucket_index, minlength=len(edges) + 1)
        return AgeHistogram(
            edges=edges,
            counts=counts.tolist(),
            total_pages=len(ages),
        )

    def cold_bytes(
        self, cgroup_name: str, now: float, age_threshold_s: float
    ) -> int:
        """Resident bytes idle for at least ``age_threshold_s``.

        The offline-profiling estimate a g-swap-style system derives its
        static offload target from. Like :meth:`scan`, the cost is
        charged for every resident page *inspected* — the scanner has to
        read each page's idle bit to learn the page is warm — not only
        for the pages that turn out cold.
        """
        ages = self._resident_ages(cgroup_name, now)
        self._charge(len(ages))
        return int(np.count_nonzero(ages >= age_threshold_s)) * (
            self.mm.page_size_bytes
        )
