"""Per-cgroup memory event counters (the kernel's memory.stat / vmstat).

These are exactly the "fragile low-level metrics" the paper contrasts PSI
against — but the kernel's reclaim balancing (and g-swap's promotion-rate
controller) are built on them, so the simulator maintains them faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class VmStat:
    """Monotonic event counters for one memory-control domain."""

    #: Page faults that had to read from a backend (major faults).
    pgmajfault: int = 0
    #: Anonymous pages swapped in / out (either swap or zswap backend).
    pswpin: int = 0
    pswpout: int = 0
    #: File pages read from the filesystem (first access or after evict).
    pgpgin_file: int = 0
    #: Refaults: file pages faulted back while still in the working set
    #: (reuse distance below resident size). The signal that drives TMO's
    #: reclaim balancing and the memory-PSI refault accounting.
    workingset_refault: int = 0
    #: File pages evicted with a shadow entry installed.
    workingset_evict: int = 0
    #: Reclaim scan activity.
    pgscan: int = 0
    pgsteal: int = 0
    pgactivate: int = 0
    pgdeactivate: int = 0
    #: Dirty file pages written back during eviction.
    pgwriteback: int = 0
    #: Direct-reclaim invocations from the allocation path.
    direct_reclaim: int = 0

    def snapshot(self) -> "VmStat":
        """A copy of the current counter values."""
        return VmStat(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, earlier: "VmStat") -> "VmStat":
        """Counter increments since ``earlier`` was snapshotted."""
        return VmStat(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def add(self, other: "VmStat") -> None:
        """Accumulate ``other``'s counts into this one (fleet aggregation)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class RateEstimator:
    """Exponentially smoothed event rate from a monotonic counter.

    The kernel's reclaim cost balancing uses decaying counters; this is
    the same idea expressed as an events-per-second EMA.
    """

    window_s: float = 30.0
    rate: float = 0.0
    _last_count: int = 0

    def update(self, count: int, dt: float) -> float:
        """Fold the counter's growth over ``dt`` seconds into the rate."""
        if dt <= 0:
            return self.rate
        increment = count - self._last_count
        self._last_count = count
        instantaneous = max(0.0, increment / dt)
        alpha = min(1.0, dt / self.window_s)
        self.rate += (instantaneous - self.rate) * alpha
        return self.rate
