"""The cgroup memory-control hierarchy.

Containers in TMO are cgroups: each has hierarchical memory accounting,
its own LRU lists, shadow-entry clock, vmstat counters, and the control
surface Senpai drives (``memory.max`` and the stateless ``memory.reclaim``
knob the paper added upstream).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.kernel.lru import LruSet
from repro.kernel.page import PageKind
from repro.kernel.shadow import ShadowMap
from repro.kernel.vmstat import RateEstimator, VmStat


class Cgroup:
    """One memory-control domain.

    Byte accounting is *local* (pages charged directly to this cgroup);
    the hierarchical ``current_bytes`` view sums the subtree, matching
    cgroup2's ``memory.current`` semantics.
    """

    def __init__(
        self,
        name: str,
        page_size_bytes: int,
        parent: Optional["Cgroup"] = None,
        compressibility: float = 3.0,
    ) -> None:
        if page_size_bytes <= 0:
            raise ValueError(f"page_size_bytes must be positive, got {page_size_bytes}")
        self.name = name
        self.page_size_bytes = page_size_bytes
        self.parent = parent
        self.children: Dict[str, Cgroup] = {}
        if parent is not None:
            if name in parent.children:
                raise ValueError(
                    f"cgroup {parent.name!r} already has a child {name!r}"
                )
            parent.children[name] = self

        #: Hard limit on hierarchical usage (memory.max); None = unlimited.
        self.memory_max: Optional[int] = None
        #: Best-effort protection (memory.low): while hierarchical usage
        #: is below this, reclaim skips the cgroup unless every
        #: candidate is protected. Containers with stringent SLOs get a
        #: floor this way (Section 1's container-priority handling).
        self.memory_low: int = 0
        #: Cap on this cgroup's offloaded bytes (memory.swap.max);
        #: None = unlimited. Lets operators exclude containers from
        #: swap entirely or bound their backend footprint.
        self.swap_max: Optional[int] = None
        #: Default zstd compression ratio for pages charged here.
        self.compressibility = compressibility

        # Local resident accounting, in bytes.
        self.anon_bytes = 0
        self.file_bytes = 0
        # Offloaded (logical, uncompressed) bytes by destination.
        self.swap_bytes = 0
        self.zswap_bytes = 0

        self.lru: Dict[PageKind, LruSet] = {
            PageKind.ANON: LruSet(PageKind.ANON, name),
            PageKind.FILE: LruSet(PageKind.FILE, name),
        }
        self.shadow = ShadowMap()
        self.vmstat = VmStat()

        # Smoothed event rates feeding TMO's reclaim balance.
        self.refault_rate = RateEstimator()
        self.swapin_rate = RateEstimator()

        #: Reuse-distance histogram (log2 buckets of pages), recorded
        #: for every fault against a page with a shadow entry.
        self.reuse_distance_hist: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # accounting

    @property
    def resident_bytes(self) -> int:
        """Local resident bytes (anon + file)."""
        return self.anon_bytes + self.file_bytes

    @property
    def resident_pages(self) -> int:
        return self.resident_bytes // self.page_size_bytes

    def current_bytes(self) -> int:
        """Hierarchical usage: local plus all descendants (memory.current)."""
        total = self.resident_bytes
        for child in self.children.values():
            total += child.current_bytes()
        return total

    def offloaded_bytes(self) -> int:
        """Logical bytes this cgroup holds in offload backends."""
        return self.swap_bytes + self.zswap_bytes

    def charge(self, kind: PageKind, nbytes: int) -> None:
        """Charge resident bytes for a page entering DRAM."""
        if kind is PageKind.ANON:
            self.anon_bytes += nbytes
        else:
            self.file_bytes += nbytes

    def uncharge(self, kind: PageKind, nbytes: int) -> None:
        """Release resident bytes for a page leaving DRAM."""
        if kind is PageKind.ANON:
            self.anon_bytes -= nbytes
            if self.anon_bytes < 0:
                raise RuntimeError(
                    f"cgroup {self.name!r}: anon accounting went negative"
                )
        else:
            self.file_bytes -= nbytes
            if self.file_bytes < 0:
                raise RuntimeError(
                    f"cgroup {self.name!r}: file accounting went negative"
                )

    # ------------------------------------------------------------------
    # hierarchy helpers

    def walk(self) -> Iterator["Cgroup"]:
        """This cgroup and all descendants, depth-first."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def leaves(self) -> List["Cgroup"]:
        """Descendant cgroups that have no children (where pages live)."""
        return [cg for cg in self.walk() if not cg.children]

    def ancestors(self) -> Iterator["Cgroup"]:
        """Chain from this cgroup's parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def limit_headroom(self) -> Optional[int]:
        """Tightest remaining headroom along the ancestry (None = unlimited).

        The charge path must respect every ancestor's ``memory.max``.
        """
        headroom: Optional[int] = None
        node: Optional[Cgroup] = self
        while node is not None:
            if node.memory_max is not None:
                room = node.memory_max - node.current_bytes()
                headroom = room if headroom is None else min(headroom, room)
            node = node.parent
        return headroom

    def protected(self) -> bool:
        """Whether memory.low currently shields this cgroup from reclaim."""
        return self.memory_low > 0 and self.current_bytes() <= self.memory_low

    # ------------------------------------------------------------------
    # rate maintenance

    def update_rates(self, dt: float) -> None:
        """Refresh the refault / swap-in rate EMAs from vmstat."""
        self.refault_rate.update(self.vmstat.workingset_refault, dt)
        self.swapin_rate.update(self.vmstat.pswpin, dt)

    # ------------------------------------------------------------------
    # reuse-distance profiling (for miss-ratio curves)

    def record_reuse_distance(self, distance: int) -> None:
        """Bucket one refault's reuse distance (log2 buckets).

        The histogram feeds :mod:`repro.analysis.workingset`'s
        miss-ratio-curve estimate — the data behind Senpai's claim of
        providing "an accurate workingset profile of the application
        over time" (Section 3.3).
        """
        if distance < 1:
            raise ValueError(f"reuse distance must be >= 1, got {distance}")
        bucket = distance.bit_length() - 1  # log2 bucket
        self.reuse_distance_hist[bucket] = (
            self.reuse_distance_hist.get(bucket, 0) + 1
        )

    def __repr__(self) -> str:
        return (
            f"Cgroup(name={self.name!r}, resident={self.resident_bytes}, "
            f"swap={self.swap_bytes}, zswap={self.zswap_bytes})"
        )
