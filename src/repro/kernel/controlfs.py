"""A cgroupfs-style control-file façade.

The real Senpai is a daemon that reads and writes files under
``/sys/fs/cgroup``. This module exposes the simulated kernel through
the same surface — string reads and writes against paths like
``workload.slice/app/memory.reclaim`` — so controllers can be written
exactly as their production counterparts are (see
:class:`repro.core.daemon.SenpaiDaemon`).

Supported files per cgroup:

* ``memory.current`` (r)  — hierarchical usage in bytes.
* ``memory.max`` (rw)     — ``max`` or a byte limit (K/M/G suffixes).
* ``memory.reclaim`` (w)  — proactive reclaim: ``<bytes> [swappiness=0]``;
  ``swappiness=0`` restricts reclaim to the file LRU.
* ``memory.stat`` (r)     — usage breakdown plus vmstat counters.
* ``memory.pressure`` / ``io.pressure`` / ``cpu.pressure`` (rw) —
  reads render the kernel format; writes register PSI triggers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.kernel.mm import MemoryManager
from repro.psi.group import format_pressure_file
from repro.psi.tracker import PsiSystem
from repro.psi.trigger import PsiTrigger, TriggerSpec
from repro.psi.types import Resource

_SUFFIXES = {"": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30,
             "T": 1 << 40}

_PRESSURE_FILES = {
    "memory.pressure": Resource.MEMORY,
    "io.pressure": Resource.IO,
    "cpu.pressure": Resource.CPU,
}


def parse_bytes(text: str) -> int:
    """Parse ``4096``, ``100M``, ``2G`` ... into bytes."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([KMGT]?)i?B?\s*",
                         text, re.IGNORECASE)
    if not match:
        raise ValueError(f"cannot parse byte size {text!r}")
    value, suffix = match.groups()
    return int(float(value) * _SUFFIXES[suffix.upper()])


class ControlFileError(OSError):
    """Raised for unknown paths, bad values, or read/write mismatches."""


@dataclass
class ControlFsFaultState:
    """Telemetry-fault seam of the control-file surface.

    Mutated by a :class:`~repro.faults.injector.FaultInjector` (or a
    test) to model the failure modes a file-reading daemon actually
    sees in production: stuck pressure files, corrupted reads, and
    EIO/EBUSY on the control surface itself.

    Attributes:
        frozen_pressure: pressure-file reads return the last text each
            file served before the freeze (counters appear stuck).
        malformed_pressure: pressure-file reads return garbage that no
            parser should accept.
        error_on_read: every read raises :class:`ControlFileError`.
        error_on_write: every write raises :class:`ControlFileError`.
    """

    frozen_pressure: bool = False
    malformed_pressure: bool = False
    error_on_read: bool = False
    error_on_write: bool = False

    def clear(self) -> None:
        """Reset to the healthy defaults."""
        self.frozen_pressure = False
        self.malformed_pressure = False
        self.error_on_read = False
        self.error_on_write = False

    @property
    def healthy(self) -> bool:
        return not (
            self.frozen_pressure
            or self.malformed_pressure
            or self.error_on_read
            or self.error_on_write
        )


#: What a malformed pressure file serves: a truncated line with a bad
#: field, enough to defeat any reasonable parser.
_MALFORMED_PRESSURE_TEXT = "some avg10=NaN avg60= avg300=0.00 total=garbage"


class ControlFs:
    """String-level access to the cgroup control surface."""

    def __init__(self, mm: MemoryManager, psi: PsiSystem) -> None:
        self.mm = mm
        self.psi = psi
        self._triggers: Dict[Tuple[str, str], PsiTrigger] = {}
        # (cgroup, file) -> "<cgroup>/<file>", formatted at trigger
        # registration so poll() never builds strings per tick (TMO018).
        self._trigger_paths: Dict[Tuple[str, str], str] = {}
        #: Telemetry-fault seam; healthy by default.
        self.faults = ControlFsFaultState()
        #: Last text served per pressure file, for the frozen mode.
        self._pressure_cache: Dict[Tuple[str, str], str] = {}

    # ------------------------------------------------------------------

    def _split(self, path: str) -> Tuple[str, str]:
        """Split ``<cgroup-path>/<file>`` and validate the cgroup."""
        path = path.strip("/")
        if "/" in path:
            cgroup_name, filename = path.rsplit("/", 1)
        else:
            cgroup_name, filename = "root", path
        # Accept both full slash paths and bare cgroup names: the
        # simulator's cgroup registry is flat, keyed by name.
        cgroup_name = cgroup_name.rsplit("/", 1)[-1]
        try:
            self.mm.cgroup(cgroup_name)
        except KeyError:
            raise ControlFileError(
                f"no such cgroup: {cgroup_name!r}"
            ) from None
        return cgroup_name, filename

    # ------------------------------------------------------------------

    def read(self, path: str, now: float) -> str:
        """Read one control file; returns its text content."""
        cgroup_name, filename = self._split(path)
        if self.faults.error_on_read:
            raise ControlFileError(
                f"read({path!r}): injected control-surface error"
            )
        cgroup = self.mm.cgroup(cgroup_name)

        if filename == "memory.current":
            return str(cgroup.current_bytes())
        if filename == "memory.max":
            return "max" if cgroup.memory_max is None else str(
                cgroup.memory_max
            )
        if filename == "memory.low":
            return str(cgroup.memory_low)
        if filename == "memory.swap.max":
            return "max" if cgroup.swap_max is None else str(cgroup.swap_max)
        if filename == "memory.stat":
            vm = cgroup.vmstat
            lines = [
                f"anon {cgroup.anon_bytes}",
                f"file {cgroup.file_bytes}",
                f"swapped {cgroup.swap_bytes}",
                f"zswapped {cgroup.zswap_bytes}",
                f"pgscan {vm.pgscan}",
                f"pgsteal {vm.pgsteal}",
                f"pswpin {vm.pswpin}",
                f"pswpout {vm.pswpout}",
                f"workingset_refault {vm.workingset_refault}",
                f"workingset_evict {vm.workingset_evict}",
                f"pgmajfault {vm.pgmajfault}",
            ]
            return "\n".join(lines)
        if filename in _PRESSURE_FILES:
            if self.faults.malformed_pressure:
                return _MALFORMED_PRESSURE_TEXT
            key = (cgroup_name, filename)
            if self.faults.frozen_pressure and key in self._pressure_cache:
                return self._pressure_cache[key]
            text = format_pressure_file(
                self.psi.group(cgroup_name), _PRESSURE_FILES[filename], now
            )
            self._pressure_cache[key] = text
            return text
        raise ControlFileError(f"unknown control file {filename!r}")

    # ------------------------------------------------------------------

    def write(self, path: str, value: str, now: float) -> None:
        """Write one control file."""
        cgroup_name, filename = self._split(path)
        if self.faults.error_on_write:
            raise ControlFileError(
                f"write({path!r}): injected control-surface error"
            )

        if filename == "memory.max":
            limit = None if value.strip() == "max" else parse_bytes(value)
            self.mm.set_memory_max(cgroup_name, limit, now)
            return
        if filename == "memory.low":
            value = value.strip()
            self.mm.cgroup(cgroup_name).memory_low = (
                0 if value in ("0", "") else parse_bytes(value)
            )
            return
        if filename == "memory.swap.max":
            value = value.strip()
            self.mm.cgroup(cgroup_name).swap_max = (
                None if value == "max" else parse_bytes(value)
            )
            return
        if filename == "memory.reclaim":
            parts = value.split()
            if not parts:
                raise ControlFileError("memory.reclaim needs a byte count")
            nr_bytes = parse_bytes(parts[0])
            file_only = False
            for option in parts[1:]:
                if option == "swappiness=0":
                    file_only = True
                elif option.startswith("swappiness="):
                    file_only = False
                else:
                    raise ControlFileError(
                        f"unknown memory.reclaim option {option!r}"
                    )
            self.mm.memory_reclaim(
                cgroup_name, nr_bytes, now, file_only=file_only
            )
            return
        if filename in _PRESSURE_FILES:
            spec = TriggerSpec.parse(_PRESSURE_FILES[filename], value)
            group = self.psi.group(cgroup_name)
            trigger = PsiTrigger(group, spec, now)
            self._triggers[(cgroup_name, filename)] = trigger
            self._trigger_paths[(cgroup_name, filename)] = (
                f"{cgroup_name}/{filename}"
            )
            return
        raise ControlFileError(
            f"control file {filename!r} is not writable"
        )

    # ------------------------------------------------------------------

    def trigger(self, path: str) -> PsiTrigger:
        """The trigger registered by the last write to a pressure file."""
        cgroup_name, filename = self._split(path)
        try:
            return self._triggers[(cgroup_name, filename)]
        except KeyError:
            raise ControlFileError(
                f"no trigger registered on {path!r}"
            ) from None

    def poll(self, now: float):
        """Update all registered triggers; return fired (path-keyed)."""
        fired = []
        for key, trigger in self._triggers.items():
            if trigger.update(now):
                fired.append(self._trigger_paths[key])
        return fired
