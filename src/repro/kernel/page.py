"""Pages: the unit of memory the kernel manages.

Each simulated page stands for ``page_size_bytes`` bytes of one cgroup's memory
(the scale knob that keeps large hosts tractable — see DESIGN.md). A page
is either anonymous (swap-backed) or file-backed, and moves through the
states below as it is allocated, reclaimed and faulted back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class PageKind(enum.Enum):
    """The two memory categories of Section 2.4."""

    ANON = "anon"
    FILE = "file"


class PageState(enum.Enum):
    """Where a page's data currently lives."""

    #: In DRAM, on one of the cgroup's LRU lists.
    RESIDENT = "resident"
    #: Anonymous data written out to SSD swap.
    SWAPPED = "swapped"
    #: Anonymous data compressed into the zswap pool (still DRAM, but
    #: accounted to the pool, not the cgroup's resident set).
    ZSWAPPED = "zswapped"
    #: File data evicted from the page cache; a shadow entry may remain.
    EVICTED = "evicted"
    #: File data never (or no longer) cached and with no shadow history.
    ABSENT = "absent"


@dataclass
class Page:
    """One page of a cgroup's memory.

    Attributes:
        page_id: unique id within the owning memory manager.
        kind: anonymous or file-backed.
        cgroup: name of the owning cgroup.
        state: current placement (see :class:`PageState`).
        active: True when on the active LRU list (meaningful only while
            RESIDENT).
        referenced: the software reference bit — set on access, cleared
            by the reclaim scan; a referenced inactive page gets a second
            chance (re-activation) instead of eviction.
        dirty: file pages only; a dirty page needs writeback on eviction.
        compressibility: zstd compression ratio of this page's data.
        last_access: virtual time of the most recent touch.
        shadow_stamp: eviction-clock value stored when the page's shadow
            entry was created (file pages only; None when no shadow).
    """

    page_id: int
    kind: PageKind
    cgroup: str
    state: PageState = PageState.RESIDENT
    active: bool = False
    referenced: bool = False
    dirty: bool = False
    compressibility: float = 3.0
    last_access: float = field(default=0.0)
    shadow_stamp: Optional[int] = None

    @property
    def resident(self) -> bool:
        return self.state is PageState.RESIDENT

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, {self.kind.value}, {self.state.value},"
            f" cgroup={self.cgroup!r}, active={self.active})"
        )
