"""The memory-management front end.

:class:`MemoryManager` ties together the cgroup tree, the LRU/reclaim
machinery, the offload backends and the physical DRAM budget of one host.
It exposes the operations workloads and controllers exercise:

* page allocation and touching (the fault path),
* the ``memory.max`` and ``memory.reclaim`` control files,
* direct reclaim when charges exceed a limit or DRAM runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.base import BackendFaultError, OffloadBackend
from repro.backends.filesystem import FilesystemBackend
from repro.backends.nvm import FarMemoryFullError
from repro.backends.ssd import SwapFullError
from repro.backends.zswap import ZswapPoolFullError
from repro.kernel.cgroup import Cgroup
from repro.kernel.page import Page, PageKind, PageState
from repro.kernel.reclaim import (
    Reclaimer,
    ReclaimOutcome,
    ReclaimPolicy,
    TmoReclaimPolicy,
)

#: CPU cost of submitting one async swap-out write, in seconds.
_SWAP_SUBMIT_COST_S = 5e-6

#: Stall charged to a task whose fault could not be resolved because the
#: backend errored: the kernel's retry path (wait, re-queue, re-issue)
#: costs on the order of an IO timeout slice. The page is untouched and
#: the next access retries.
_FAULT_RETRY_STALL_S = 2e-3


class OutOfMemoryError(RuntimeError):
    """Raised when a charge cannot be satisfied even after reclaim."""


@dataclass
class FaultResult:
    """Outcome of touching one page.

    Attributes:
        page: the touched page.
        event: one of ``hit``, ``swapin``, ``zswapin``, ``refault``,
            ``file_read``, ``swapin_error``, ``fileread_error`` — what
            the access turned into. The ``*_error`` events mean a
            backend fault interrupted resolution: the page's state is
            unchanged and the next access retries.
        stall_seconds: total delay charged to the touching task.
        memstall: the delay counts toward memory pressure.
        iostall: the delay counts toward IO pressure.
    """

    page: Page
    event: str
    stall_seconds: float = 0.0
    memstall: bool = False
    iostall: bool = False


class MemoryManager:
    """All memory-management state of one simulated host."""

    def __init__(
        self,
        ram_bytes: int,
        page_size_bytes: int,
        fs: FilesystemBackend,
        swap_backend: Optional[OffloadBackend] = None,
        policy: Optional[ReclaimPolicy] = None,
    ) -> None:
        """
        Args:
            ram_bytes: physical DRAM of the host.
            page_size_bytes: bytes represented by one simulated page (the
                granularity scale knob; all rates are in bytes/sec so
                results are granularity-independent).
            fs: the filesystem backend serving file pages.
            swap_backend: where anonymous pages offload to — an
                :class:`~repro.backends.ssd.SsdSwapBackend`, a
                :class:`~repro.backends.zswap.ZswapBackend`, or None for
                file-only mode (Section 5.1's first deployment phase).
            policy: reclaim balancing policy; TMO's by default.
        """
        if ram_bytes <= 0 or page_size_bytes <= 0:
            raise ValueError("ram_bytes and page_size_bytes must be positive")
        if ram_bytes < page_size_bytes:
            raise ValueError("host RAM smaller than one page")
        self.ram_bytes = ram_bytes
        self.page_size_bytes = page_size_bytes
        self.fs = fs
        self.swap_backend = swap_backend
        self.root = Cgroup("root", page_size_bytes=page_size_bytes)
        self._cgroups: Dict[str, Cgroup] = {"root": self.root}
        self._pages: Dict[int, Page] = {}
        self._next_page_id = 0
        self.reclaimer = Reclaimer(self, policy or TmoReclaimPolicy())
        #: CPU seconds consumed by proactive (controller-driven) reclaim.
        self.proactive_cpu_seconds = 0.0
        #: Stall charged per backend-fault retry (tunable for tests).
        self.retry_stall_s = _FAULT_RETRY_STALL_S
        #: Swap-backend operation attempts and transient-fault failures.
        #: Controllers (Senpai's circuit breaker) diff these between
        #: polls to detect a failing offload backend.
        self.swap_op_count = 0
        self.swap_fault_count = 0
        #: Same counters for the filesystem device.
        self.fs_op_count = 0
        self.fs_fault_count = 0
        #: kswapd watermarks: background reclaim starts when free memory
        #: drops under ``low`` and works back up to ``high``. Keeps the
        #: allocation path out of (blocking) direct reclaim for as long
        #: as possible, like the kernel's background reclaim daemon.
        self.kswapd_low_frac = 0.02
        self.kswapd_high_frac = 0.04
        #: Cumulative bytes reclaimed in the background.
        self.kswapd_reclaimed_bytes = 0

    # ------------------------------------------------------------------
    # cgroup management

    def create_cgroup(
        self,
        name: str,
        parent: str = "root",
        compressibility: float = 3.0,
    ) -> Cgroup:
        """Create a cgroup under ``parent``."""
        if name in self._cgroups:
            raise ValueError(f"cgroup {name!r} already exists")
        cgroup = Cgroup(
            name,
            page_size_bytes=self.page_size_bytes,
            parent=self._cgroups[parent],
            compressibility=compressibility,
        )
        self._cgroups[name] = cgroup
        return cgroup

    def cgroup(self, name: str) -> Cgroup:
        return self._cgroups[name]

    def cgroups(self) -> List[Cgroup]:
        return list(self._cgroups.values())

    def pages(self, cgroup_name: Optional[str] = None) -> List[Page]:
        """All live pages, optionally filtered to one cgroup.

        Used by profiling tools (idle-page tracking, coldness
        histograms); the fault path never iterates this.
        """
        if cgroup_name is None:
            return list(self._pages.values())
        return [p for p in self._pages.values() if p.cgroup == cgroup_name]

    # ------------------------------------------------------------------
    # capacity accounting

    @property
    def zswap_pool_bytes(self) -> int:
        if self.swap_backend is None:
            return 0
        return self.swap_backend.dram_overhead_bytes

    def used_bytes(self) -> int:
        """Physical DRAM in use: resident pages plus the zswap pool."""
        return self.root.current_bytes() + self.zswap_pool_bytes

    def free_bytes(self) -> int:
        return self.ram_bytes - self.used_bytes()

    def swap_available(self, nbytes: int) -> bool:
        """Whether the swap backend can absorb ``nbytes`` more."""
        backend = self.swap_backend
        if backend is None:
            return False
        free = getattr(backend, "free_bytes", None)
        if free is not None and free < nbytes:
            return False
        max_pool = getattr(backend, "max_pool_bytes", None)
        if max_pool is not None and backend.dram_overhead_bytes + nbytes > max_pool:
            return False
        return True

    # ------------------------------------------------------------------
    # control files

    def set_memory_max(
        self, cgroup_name: str, limit: Optional[int], now: float
    ) -> ReclaimOutcome:
        """Write ``memory.max``: lowering below usage reclaims the excess.

        The write blocks (synchronously reclaims) like the kernel's —
        this statefulness is exactly what made the early limit-based
        Senpai problematic (Section 3.3).
        """
        cgroup = self._cgroups[cgroup_name]
        cgroup.memory_max = limit
        outcome = ReclaimOutcome(requested_bytes=0)
        if limit is not None:
            excess = cgroup.current_bytes() - limit
            if excess > 0:
                outcome = self.reclaimer.reclaim(
                    cgroup, excess, now, synchronous=True
                )
        return outcome

    def memory_reclaim(
        self,
        cgroup_name: str,
        nr_bytes: int,
        now: float,
        file_only: bool = False,
    ) -> ReclaimOutcome:
        """Write ``memory.reclaim``: stateless proactive reclaim.

        The knob the paper added upstream — asks the kernel to reclaim
        exactly ``nr_bytes`` without touching any limit, so an expanding
        workload is never blocked.

        Args:
            file_only: restrict reclaim to the file LRU (deployment's
                file-only phase, or write-endurance regulation).
        """
        cgroup = self._cgroups[cgroup_name]
        outcome = self.reclaimer.reclaim(
            cgroup, nr_bytes, now, synchronous=False, file_only=file_only
        )
        self.proactive_cpu_seconds += outcome.cpu_seconds
        return outcome

    # ------------------------------------------------------------------
    # allocation and the fault path

    def _new_page(
        self,
        cgroup: Cgroup,
        kind: PageKind,
        state: PageState,
        now: float,
        dirty: bool,
        compressibility: Optional[float],
    ) -> Page:
        page = Page(
            page_id=self._next_page_id,
            kind=kind,
            cgroup=cgroup.name,
            state=state,
            dirty=dirty,
            compressibility=(
                cgroup.compressibility
                if compressibility is None
                else compressibility
            ),
            last_access=now,
        )
        self._next_page_id += 1
        self._pages[page.page_id] = page
        return page

    def alloc_anon(
        self,
        cgroup_name: str,
        npages: int,
        now: float,
        compressibility: Optional[float] = None,
    ) -> Tuple[List[Page], float]:
        """Allocate anonymous pages; returns ``(pages, stall_seconds)``.

        The charge path may enter direct reclaim, whose cost is the
        returned stall (a memory stall for the allocating task).
        """
        cgroup = self._cgroups[cgroup_name]
        pages: List[Page] = []
        stall = 0.0
        try:
            for _ in range(npages):
                stall += self._charge_with_reclaim(cgroup, now)
                page = self._new_page(
                    cgroup, PageKind.ANON, PageState.RESIDENT, now,
                    dirty=False, compressibility=compressibility,
                )
                cgroup.charge(PageKind.ANON, self.page_size_bytes)
                cgroup.lru[PageKind.ANON].insert_new(page)
                pages.append(page)
        except OutOfMemoryError:
            # Atomic semantics: an OOM mid-batch releases the pages
            # already allocated rather than leaking untracked charges.
            for page in pages:
                self.release_page(page)
            raise
        return pages, stall

    def register_file(
        self,
        cgroup_name: str,
        npages: int,
        now: float,
        resident: bool = False,
        dirty: bool = False,
        compressibility: Optional[float] = None,
    ) -> Tuple[List[Page], float]:
        """Declare file-backed pages.

        With ``resident=False`` the pages start on disk (first touch
        reads them in); with ``resident=True`` they are preloaded into
        the page cache (Web's start-up behaviour in Section 4.2).
        """
        cgroup = self._cgroups[cgroup_name]
        pages: List[Page] = []
        stall = 0.0
        try:
            for _ in range(npages):
                if resident:
                    stall += self._charge_with_reclaim(cgroup, now)
                    page = self._new_page(
                        cgroup, PageKind.FILE, PageState.RESIDENT, now,
                        dirty=dirty, compressibility=compressibility,
                    )
                    cgroup.charge(PageKind.FILE, self.page_size_bytes)
                    cgroup.lru[PageKind.FILE].insert_new(page)
                else:
                    page = self._new_page(
                        cgroup, PageKind.FILE, PageState.ABSENT, now,
                        dirty=False, compressibility=compressibility,
                    )
                pages.append(page)
        except OutOfMemoryError:
            for page in pages:
                self.release_page(page)
            raise
        return pages, stall

    def touch(self, page: Page, now: float) -> FaultResult:
        """Access one page, resolving whatever fault its state implies."""
        cgroup = self._cgroups[page.cgroup]
        page.last_access = now

        if page.state is PageState.RESIDENT:
            cgroup.lru[page.kind].touch(page)
            return FaultResult(page=page, event="hit")

        if page.state is PageState.ZSWAPPED:
            stall = self._charge_with_reclaim(cgroup, now)
            self.swap_op_count += 1
            try:
                latency = self.swap_backend.load(
                    self.page_size_bytes, page.compressibility, now,
                    page_id=page.page_id,
                )
            except BackendFaultError:
                # Refault-with-retry: the page stays ZSWAPPED and its
                # pool bytes stay accounted — nothing was mutated — so
                # the next access simply retries. The task eats a retry
                # stall (a memory stall: resolution is in-DRAM).
                self.swap_fault_count += 1
                return FaultResult(
                    page=page, event="swapin_error",
                    stall_seconds=stall + self.retry_stall_s,
                    memstall=True, iostall=False,
                )
            self.swap_backend.free(
                self.page_size_bytes, page.compressibility, page_id=page.page_id
            )
            cgroup.zswap_bytes -= self.page_size_bytes
            page.state = PageState.RESIDENT
            cgroup.charge(PageKind.ANON, self.page_size_bytes)
            cgroup.lru[PageKind.ANON].insert_active(page)
            cgroup.vmstat.pswpin += 1
            cgroup.vmstat.pgmajfault += 1
            return FaultResult(
                page=page, event="zswapin",
                stall_seconds=stall + latency, memstall=True, iostall=False,
            )

        if page.state is PageState.SWAPPED:
            stall = self._charge_with_reclaim(cgroup, now)
            self.swap_op_count += 1
            try:
                latency = self.swap_backend.load(
                    self.page_size_bytes, page.compressibility, now,
                    page_id=page.page_id,
                )
            except BackendFaultError:
                # Failed swap-in: the page is still safely on the swap
                # device, so keep it SWAPPED and let the next access
                # retry. Counts as memory+IO stall like the fault it
                # failed to resolve.
                self.swap_fault_count += 1
                return FaultResult(
                    page=page, event="swapin_error",
                    stall_seconds=stall + self.retry_stall_s,
                    memstall=True, iostall=True,
                )
            self.swap_backend.free(
                self.page_size_bytes, page.compressibility, page_id=page.page_id
            )
            cgroup.swap_bytes -= self.page_size_bytes
            page.state = PageState.RESIDENT
            cgroup.charge(PageKind.ANON, self.page_size_bytes)
            cgroup.lru[PageKind.ANON].insert_active(page)
            cgroup.vmstat.pswpin += 1
            cgroup.vmstat.pgmajfault += 1
            return FaultResult(
                page=page, event="swapin",
                stall_seconds=stall + latency, memstall=True, iostall=True,
            )

        # EVICTED or ABSENT file page: read from the filesystem.
        stall = self._charge_with_reclaim(cgroup, now)
        self.fs_op_count += 1
        try:
            latency = self.fs.load(
                self.page_size_bytes, page.compressibility, now
            )
        except BackendFaultError:
            # Failed read: page stays EVICTED/ABSENT (its backing copy
            # is intact); the next access retries the read.
            self.fs_fault_count += 1
            return FaultResult(
                page=page, event="fileread_error",
                stall_seconds=stall + self.retry_stall_s,
                memstall=False, iostall=True,
            )
        distance = cgroup.shadow.reuse_distance(page.page_id)
        if distance is not None and distance >= 1:
            cgroup.record_reuse_distance(distance)
        refault = cgroup.shadow.consume(
            page.page_id, cgroup.resident_pages
        )
        page.state = PageState.RESIDENT
        page.shadow_stamp = None
        cgroup.charge(PageKind.FILE, self.page_size_bytes)
        cgroup.vmstat.pgpgin_file += 1
        cgroup.vmstat.pgmajfault += 1
        if refault:
            cgroup.vmstat.workingset_refault += 1
            cgroup.lru[PageKind.FILE].insert_active(page)
            return FaultResult(
                page=page, event="refault",
                stall_seconds=stall + latency, memstall=True, iostall=True,
            )
        cgroup.lru[PageKind.FILE].insert_new(page)
        return FaultResult(
            page=page, event="file_read",
            stall_seconds=stall + latency, memstall=False, iostall=True,
        )

    def touch_batch(
        self,
        pages: Sequence[Page],
        indices: Sequence[int],
        now: float,
    ) -> Tuple[Dict[str, int], float, float, float, int, bool]:
        """Access ``pages[i]`` for each ``i`` in ``indices``, aggregated.

        Semantically identical to calling :meth:`touch` per index in
        order — same fault resolution, same device/RNG streams, same
        "OOM abandons the rest of the quantum" behaviour — but the
        resident-hit fast path skips the per-access :class:`FaultResult`
        allocation, which dominates workload tick time.

        Returns ``(events, stall_mem_s, stall_io_s, stall_both_s,
        work_done, oom)`` with events counted in encounter order and
        stalls bucketed the way :meth:`repro.workloads.base.Workload.
        _accumulate` buckets them.
        """
        events: Dict[str, int] = {}
        stall_mem = stall_io = stall_both = 0.0
        work_done = 0
        hits = 0
        oom = False
        cgroups = self._cgroups
        resident = PageState.RESIDENT
        anon = PageKind.ANON
        touch = self.touch
        # Per-cgroup LRU lookups are hoisted out of the loop (batches
        # are usually single-cgroup) and the LruSet referenced-bit
        # protocol is inlined: with ~every page hit every tick, the
        # per-touch method and enum-keyed dict costs dominate.
        last_cg: Optional[str] = None
        lru_anon = lru_file = None
        for idx in indices:
            page = pages[idx]
            if page.state is resident:
                page.last_access = now
                if page.cgroup != last_cg:
                    last_cg = page.cgroup
                    lru = cgroups[last_cg].lru
                    lru_anon = lru[PageKind.ANON]
                    lru_file = lru[PageKind.FILE]
                lruset = lru_anon if page.kind is anon else lru_file
                if page.active:
                    # Rotate to the active head.
                    page.referenced = True
                    od = lruset.active._pages
                    pid = page.page_id
                    od[pid] = page
                    od.move_to_end(pid)
                elif page.referenced:
                    # Second touch of an inactive page: promote.
                    del lruset.inactive._pages[page.page_id]
                    page.active = True
                    page.referenced = False
                    od = lruset.active._pages
                    pid = page.page_id
                    od[pid] = page
                    od.move_to_end(pid)
                else:
                    # First touch only sets the reference bit.
                    page.referenced = True
                hits += 1
                continue
            try:
                result = touch(page, now)
            except OutOfMemoryError:
                oom = True
                break
            events[result.event] = events.get(result.event, 0) + 1
            stall = result.stall_seconds
            if stall > 0:
                if result.memstall:
                    if result.iostall:
                        stall_both += stall
                    else:
                        stall_mem += stall
                elif result.iostall:
                    stall_io += stall
            work_done += 1
        if hits:
            events["hit"] = events.get("hit", 0) + hits
            work_done += hits
        return events, stall_mem, stall_io, stall_both, work_done, oom

    # ------------------------------------------------------------------
    # charge path / direct reclaim

    def _tightest_limit(self, cgroup: Cgroup) -> Optional[Tuple[Cgroup, int]]:
        """The most-constrained limited ancestor and its headroom."""
        tightest: Optional[Tuple[Cgroup, int]] = None
        node: Optional[Cgroup] = cgroup
        while node is not None:
            if node.memory_max is not None:
                room = node.memory_max - node.current_bytes()
                if tightest is None or room < tightest[1]:
                    tightest = (node, room)
            node = node.parent
        return tightest

    #: Direct reclaim retries with escalating targets before declaring
    #: OOM, mirroring the kernel's scan-priority escalation: a larger
    #: target buys a larger scan budget, which clears reference bits on
    #: a hot LRU tail until a victim emerges.
    _RECLAIM_PRIORITIES = (1, 4, 16, 64)

    def _direct_reclaim(
        self, target: Cgroup, headroom, now: float
    ) -> float:
        """Escalating synchronous reclaim until ``headroom()`` suffices.

        Returns the accumulated stall; raises when even the highest
        escalation makes no room.
        """
        stall = 0.0
        for factor in self._RECLAIM_PRIORITIES:
            need = max(self.page_size_bytes - headroom(), self.page_size_bytes)
            outcome = self.reclaimer.reclaim(
                target, need * factor, now, synchronous=True
            )
            stall += outcome.cpu_seconds + outcome.stall_seconds
            if headroom() >= self.page_size_bytes:
                return stall
        raise OutOfMemoryError(
            f"no reclaim progress against {target.name!r} "
            f"(host {self.used_bytes()}/{self.ram_bytes} bytes used)"
        )

    def _charge_with_reclaim(self, cgroup: Cgroup, now: float) -> float:
        """Make room for one page charge; return the stall incurred."""
        stall = 0.0
        limit = self._tightest_limit(cgroup)
        if limit is not None:
            limited, room = limit
            if room < self.page_size_bytes:
                cgroup.vmstat.direct_reclaim += 1
                stall += self._direct_reclaim(
                    limited,
                    lambda: limited.memory_max - limited.current_bytes(),
                    now,
                )
        if self.free_bytes() < self.page_size_bytes:
            cgroup.vmstat.direct_reclaim += 1
            stall += self._direct_reclaim(
                self.root, self.free_bytes, now
            )
        return stall

    # ------------------------------------------------------------------
    # backend operations

    def swap_out(self, page: Page, now: float) -> Optional[float]:
        """Offload one anonymous page; returns CPU seconds or None if full.

        Swap writes are submitted asynchronously (the reclaiming context
        does not wait for the device), so only the submit/compress CPU
        cost is returned.
        """
        backend = self.swap_backend
        if backend is None:
            return None
        cgroup = self._cgroups[page.cgroup]
        if cgroup.swap_max is not None:
            used = cgroup.swap_bytes + cgroup.zswap_bytes
            if used + self.page_size_bytes > cgroup.swap_max:
                return None  # memory.swap.max reached: fall back to file
        age_s = max(0.0, now - page.last_access)
        self.swap_op_count += 1
        try:
            cost = backend.store(
                self.page_size_bytes, page.compressibility, now,
                page_id=page.page_id, age_s=age_s,
            )
        except (SwapFullError, ZswapPoolFullError, FarMemoryFullError):
            return None
        except BackendFaultError:
            # The store never happened (backends issue the device op
            # before touching accounting), so the page simply stays
            # resident; reclaim falls back to the file LRU this pass.
            self.swap_fault_count += 1
            return None
        tier_of = getattr(backend, "tier_of", None)
        if tier_of is not None:
            on_disk = tier_of(page.page_id) == "ssd"
        else:
            on_disk = backend.blocks_on_io
        if on_disk:
            page.state = PageState.SWAPPED
            return _SWAP_SUBMIT_COST_S
        page.state = PageState.ZSWAPPED
        return cost  # compression CPU

    # ------------------------------------------------------------------
    # lifecycle helpers

    def release_page(self, page: Page) -> None:
        """Free a page entirely (application exit / cache truncation)."""
        cgroup = self._cgroups[page.cgroup]
        if page.state is PageState.RESIDENT:
            cgroup.lru[page.kind].remove(page)
            cgroup.uncharge(page.kind, self.page_size_bytes)
        elif page.state is PageState.SWAPPED:
            self.swap_backend.free(
                self.page_size_bytes, page.compressibility, page_id=page.page_id
            )
            cgroup.swap_bytes -= self.page_size_bytes
        elif page.state is PageState.ZSWAPPED:
            self.swap_backend.free(
                self.page_size_bytes, page.compressibility, page_id=page.page_id
            )
            cgroup.zswap_bytes -= self.page_size_bytes
        elif page.state is PageState.EVICTED:
            cgroup.shadow.forget(page.page_id)
        page.state = PageState.ABSENT
        self._pages.pop(page.page_id, None)

    def release_cgroup_pages(self, cgroup_name: str) -> int:
        """Drop every page of a cgroup (container restart). Returns count."""
        doomed = [
            p for p in self._pages.values() if p.cgroup == cgroup_name
        ]
        for page in doomed:
            self.release_page(page)
        return len(doomed)

    # ------------------------------------------------------------------
    # periodic maintenance

    def kswapd(self, now: float) -> int:
        """One background-reclaim pass; returns bytes reclaimed.

        Runs when free memory is below the low watermark, reclaiming
        toward the high watermark. Asynchronous: its cost is kernel CPU,
        never an application stall.
        """
        low = int(self.kswapd_low_frac * self.ram_bytes)
        high = int(self.kswapd_high_frac * self.ram_bytes)
        if self.free_bytes() >= low:
            return 0
        total = 0
        # Iterate: freeing a page into zswap grows the pool, so the net
        # free gain per reclaimed byte can be fractional.
        for _ in range(8):
            shortfall = high - self.free_bytes()
            if shortfall <= 0:
                break
            outcome = self.reclaimer.reclaim(
                self.root, shortfall, now, synchronous=False
            )
            self.proactive_cpu_seconds += outcome.cpu_seconds
            total += outcome.reclaimed_bytes
            if outcome.reclaimed_bytes == 0:
                break
        self.kswapd_reclaimed_bytes += total
        return total

    def on_tick(self, now: float, dt: float) -> None:
        """Advance device state, rate estimators and background reclaim."""
        self.fs.on_tick(now, dt)
        if self.swap_backend is not None:
            self.swap_backend.on_tick(now, dt)
        for cgroup in self._cgroups.values():
            cgroup.update_rates(dt)
        self.kswapd(now)
