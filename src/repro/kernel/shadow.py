"""Non-resident cache tracking: shadow entries and refault detection.

Section 3.4: whenever a file page is evicted, a per-cgroup eviction
counter is incremented and its value stored in a shadow entry replacing
the page. On fault, the *reuse distance* is the difference between the
current counter and the stored stamp; if it is smaller than the cgroup's
resident memory (in pages), the page was still part of the working set
and the fault is a *refault*. Refaults drive both memory-PSI accounting
and TMO's rewritten reclaim balance.
"""

from __future__ import annotations

from typing import Dict, Optional


class ShadowMap:
    """Eviction clock plus shadow entries for one cgroup."""

    def __init__(self, capacity_entries: Optional[int] = None) -> None:
        """
        Args:
            capacity_entries: optional bound on retained shadow entries; the
                kernel prunes old shadows under memory pressure. Oldest
                entries are dropped first when the bound is hit.
        """
        self._clock = 0
        self._stamps: Dict[int, int] = {}
        self._capacity = capacity_entries

    @property
    def eviction_clock(self) -> int:
        """Total file evictions recorded so far."""
        return self._clock

    def __len__(self) -> int:
        return len(self._stamps)

    def record_eviction(self, page_id: int) -> int:
        """Install a shadow entry for an evicted page; return its stamp."""
        stamp = self._clock
        self._clock += 1
        self._stamps[page_id] = stamp
        if self._capacity is not None and len(self._stamps) > self._capacity:
            oldest = min(self._stamps, key=self._stamps.get)
            del self._stamps[oldest]
        return stamp

    def reuse_distance(self, page_id: int) -> Optional[int]:
        """Reuse distance for a faulting page, or None without a shadow."""
        stamp = self._stamps.get(page_id)
        if stamp is None:
            return None
        return self._clock - stamp

    def consume(self, page_id: int, resident_pages: int) -> bool:
        """Resolve a fault: pop the shadow entry and classify the fault.

        Returns:
            True when the fault is a refault (reuse distance within the
            cgroup's resident set), False for a plain cold read.
        """
        stamp = self._stamps.pop(page_id, None)
        if stamp is None:
            return False
        distance = self._clock - stamp
        return distance <= resident_pages

    def forget(self, page_id: int) -> None:
        """Drop the shadow entry (page freed for good, e.g. exit)."""
        self._stamps.pop(page_id, None)
