"""LRU page lists.

Each cgroup maintains a pair of active/inactive lists per page kind, the
kernel's production-tested mechanism for finding cold pages with low CPU
cost (Section 3.4). New pages enter the inactive list; a page referenced
while inactive earns promotion to the active list; reclaim scans from the
cold (tail) end of the inactive list and deactivates from the active tail
when the inactive list runs low.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.kernel.page import Page, PageKind


class LruList:
    """An ordered list of resident pages, hottest at the head.

    Backed by an ``OrderedDict`` for O(1) membership, removal and
    rotation. Internally the dict's *end* is the head (most recently
    used); the *start* is the tail where reclaim harvests.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._pages: "OrderedDict[int, Page]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: Page) -> bool:
        return page.page_id in self._pages

    def add_to_head(self, page: Page) -> None:
        """Insert (or rotate) a page at the hot end."""
        self._pages[page.page_id] = page
        self._pages.move_to_end(page.page_id)

    def add_to_tail(self, page: Page) -> None:
        """Insert a page at the cold end (used when demoting)."""
        self._pages[page.page_id] = page
        self._pages.move_to_end(page.page_id, last=False)

    def remove(self, page: Page) -> None:
        del self._pages[page.page_id]

    def discard(self, page: Page) -> None:
        self._pages.pop(page.page_id, None)

    def tail(self) -> Optional[Page]:
        """The coldest page, or None when empty."""
        if not self._pages:
            return None
        return next(iter(self._pages.values()))

    def pop_tail(self) -> Optional[Page]:
        """Remove and return the coldest page."""
        if not self._pages:
            return None
        _, page = self._pages.popitem(last=False)
        return page

    def __iter__(self) -> Iterator[Page]:
        """Iterate cold to hot."""
        return iter(self._pages.values())


class LruSet:
    """The active/inactive list pair for one page kind in one cgroup."""

    #: Target active:inactive size ratio; the kernel deactivates when the
    #: active list outgrows this multiple of the inactive list.
    ACTIVE_INACTIVE_RATIO = 2.0

    def __init__(self, kind: PageKind, cgroup: str) -> None:
        self.kind = kind
        self.active = LruList(f"{cgroup}/{kind.value}/active")
        self.inactive = LruList(f"{cgroup}/{kind.value}/inactive")

    def __len__(self) -> int:
        return len(self.active) + len(self.inactive)

    def insert_new(self, page: Page) -> None:
        """A newly allocated (or faulted-in) page enters the inactive head."""
        page.active = False
        page.referenced = False
        self.inactive.add_to_head(page)

    def insert_active(self, page: Page) -> None:
        """Insert straight onto the active list (refaulting working set)."""
        page.active = True
        page.referenced = False
        self.active.add_to_head(page)

    def touch(self, page: Page) -> bool:
        """Record an access; return True if the page was promoted.

        Mirrors the kernel's referenced-bit protocol: the first touch of
        an inactive page sets the reference bit; a second touch promotes
        it to the active list. Touches of active pages rotate the page to
        the head.
        """
        if page.active:
            page.referenced = True
            self.active.add_to_head(page)
            return False
        if page.referenced:
            self.inactive.remove(page)
            page.active = True
            page.referenced = False
            self.active.add_to_head(page)
            return True
        page.referenced = True
        # Leave list position; the reference bit is the aging signal.
        return False

    def remove(self, page: Page) -> None:
        """Take a page off whichever list it is on."""
        if page.active:
            self.active.discard(page)
        else:
            self.inactive.discard(page)
        page.active = False

    def needs_deactivation(self) -> bool:
        """Whether the active list is oversized relative to inactive."""
        return len(self.active) > self.ACTIVE_INACTIVE_RATIO * max(
            1, len(self.inactive)
        )

    def deactivate_one(self) -> Optional[Page]:
        """Demote the coldest active page to the inactive head.

        A referenced active page gets its bit cleared and is rotated
        back instead (one scan of second chance).
        """
        page = self.active.pop_tail()
        if page is None:
            return None
        if page.referenced:
            page.referenced = False
            self.active.add_to_head(page)
            return None
        page.active = False
        page.referenced = False
        self.inactive.add_to_head(page)
        return page

    def scan_tail(self) -> Tuple[Optional[Page], bool]:
        """Examine the coldest inactive page for eviction.

        Returns ``(page, evictable)``: a referenced page is given a
        second chance (promoted to active, bit cleared) and reported as
        not evictable; an unreferenced page is removed from the list and
        handed to the caller for eviction.
        """
        page = self.inactive.pop_tail()
        if page is None:
            return None, False
        if page.referenced:
            page.referenced = False
            page.active = True
            self.active.add_to_head(page)
            return page, False
        page.active = False
        return page, True
