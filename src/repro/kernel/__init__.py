"""Simulated Linux memory-management substrate.

This package reproduces the kernel mechanisms TMO relies on (Section 3.4):
page LRU lists, the cgroup hierarchy with ``memory.max`` and the stateless
``memory.reclaim`` control files, non-resident (shadow-entry) cache
tracking with reuse-distance refault detection, and two reclaim balancing
algorithms — the legacy file-skewed heuristic and TMO's refault/swap-in
balanced rewrite that was upstreamed.
"""

from repro.kernel.cgroup import Cgroup
from repro.kernel.controlfs import ControlFileError, ControlFs, parse_bytes
from repro.kernel.idle import AgeHistogram, IdlePageTracker
from repro.kernel.lru import LruList, LruSet
from repro.kernel.mm import FaultResult, MemoryManager, OutOfMemoryError
from repro.kernel.page import Page, PageKind, PageState
from repro.kernel.reclaim import (
    LegacyReclaimPolicy,
    ReclaimOutcome,
    ReclaimPolicy,
    TmoReclaimPolicy,
)
from repro.kernel.shadow import ShadowMap
from repro.kernel.vmstat import VmStat

__all__ = [
    "AgeHistogram",
    "Cgroup",
    "ControlFileError",
    "ControlFs",
    "IdlePageTracker",
    "parse_bytes",
    "FaultResult",
    "LegacyReclaimPolicy",
    "LruList",
    "LruSet",
    "MemoryManager",
    "OutOfMemoryError",
    "Page",
    "PageKind",
    "PageState",
    "ReclaimOutcome",
    "ReclaimPolicy",
    "ShadowMap",
    "TmoReclaimPolicy",
    "VmStat",
]
