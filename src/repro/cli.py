"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-apps`` — the application catalog with its published
  characteristics.
* ``list-ssds`` — the Figure 5 device catalog.
* ``run-host`` — simulate one host under Senpai and report savings.
* ``run`` — a checkpointed long run: ``--checkpoint-every N`` snapshots
  periodically, ``--resume PATH`` continues a killed run bit-identically
  (see docs/RESILIENCE.md, "Recovery").
* ``cost-table`` — the Figure 1 hardware cost trends.
* ``chaos`` — seeded fault-injection runs under invariant checking
  (see docs/RESILIENCE.md); ``--fleet`` storms a parallel fleet with
  worker crash/hang/slow faults and writes a graceful-degradation
  verdict JSON.
* ``fleet`` — a fleet rollout through the resilience runtime, with
  loud partial-result warnings and per-failure repro hints.
* ``crash-equivalence`` — prove checkpoint → kill → restore → continue
  matches the uninterrupted run digest-for-digest (``--workers`` farms a
  seed sweep over processes).
* ``bench`` — the benchmark harness: run the scenario matrix, write a
  machine-readable ``BENCH_5.json`` and optionally gate against a
  committed baseline (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.costs import cost_table
from repro.analysis.reporting import format_table
from repro.backends.ssd import SSD_CATALOG
from repro.core.fleet import cgroup_memory_savings
from repro.core.senpai import Senpai, SenpaiConfig
from repro.psi.types import Resource
from repro.sim.host import Host, HostConfig
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload
from repro.workloads.web import WebWorkload

MB = 1 << 20


def _cmd_list_apps(_args) -> int:
    rows = [
        (
            p.name,
            f"{p.size_gb:.0f}",
            f"{100 * p.anon_frac:.0f}",
            f"{100 * p.bands.cold:.0f}",
            f"{p.compress_ratio:.2f}",
            p.preferred_backend,
        )
        for p in APP_CATALOG.values()
    ]
    print(format_table(
        ["app", "size (GB)", "anon %", "cold %", "zstd ratio", "backend"],
        rows,
        title="application catalog",
    ))
    return 0


def _cmd_list_ssds(_args) -> int:
    rows = [
        (
            s.name,
            f"{s.endurance_pbw:.1f}",
            f"{s.read_iops / 1e3:.0f}",
            f"{s.write_iops / 1e3:.0f}",
            f"{s.read_p99_us:.0f}",
            f"{s.write_p99_us:.0f}",
        )
        for s in SSD_CATALOG.values()
    ]
    print(format_table(
        ["device", "endurance (PBW)", "read kIOPS", "write kIOPS",
         "read p99 (us)", "write p99 (us)"],
        rows,
        title="SSD catalog (Figure 5)",
    ))
    return 0


def _cmd_cost_table(_args) -> int:
    rows = [
        (gen, f"{mem:.1f}", f"{comp:.1f}", f"{ssd:.2f}")
        for gen, mem, comp, ssd in cost_table()
    ]
    print(format_table(
        ["generation", "memory %", "compressed %", "ssd iso %"],
        rows,
        title="hardware cost trends (Figure 1)",
    ))
    return 0


def _cmd_run_host(args) -> int:
    host = _build_single_app_host(args)
    if host is None:
        return 2
    backend = args.backend or APP_CATALOG[args.app].preferred_backend
    print(f"simulating {args.duration:.0f}s of {args.app!r} on a "
          f"{args.ram_gb:.0f} GB host with backend {backend!r} ...")
    host.run(args.duration)

    cg = host.mm.cgroup("app")
    stats = cgroup_memory_savings(host.mm, "app")
    group = host.psi.group("app")
    mem = group.sample(Resource.MEMORY, host.clock.now)
    rows = [
        ("resident (MB)", f"{cg.resident_bytes / MB:.1f}"),
        ("offloaded (MB)", f"{cg.offloaded_bytes() / MB:.1f}"),
        ("file evicted (MB)", f"{stats['saved_file_bytes'] / MB:.1f}"),
        ("net savings %", f"{100 * stats['savings_frac']:.1f}"),
        ("PSI memory some avg300 %", f"{100 * mem.some_avg300:.4f}"),
        ("swap-ins", str(cg.vmstat.pswpin)),
        ("refaults", str(cg.vmstat.workingset_refault)),
    ]
    print(format_table(["metric", "value"], rows, title="results"))
    return 0


def _cmd_run_ab(args) -> int:
    from repro.sim.ab import ABTest

    if args.app not in APP_CATALOG:
        print(f"unknown app {args.app!r}; see `list-apps`",
              file=sys.stderr)
        return 2
    profile = APP_CATALOG[args.app]

    def build(backend):
        host = Host(HostConfig(
            ram_gb=args.ram_gb, ncpu=args.ncpu,
            page_size_bytes=args.page_mb * MB,
            backend=None if backend == "none" else backend,
            seed=args.seed,
        ))
        if args.app == "Web":
            host.add_workload(WebWorkload, name="app",
                              size_scale=args.size_scale)
        else:
            host.add_workload(Workload, profile=profile, name="app",
                              size_scale=args.size_scale)
        if backend != "none":
            host.add_controller(Senpai(SenpaiConfig()))
        return host

    print(f"A/B: {args.app!r} — control={args.control!r} vs "
          f"treatment={args.treatment!r}, {args.duration:.0f}s ...")
    report = ABTest(
        control=lambda: build(args.control),
        treatment=lambda: build(args.treatment),
    ).run(args.duration)

    window = (args.duration / 2, args.duration)
    rows = []
    for series in ("app/resident_bytes", "app/rps",
                   "app/psi_mem_some_avg10", "app/promotion_rate"):
        delta = report.compare(series, window=window)
        rows.append((
            series,
            f"{delta.control_mean:.4g}",
            f"{delta.treatment_mean:.4g}",
            f"{100 * delta.delta_frac:+.1f}%"
            if delta.control_mean else "n/a",
        ))
    print(format_table(
        ["metric (2nd half mean)", "control", "treatment", "delta"],
        rows, title="A/B results",
    ))
    return 0


def _build_single_app_host(args) -> Optional[Host]:
    """The shared host recipe of ``run-host`` and ``run``."""
    if args.app not in APP_CATALOG:
        print(f"unknown app {args.app!r}; see `list-apps`",
              file=sys.stderr)
        return None
    profile = APP_CATALOG[args.app]
    backend = args.backend or profile.preferred_backend
    host = Host(HostConfig(
        ram_gb=args.ram_gb,
        ncpu=args.ncpu,
        page_size_bytes=args.page_mb * MB,
        backend=None if backend == "none" else backend,
        seed=args.seed,
    ))
    if args.app == "Web":
        host.add_workload(WebWorkload, name="app",
                          size_scale=args.size_scale)
    else:
        host.add_workload(Workload, profile=profile, name="app",
                          size_scale=args.size_scale)
    if backend != "none":
        host.add_controller(Senpai(SenpaiConfig()))
    return host


def _cmd_run(args) -> int:
    from repro.checkpoint import SnapshotError, load_snapshot, save_snapshot
    from repro.faults.chaos import metrics_digest

    if args.resume is not None:
        try:
            host = load_snapshot(args.resume)
        except OSError as exc:
            print(f"cannot read snapshot: {exc}", file=sys.stderr)
            return 2
        except SnapshotError as exc:
            print(f"refusing snapshot {args.resume!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"resumed from {args.resume} at t={host.clock.now:.0f}s")
    else:
        host = _build_single_app_host(args)
        if host is None:
            return 2
    end_s = args.duration
    if host.clock.now >= end_s:
        print(f"nothing to do: snapshot is already at "
              f"t={host.clock.now:.0f}s >= --duration {end_s:.0f}s",
              file=sys.stderr)
        return 2
    while host.clock.now < end_s:
        if args.checkpoint_every is not None:
            chunk = min(args.checkpoint_every, end_s - host.clock.now)
        else:
            chunk = end_s - host.clock.now
        host.run(chunk)
        if args.checkpoint_every is not None:
            digest = save_snapshot(host, args.checkpoint_path)
            print(f"checkpoint at t={host.clock.now:.0f}s -> "
                  f"{args.checkpoint_path} (digest {digest[:16]})")
    print(f"done at t={host.clock.now:.0f}s; metrics digest "
          f"{metrics_digest(host.metrics)}")
    return 0


def _cmd_crash_equivalence(args) -> int:
    from repro.faults.chaos import (
        ChaosConfig,
        format_crash_equivalence,
        run_crash_equivalence,
    )

    seeds = args.seeds if args.seeds else [args.seed]
    configs = [
        ChaosConfig(
            seed=seed,
            duration_s=args.duration,
            supervised=True,
            controller_faults=args.controller_faults,
        )
        for seed in seeds
    ]
    if args.workers and args.workers > 1 and len(configs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(args.workers, len(configs))
        ) as pool:
            reports = list(pool.map(run_crash_equivalence, configs))
    else:
        reports = [run_crash_equivalence(config) for config in configs]
    failures = 0
    for report in reports:
        print(format_crash_equivalence(report))
        if not report.equivalent:
            failures += 1
    if failures:
        print(f"{failures}/{len(seeds)} crash-equivalence runs FAILED",
              file=sys.stderr)
        return 1
    print(f"all {len(seeds)} crash-equivalence runs passed")
    return 0


def _cmd_bench(args) -> int:
    from repro.perf import (
        BENCH_SEED,
        DEFAULT_TOLERANCE,
        PROFILE_DEFAULT_OUT,
        check_regression,
        format_report,
        load_report,
        run_bench,
        run_profile,
        write_profile,
        write_report,
    )

    seed = BENCH_SEED if args.seed is None else args.seed

    if args.profile:
        out = args.out if args.out != "BENCH_5.json" else PROFILE_DEFAULT_OUT
        steps = args.profile_steps
        if args.quick:
            steps = min(steps, 200)
        print(f"profiling {steps} microbench ticks (seed {seed}) ...")
        document = run_profile(seed=seed, steps=steps)
        write_profile(document, out)
        shown = document["functions"][:10]
        for entry in shown:
            print(f"  {entry['tick_share']:7.2%}  "
                  f"{entry['file']}:{entry['line']} {entry['name']}")
        print(f"profile written to {out} "
              f"({len(document['functions'])} functions); check with "
              f"'tmo-lint --flow --profile {out}'")
        return 0

    tolerance = (
        DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    )
    mode = "quick" if args.quick else "full"
    print(f"running {mode} benchmark matrix (seed {seed}, "
          f"workers {args.workers}) ...")
    report = run_bench(seed=seed, quick=args.quick, workers=args.workers)
    write_report(report, args.out)
    print(format_report(report))
    print(f"report written to {args.out}")
    if args.check is not None:
        try:
            baseline = load_report(args.check)
        except (OSError, ValueError) as exc:
            print(f"cannot use baseline {args.check!r}: {exc}",
                  file=sys.stderr)
            return 2
        problems = check_regression(report, baseline, tolerance=tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"regression gate passed vs {args.check} "
              f"(tolerance {100 * tolerance:.0f}%)")
    return 0


def _cmd_chaos(args) -> int:
    if args.fleet:
        return _cmd_chaos_fleet(args)
    from repro.faults.chaos import ChaosConfig, format_report, run_chaos

    seeds = args.seeds if args.seeds else [args.seed]
    duration = args.duration if args.duration is not None else 900.0
    failures = 0
    for seed in seeds:
        config = ChaosConfig(
            seed=seed,
            duration_s=duration,
            ram_gb=args.ram_gb,
            ncpu=args.ncpu,
            extra_events=args.extra_events,
            hang_timeout_s=args.hang_timeout,
        )
        report = run_chaos(config)
        print(format_report(report, config))
        if not report.passed(config):
            failures += 1
    if failures:
        print(f"{failures}/{len(seeds)} chaos runs FAILED",
              file=sys.stderr)
        return 1
    print(f"all {len(seeds)} chaos runs passed")
    return 0


def _cmd_chaos_fleet(args) -> int:
    """``chaos --fleet``: storm parallel fleets, write the verdict JSON."""
    import json

    from repro.faults.chaos import (
        FleetChaosConfig,
        format_fleet_chaos,
        run_fleet_chaos,
    )

    seeds = args.seeds if args.seeds else [args.seed]
    duration = args.duration if args.duration is not None else 240.0
    verdicts = []
    failures = 0
    for seed in seeds:
        config = FleetChaosConfig(
            seed=seed,
            duration_s=duration,
            workers=args.workers,
            worker_faults=args.worker_faults,
        )
        report = run_fleet_chaos(config)
        print(format_fleet_chaos(report))
        verdicts.append(report.to_json())
        if not report.passed:
            failures += 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump({"verdicts": verdicts}, fh, indent=2)
        print(f"verdicts written to {args.out}")
    if failures:
        print(f"{failures}/{len(seeds)} fleet-chaos runs FAILED",
              file=sys.stderr)
        return 1
    print(f"all {len(seeds)} fleet-chaos runs passed")
    return 0


def _cmd_fleet(args) -> int:
    """Run a fleet rollout and report savings — loudly when partial."""
    from repro.core.fleet import Fleet, HostPlan
    from repro.workloads.apps import APP_CATALOG as catalog

    plans = []
    for app in args.apps:
        if app not in catalog:
            print(f"unknown app {app!r}; see `list-apps`",
                  file=sys.stderr)
            return 2
        plans.append(HostPlan(
            app=app, count=args.count, size_scale=args.size_scale,
        ))
    fleet = Fleet(
        base_config=HostConfig(
            ram_gb=args.ram_gb, ncpu=args.ncpu,
            page_size_bytes=args.page_mb * MB,
        ),
        seed=args.seed,
    )
    print(f"rolling out {sum(p.count for p in plans)} hosts "
          f"({', '.join(args.apps)}) for {args.duration:.0f}s "
          f"(workers {args.workers}) ...")
    result = fleet.run(plans, args.duration, workers=args.workers)
    rows = [
        (app, f"{100 * result.app_savings(app):.1f}")
        for app in result.apps()
    ]
    rows.append(("— tax (of RAM)",
                 f"{100 * result.tax_savings_of_ram():.1f}"))
    rows.append(("— total (of RAM)",
                 f"{100 * result.total_savings_of_ram():.1f}"))
    print(format_table(["app", "savings %"], rows,
                       title="fleet savings"))
    if result.partial:
        print(
            f"WARNING: PARTIAL RESULT — only "
            f"{100 * result.completed_fraction:.0f}% of planned hosts "
            f"completed ({len(result.reports)}/{result.planned_hosts}); "
            "the savings above average the survivors only and are a "
            "biased estimate of the fleet.",
            file=sys.stderr,
        )
        for failed in result.failed_hosts:
            print(f"  quarantined: {failed.repro_hint()}",
                  file=sys.stderr)
        return 1
    print(f"all {result.planned_hosts} planned hosts completed "
          f"({result.recovered_hosts} recovered); merged digest "
          f"{result.merged_digest()[:16]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TMO (ASPLOS '22) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="show the application catalog")
    sub.add_parser("list-ssds", help="show the SSD device catalog")
    sub.add_parser("cost-table", help="show Figure 1's cost trends")

    run = sub.add_parser("run-host",
                         help="simulate one host under Senpai")
    run.add_argument("--app", default="Feed",
                     help="application name (see list-apps)")
    run.add_argument("--backend", default=None,
                     choices=["zswap", "ssd", "tiered", "none"],
                     help="offload backend (default: app's preference)")
    run.add_argument("--duration", type=float, default=1800.0,
                     help="simulated seconds (default 1800)")
    run.add_argument("--ram-gb", type=float, default=4.0)
    run.add_argument("--ncpu", type=int, default=16)
    run.add_argument("--page-mb", type=int, default=1,
                     help="simulated page granularity in MiB")
    run.add_argument("--size-scale", type=float, default=0.05,
                     help="fraction of the production footprint")
    run.add_argument("--seed", type=int, default=1234)

    ckpt = sub.add_parser(
        "run",
        help="checkpointed long run: snapshot periodically, resume "
             "a killed run bit-identically",
    )
    ckpt.add_argument("--app", default="Feed",
                      help="application name (ignored with --resume)")
    ckpt.add_argument("--backend", default=None,
                      choices=["zswap", "ssd", "tiered", "none"])
    ckpt.add_argument("--duration", type=float, default=1800.0,
                      help="total simulated seconds, including any "
                           "already covered by a resumed snapshot")
    ckpt.add_argument("--ram-gb", type=float, default=4.0)
    ckpt.add_argument("--ncpu", type=int, default=16)
    ckpt.add_argument("--page-mb", type=int, default=1)
    ckpt.add_argument("--size-scale", type=float, default=0.05)
    ckpt.add_argument("--seed", type=int, default=1234)
    ckpt.add_argument("--checkpoint-every", type=float, default=None,
                      metavar="N",
                      help="snapshot every N simulated seconds")
    ckpt.add_argument("--checkpoint-path",
                      default="tmo-checkpoint.json",
                      help="where snapshots are written")
    ckpt.add_argument("--resume", default=None, metavar="PATH",
                      help="restore this snapshot and continue")

    ab = sub.add_parser(
        "run-ab", help="A/B two backends on identically seeded hosts"
    )
    ab.add_argument("--app", default="Feed")
    ab.add_argument("--control", default="none",
                    choices=["zswap", "ssd", "tiered", "nvm", "cxl",
                             "none"])
    ab.add_argument("--treatment", default="zswap",
                    choices=["zswap", "ssd", "tiered", "nvm", "cxl",
                             "none"])
    ab.add_argument("--duration", type=float, default=1800.0)
    ab.add_argument("--ram-gb", type=float, default=4.0)
    ab.add_argument("--ncpu", type=int, default=16)
    ab.add_argument("--page-mb", type=int, default=1)
    ab.add_argument("--size-scale", type=float, default=0.05)
    ab.add_argument("--seed", type=int, default=1234)

    chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection scenarios under invariants",
    )
    chaos.add_argument("--seed", type=int, default=1,
                       help="seed for a single run (ignored with --seeds)")
    chaos.add_argument("--seeds", type=int, nargs="+", default=None,
                       help="sweep several seeds; nonzero exit on any FAIL")
    chaos.add_argument("--duration", type=float, default=None,
                       help="simulated seconds per run (default 900; "
                            "240 with --fleet)")
    chaos.add_argument("--ram-gb", type=float, default=1.0)
    chaos.add_argument("--ncpu", type=int, default=8)
    chaos.add_argument("--extra-events", type=int, default=6,
                       help="random fault windows beyond the guaranteed "
                            "breaker storm")
    chaos.add_argument("--hang-timeout", type=float, default=20.0,
                       help="supervisor hang-kill threshold in simulated "
                            "seconds (default 20)")
    chaos.add_argument("--fleet", action="store_true",
                       help="storm a parallel fleet with worker "
                            "crash/hang/slow faults and assert the "
                            "graceful-degradation verdict")
    chaos.add_argument("--workers", type=int, default=3,
                       help="worker processes for --fleet (default 3)")
    chaos.add_argument("--worker-faults", type=int, default=3,
                       help="worker fault events per --fleet storm "
                            "(default 3)")
    chaos.add_argument("--out", default="chaos-fleet-verdict.json",
                       metavar="PATH",
                       help="where --fleet writes the verdict JSON "
                            "(default chaos-fleet-verdict.json)")

    fleet = sub.add_parser(
        "fleet",
        help="run a fleet rollout through the resilience runtime and "
             "report per-app savings",
    )
    fleet.add_argument("--apps", nargs="+",
                       default=["Feed", "Web", "Cache"],
                       help="applications to roll out (see list-apps)")
    fleet.add_argument("--count", type=int, default=2,
                       help="hosts per application (default 2)")
    fleet.add_argument("--duration", type=float, default=600.0,
                       help="simulated seconds per host (default 600)")
    fleet.add_argument("--ram-gb", type=float, default=1.0)
    fleet.add_argument("--ncpu", type=int, default=8)
    fleet.add_argument("--page-mb", type=int, default=1)
    fleet.add_argument("--size-scale", type=float, default=0.01,
                       help="fraction of the production footprint")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1: serial)")

    ce = sub.add_parser(
        "crash-equivalence",
        help="assert checkpoint -> kill -> restore -> continue matches "
             "the uninterrupted run digest-for-digest",
    )
    ce.add_argument("--seed", type=int, default=1,
                    help="seed for a single run (ignored with --seeds)")
    ce.add_argument("--seeds", type=int, nargs="+", default=None,
                    help="sweep several seeds; nonzero exit on any FAIL")
    ce.add_argument("--duration", type=float, default=600.0,
                    help="simulated seconds per run (default 600)")
    ce.add_argument("--controller-faults", type=int, default=2,
                    help="controller crash/hang events injected against "
                         "the supervised controller")
    ce.add_argument("--workers", type=int, default=1,
                    help="run a --seeds sweep across this many worker "
                         "processes (default 1: serial)")

    bench = sub.add_parser(
        "bench",
        help="run the benchmark matrix; write BENCH_5.json and "
             "optionally gate against a baseline",
    )
    bench.add_argument("--out", default="BENCH_5.json",
                       help="where the report is written "
                            "(default BENCH_5.json)")
    bench.add_argument("--check", default=None, metavar="BASELINE",
                       help="compare against this baseline report and "
                            "exit nonzero on regression")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="allowed relative drop of a normalized "
                            "score vs. baseline (default 0.20)")
    bench.add_argument("--quick", action="store_true",
                       help="shrink every scenario (smoke runs; too "
                            "noisy to commit as a baseline)")
    bench.add_argument("--seed", type=int, default=None,
                       help="scenario seed (default: the canonical "
                            "bench seed)")
    bench.add_argument("--workers", type=int, default=4,
                       help="worker processes for the parallel fleet "
                            "scenario (default 4)")
    bench.add_argument("--profile", action="store_true",
                       help="instead of the scenario matrix, run the "
                            "tick microbench under cProfile and write "
                            "the per-function tick-share profile "
                            "(default out: BENCH_profile.json) for "
                            "'tmo-lint --flow --profile'")
    bench.add_argument("--profile-steps", type=int, default=2000,
                       help="ticks to profile with --profile "
                            "(default 2000)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list-apps": _cmd_list_apps,
        "list-ssds": _cmd_list_ssds,
        "cost-table": _cmd_cost_table,
        "run-host": _cmd_run_host,
        "run": _cmd_run,
        "run-ab": _cmd_run_ab,
        "chaos": _cmd_chaos,
        "fleet": _cmd_fleet,
        "crash-equivalence": _cmd_crash_equivalence,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
