"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-apps`` — the application catalog with its published
  characteristics.
* ``list-ssds`` — the Figure 5 device catalog.
* ``run-host`` — simulate one host under Senpai and report savings.
* ``run`` — a checkpointed long run: ``--checkpoint-every N`` snapshots
  periodically, ``--resume PATH`` continues a killed run bit-identically
  (see docs/RESILIENCE.md, "Recovery").
* ``cost-table`` — the Figure 1 hardware cost trends.
* ``chaos`` — seeded fault-injection runs under invariant checking
  (see docs/RESILIENCE.md); ``--fleet`` storms a parallel fleet with
  worker crash/hang/slow faults, ``--fleetd`` storms the control
  plane's guarded rollouts; both write a versioned
  graceful-degradation verdict JSON.
* ``fleet`` — a fleet rollout through the resilience runtime, with
  loud partial-result warnings, per-failure repro hints, and
  ``--max-attempts`` / ``--deadline-min-s`` /
  ``--checkpoint-every-sim-s`` resilience knobs.
* ``fleetd`` — the live control-plane daemon (docs/RESILIENCE.md,
  "Control plane"): host registration (with a placement ``--region``
  label), guarded policy rollouts with health-gated canary waves and
  auto-rollback, the fleet kill switch, and the read-only query
  surface (``metrics`` — host/region/fleet rollup envelopes, ``top``
  — hosts ranked by a signal), over a Unix socket.
* ``crash-equivalence`` — prove checkpoint → kill → restore → continue
  matches the uninterrupted run digest-for-digest (``--workers`` farms a
  seed sweep over processes).
* ``bench`` — the benchmark harness: run the scenario matrix, write a
  machine-readable ``BENCH_5.json`` and optionally gate against a
  committed baseline (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.costs import cost_table
from repro.analysis.reporting import format_table
from repro.backends.ssd import SSD_CATALOG
from repro.core.fleet import cgroup_memory_savings
from repro.core.senpai import Senpai, SenpaiConfig
from repro.psi.types import Resource
from repro.sim.host import Host, HostConfig
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload
from repro.workloads.web import WebWorkload

MB = 1 << 20


def _cmd_list_apps(_args) -> int:
    rows = [
        (
            p.name,
            f"{p.size_gb:.0f}",
            f"{100 * p.anon_frac:.0f}",
            f"{100 * p.bands.cold:.0f}",
            f"{p.compress_ratio:.2f}",
            p.preferred_backend,
        )
        for p in APP_CATALOG.values()
    ]
    print(format_table(
        ["app", "size (GB)", "anon %", "cold %", "zstd ratio", "backend"],
        rows,
        title="application catalog",
    ))
    return 0


def _cmd_list_ssds(_args) -> int:
    rows = [
        (
            s.name,
            f"{s.endurance_pbw:.1f}",
            f"{s.read_iops / 1e3:.0f}",
            f"{s.write_iops / 1e3:.0f}",
            f"{s.read_p99_us:.0f}",
            f"{s.write_p99_us:.0f}",
        )
        for s in SSD_CATALOG.values()
    ]
    print(format_table(
        ["device", "endurance (PBW)", "read kIOPS", "write kIOPS",
         "read p99 (us)", "write p99 (us)"],
        rows,
        title="SSD catalog (Figure 5)",
    ))
    return 0


def _cmd_cost_table(_args) -> int:
    rows = [
        (gen, f"{mem:.1f}", f"{comp:.1f}", f"{ssd:.2f}")
        for gen, mem, comp, ssd in cost_table()
    ]
    print(format_table(
        ["generation", "memory %", "compressed %", "ssd iso %"],
        rows,
        title="hardware cost trends (Figure 1)",
    ))
    return 0


def _cmd_run_host(args) -> int:
    host = _build_single_app_host(args)
    if host is None:
        return 2
    backend = args.backend or APP_CATALOG[args.app].preferred_backend
    print(f"simulating {args.duration:.0f}s of {args.app!r} on a "
          f"{args.ram_gb:.0f} GB host with backend {backend!r} ...")
    host.run(args.duration)

    cg = host.mm.cgroup("app")
    stats = cgroup_memory_savings(host.mm, "app")
    group = host.psi.group("app")
    mem = group.sample(Resource.MEMORY, host.clock.now)
    rows = [
        ("resident (MB)", f"{cg.resident_bytes / MB:.1f}"),
        ("offloaded (MB)", f"{cg.offloaded_bytes() / MB:.1f}"),
        ("file evicted (MB)", f"{stats['saved_file_bytes'] / MB:.1f}"),
        ("net savings %", f"{100 * stats['savings_frac']:.1f}"),
        ("PSI memory some avg300 %", f"{100 * mem.some_avg300:.4f}"),
        ("swap-ins", str(cg.vmstat.pswpin)),
        ("refaults", str(cg.vmstat.workingset_refault)),
    ]
    print(format_table(["metric", "value"], rows, title="results"))
    return 0


def _cmd_run_ab(args) -> int:
    from repro.sim.ab import ABTest

    if args.app not in APP_CATALOG:
        print(f"unknown app {args.app!r}; see `list-apps`",
              file=sys.stderr)
        return 2
    profile = APP_CATALOG[args.app]

    def build(backend):
        host = Host(HostConfig(
            ram_gb=args.ram_gb, ncpu=args.ncpu,
            page_size_bytes=args.page_mb * MB,
            backend=None if backend == "none" else backend,
            seed=args.seed,
        ))
        if args.app == "Web":
            host.add_workload(WebWorkload, name="app",
                              size_scale=args.size_scale)
        else:
            host.add_workload(Workload, profile=profile, name="app",
                              size_scale=args.size_scale)
        if backend != "none":
            host.add_controller(Senpai(SenpaiConfig()))
        return host

    print(f"A/B: {args.app!r} — control={args.control!r} vs "
          f"treatment={args.treatment!r}, {args.duration:.0f}s ...")
    report = ABTest(
        control=lambda: build(args.control),
        treatment=lambda: build(args.treatment),
    ).run(args.duration)

    window = (args.duration / 2, args.duration)
    rows = []
    for series in ("app/resident_bytes", "app/rps",
                   "app/psi_mem_some_avg10", "app/promotion_rate"):
        delta = report.compare(series, window=window)
        rows.append((
            series,
            f"{delta.control_mean:.4g}",
            f"{delta.treatment_mean:.4g}",
            f"{100 * delta.delta_frac:+.1f}%"
            if delta.control_mean else "n/a",
        ))
    print(format_table(
        ["metric (2nd half mean)", "control", "treatment", "delta"],
        rows, title="A/B results",
    ))
    return 0


def _build_single_app_host(args) -> Optional[Host]:
    """The shared host recipe of ``run-host`` and ``run``."""
    if args.app not in APP_CATALOG:
        print(f"unknown app {args.app!r}; see `list-apps`",
              file=sys.stderr)
        return None
    profile = APP_CATALOG[args.app]
    backend = args.backend or profile.preferred_backend
    host = Host(HostConfig(
        ram_gb=args.ram_gb,
        ncpu=args.ncpu,
        page_size_bytes=args.page_mb * MB,
        backend=None if backend == "none" else backend,
        seed=args.seed,
    ))
    if args.app == "Web":
        host.add_workload(WebWorkload, name="app",
                          size_scale=args.size_scale)
    else:
        host.add_workload(Workload, profile=profile, name="app",
                          size_scale=args.size_scale)
    if backend != "none":
        host.add_controller(Senpai(SenpaiConfig()))
    return host


def _cmd_run(args) -> int:
    from repro.checkpoint import SnapshotError, load_snapshot, save_snapshot
    from repro.faults.chaos import metrics_digest

    if args.resume is not None:
        try:
            host = load_snapshot(args.resume)
        except OSError as exc:
            print(f"cannot read snapshot: {exc}", file=sys.stderr)
            return 2
        except SnapshotError as exc:
            print(f"refusing snapshot {args.resume!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"resumed from {args.resume} at t={host.clock.now:.0f}s")
    else:
        host = _build_single_app_host(args)
        if host is None:
            return 2
    end_s = args.duration
    if host.clock.now >= end_s:
        print(f"nothing to do: snapshot is already at "
              f"t={host.clock.now:.0f}s >= --duration {end_s:.0f}s",
              file=sys.stderr)
        return 2
    while host.clock.now < end_s:
        if args.checkpoint_every is not None:
            chunk = min(args.checkpoint_every, end_s - host.clock.now)
        else:
            chunk = end_s - host.clock.now
        host.run(chunk)
        if args.checkpoint_every is not None:
            digest = save_snapshot(host, args.checkpoint_path)
            print(f"checkpoint at t={host.clock.now:.0f}s -> "
                  f"{args.checkpoint_path} (digest {digest[:16]})")
    print(f"done at t={host.clock.now:.0f}s; metrics digest "
          f"{metrics_digest(host.metrics)}")
    return 0


def _cmd_crash_equivalence(args) -> int:
    from repro.faults.chaos import (
        ChaosConfig,
        format_crash_equivalence,
        run_crash_equivalence,
    )

    seeds = args.seeds if args.seeds else [args.seed]
    configs = [
        ChaosConfig(
            seed=seed,
            duration_s=args.duration,
            supervised=True,
            controller_faults=args.controller_faults,
        )
        for seed in seeds
    ]
    if args.workers and args.workers > 1 and len(configs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(args.workers, len(configs))
        ) as pool:
            reports = list(pool.map(run_crash_equivalence, configs))
    else:
        reports = [run_crash_equivalence(config) for config in configs]
    failures = 0
    for report in reports:
        print(format_crash_equivalence(report))
        if not report.equivalent:
            failures += 1
    if failures:
        print(f"{failures}/{len(seeds)} crash-equivalence runs FAILED",
              file=sys.stderr)
        return 1
    print(f"all {len(seeds)} crash-equivalence runs passed")
    return 0


def _cmd_bench(args) -> int:
    from repro.perf import (
        BENCH_SEED,
        DEFAULT_TOLERANCE,
        PROFILE_DEFAULT_OUT,
        check_regression,
        format_report,
        load_report,
        run_bench,
        run_profile,
        write_profile,
        write_report,
    )

    seed = BENCH_SEED if args.seed is None else args.seed

    if args.profile:
        out = args.out if args.out != "BENCH_5.json" else PROFILE_DEFAULT_OUT
        steps = args.profile_steps
        if args.quick:
            steps = min(steps, 200)
        print(f"profiling {steps} microbench ticks (seed {seed}) ...")
        document = run_profile(seed=seed, steps=steps)
        write_profile(document, out)
        shown = document["functions"][:10]
        for entry in shown:
            print(f"  {entry['tick_share']:7.2%}  "
                  f"{entry['file']}:{entry['line']} {entry['name']}")
        print(f"profile written to {out} "
              f"({len(document['functions'])} functions); check with "
              f"'tmo-lint --flow --profile {out}'")
        return 0

    tolerance = (
        DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    )
    mode = "quick" if args.quick else "full"
    print(f"running {mode} benchmark matrix (seed {seed}, "
          f"workers {args.workers}) ...")
    report = run_bench(seed=seed, quick=args.quick, workers=args.workers)
    write_report(report, args.out)
    print(format_report(report))
    print(f"report written to {args.out}")
    if args.check is not None:
        try:
            baseline = load_report(args.check)
        except (OSError, ValueError) as exc:
            print(f"cannot use baseline {args.check!r}: {exc}",
                  file=sys.stderr)
            return 2
        problems = check_regression(report, baseline, tolerance=tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"regression gate passed vs {args.check} "
              f"(tolerance {100 * tolerance:.0f}%)")
    return 0


def _cmd_chaos(args) -> int:
    if args.fleet and args.fleetd:
        print("--fleet and --fleetd are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.fleet:
        return _cmd_chaos_fleet(args)
    if args.fleetd:
        return _cmd_chaos_fleetd(args)
    from repro.faults.chaos import ChaosConfig, format_report, run_chaos

    seeds = args.seeds if args.seeds else [args.seed]
    duration = args.duration if args.duration is not None else 900.0
    failures = 0
    for seed in seeds:
        config = ChaosConfig(
            seed=seed,
            duration_s=duration,
            ram_gb=args.ram_gb,
            ncpu=args.ncpu,
            extra_events=args.extra_events,
            hang_timeout_s=args.hang_timeout,
        )
        report = run_chaos(config)
        print(format_report(report, config))
        if not report.passed(config):
            failures += 1
    if failures:
        print(f"{failures}/{len(seeds)} chaos runs FAILED",
              file=sys.stderr)
        return 1
    print(f"all {len(seeds)} chaos runs passed")
    return 0


def _cmd_chaos_fleet(args) -> int:
    """``chaos --fleet``: storm parallel fleets, write the verdict JSON."""
    import dataclasses

    from repro.faults.chaos import (
        FleetChaosConfig,
        chaos_verdict_document,
        format_fleet_chaos,
        run_fleet_chaos,
        write_chaos_verdicts,
    )

    seeds = args.seeds if args.seeds else [args.seed]
    duration = args.duration if args.duration is not None else 240.0
    out = args.out if args.out else "chaos-fleet-verdict.json"
    verdicts = []
    config_doc = {}
    failures = 0
    for seed in seeds:
        config = FleetChaosConfig(
            seed=seed,
            duration_s=duration,
            workers=args.workers,
            worker_faults=args.worker_faults,
        )
        config_doc = dataclasses.asdict(config)
        del config_doc["seed"]  # per-verdict, not shared provenance
        report = run_fleet_chaos(config)
        print(format_fleet_chaos(report))
        verdicts.append(report.to_json())
        if not report.passed:
            failures += 1
    write_chaos_verdicts(
        chaos_verdict_document("fleet", seeds, config_doc, verdicts),
        out,
    )
    print(f"verdicts written to {out}")
    if failures:
        print(f"{failures}/{len(seeds)} fleet-chaos runs FAILED",
              file=sys.stderr)
        return 1
    print(f"all {len(seeds)} fleet-chaos runs passed")
    return 0


def _cmd_chaos_fleetd(args) -> int:
    """``chaos --fleetd``: storm the control plane, write the verdict."""
    from repro.faults.chaos import (
        chaos_verdict_document,
        write_chaos_verdicts,
    )
    from repro.fleetd.chaos import (
        FleetdChaosConfig,
        format_fleetd_chaos,
        run_fleetd_chaos,
    )

    seeds = args.seeds if args.seeds else [args.seed]
    duration = args.duration if args.duration is not None else 420.0
    out = args.out if args.out else "chaos-fleetd-verdict.json"
    verdicts = []
    config_doc = {}
    failures = 0
    for seed in seeds:
        config = FleetdChaosConfig(
            seed=seed,
            duration_s=duration,
            controller_faults=args.controller_faults,
            worker_faults=args.worker_faults,
        )
        config_doc = config.to_json()
        del config_doc["seed"]  # per-verdict, not shared provenance
        report = run_fleetd_chaos(config)
        print(format_fleetd_chaos(report))
        verdicts.append(report.to_json())
        if not report.passed:
            failures += 1
    write_chaos_verdicts(
        chaos_verdict_document(
            "fleetd", seeds, config_doc, verdicts
        ),
        out,
    )
    print(f"verdicts written to {out}")
    if failures:
        print(f"{failures}/{len(seeds)} fleetd-chaos runs FAILED",
              file=sys.stderr)
        return 1
    print(f"all {len(seeds)} fleetd-chaos runs passed")
    return 0


def _cmd_fleet(args) -> int:
    """Run a fleet rollout and report savings — loudly when partial."""
    import math

    from repro.core.fleet import Fleet, HostPlan
    from repro.core.fleetres import FleetResilienceConfig
    from repro.workloads.apps import APP_CATALOG as catalog

    resilience = None
    knobs = (args.max_attempts, args.deadline_min_s,
             args.checkpoint_every_sim_s)
    if any(knob is not None for knob in knobs):
        # Only build an explicit config when a knob is set; the None
        # default keeps Fleet.run's fault-free fast path (retries on,
        # periodic spooling off).
        kwargs = {
            "checkpoint_every_s": (
                args.checkpoint_every_sim_s
                if args.checkpoint_every_sim_s is not None else math.inf
            ),
        }
        if args.max_attempts is not None:
            kwargs["max_attempts"] = args.max_attempts
        if args.deadline_min_s is not None:
            kwargs["deadline_min_s"] = args.deadline_min_s
        try:
            resilience = FleetResilienceConfig(**kwargs)
        except ValueError as exc:
            print(f"bad resilience knobs: {exc}", file=sys.stderr)
            return 2

    plans = []
    for app in args.apps:
        if app not in catalog:
            print(f"unknown app {app!r}; see `list-apps`",
                  file=sys.stderr)
            return 2
        plans.append(HostPlan(
            app=app, count=args.count, size_scale=args.size_scale,
        ))
    fleet = Fleet(
        base_config=HostConfig(
            ram_gb=args.ram_gb, ncpu=args.ncpu,
            page_size_bytes=args.page_mb * MB,
        ),
        seed=args.seed,
    )
    print(f"rolling out {sum(p.count for p in plans)} hosts "
          f"({', '.join(args.apps)}) for {args.duration:.0f}s "
          f"(workers {args.workers}) ...")
    result = fleet.run(plans, args.duration, workers=args.workers,
                       resilience=resilience)
    rows = [
        (app, f"{100 * result.app_savings(app):.1f}")
        for app in result.apps()
    ]
    rows.append(("— tax (of RAM)",
                 f"{100 * result.tax_savings_of_ram():.1f}"))
    rows.append(("— total (of RAM)",
                 f"{100 * result.total_savings_of_ram():.1f}"))
    print(format_table(["app", "savings %"], rows,
                       title="fleet savings"))
    if result.partial:
        print(
            f"WARNING: PARTIAL RESULT — only "
            f"{100 * result.completed_fraction:.0f}% of planned hosts "
            f"completed ({len(result.reports)}/{result.planned_hosts}); "
            "the savings above average the survivors only and are a "
            "biased estimate of the fleet.",
            file=sys.stderr,
        )
        for failed in result.failed_hosts:
            print(f"  quarantined: {failed.repro_hint()}",
                  file=sys.stderr)
        return 1
    print(f"all {result.planned_hosts} planned hosts completed "
          f"({result.recovered_hosts} recovered); merged digest "
          f"{result.merged_digest()[:16]}")
    return 0


def _parse_policy_args(kind, sets):
    """Build the wire-form policy from ``--policy KIND --set k=v ...``."""
    import json

    params = {}
    for item in sets or []:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ValueError(
                f"--set needs key=value, got {item!r}"
            )
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    from repro.fleetd.policy import PolicySpec

    return PolicySpec.make(kind, params).to_json()


def _cmd_fleetd(args) -> int:
    """``repro fleetd <verb>``: drive the control-plane daemon."""
    import json

    from repro.fleetd.client import FleetdClient, FleetdClientError
    from repro.fleetd.policy import PolicyError
    from repro.fleetd.rollout import parse_rollout_result

    if args.fleetd_command == "start":
        return _cmd_fleetd_start(args)

    client = FleetdClient(args.socket)
    try:
        if args.fleetd_command == "status":
            print(json.dumps(client.status(), indent=2, sort_keys=True))
        elif args.fleetd_command == "register":
            policy = (
                _parse_policy_args(args.policy, args.set)
                if args.policy is not None else None
            )
            entry = client.register(
                args.host_id, args.app, policy=policy,
                size_scale=args.size_scale,
                region=args.region,
            )
            print(f"registered {args.host_id}: "
                  f"{json.dumps(entry, sort_keys=True)}")
        elif args.fleetd_command == "deregister":
            client.deregister(args.host_id)
            print(f"deregistered {args.host_id}")
        elif args.fleetd_command == "rollout":
            policy = _parse_policy_args(args.policy, args.set)
            rollout_id = client.rollout(policy, hosts=args.hosts)
            print(f"rollout {rollout_id} queued: "
                  f"{json.dumps(policy, sort_keys=True)}")
            result = client.rollout_status(rollout_id)
            if args.wait:
                # Drive the daemon's simulated clock synchronously
                # instead of polling wall time: deterministic, and no
                # sleep in the CLI.
                spent = 0
                while result["status"] in ("pending", "running"):
                    if spent >= args.max_wait_ticks:
                        print(
                            f"rollout {rollout_id} still "
                            f"{result['status']} after {spent} ticks",
                            file=sys.stderr,
                        )
                        return 1
                    client.run_ticks(args.wait_step_ticks)
                    spent += args.wait_step_ticks
                    result = client.rollout_status(rollout_id)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    json.dump(result, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"rollout result written to {args.out}")
            print(f"rollout {rollout_id}: {result['status']}"
                  + (f" ({result['rollback_reason']})"
                     if result.get("rollback_reason") else ""))
            if args.wait and result["status"] != "succeeded":
                return 1
        elif args.fleetd_command == "rollout-status":
            result = client.rollout_status(args.id)
            parse_rollout_result(result)
            print(json.dumps(result, indent=2, sort_keys=True))
        elif args.fleetd_command == "rollback":
            rolled = client.rollback()
            print("rolled back the active rollout" if rolled
                  else "no active rollout")
        elif args.fleetd_command == "kill-switch":
            killed = client.kill_switch()
            print(f"kill switch engaged: {killed} rollout(s) "
                  "reverted/killed; fleet frozen")
        elif args.fleetd_command == "reset-quarantine":
            reset = client.reset_quarantine(args.host_id)
            print(f"{args.host_id}: "
                  + ("controller un-quarantined and restarted"
                     if reset else "was not quarantined"))
        elif args.fleetd_command == "metrics":
            # Validated on read by the client (schema version, kind,
            # NaN-free) — a daemon/CLI version skew fails loudly here
            # instead of printing a half-foreign document.
            rollup = client.metrics(window_s=args.window)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    json.dump(rollup, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"fleet rollup written to {args.out}")
            print(json.dumps(rollup, indent=2, sort_keys=True))
        elif args.fleetd_command == "top":
            report = client.top(
                args.signal, n=args.n, window_s=args.window
            )
            print(json.dumps(report, indent=2, sort_keys=True))
        elif args.fleetd_command == "run":
            tick = client.run_ticks(args.ticks)
            print(f"advanced to tick {tick}")
        elif args.fleetd_command == "stop":
            client.stop()
            print("fleetd stopping")
    except (FleetdClientError, PolicyError, ValueError) as exc:
        print(f"fleetd: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_fleetd_start(args) -> int:
    """``repro fleetd start``: run the daemon on a Unix socket."""
    from repro.core.supervisor import SupervisorConfig
    from repro.fleetd.engine import FleetdConfig, FleetdEngine
    from repro.fleetd.health import HealthGateConfig
    from repro.fleetd.rollout import RolloutConfig
    from repro.fleetd.server import FleetdServer

    try:
        rollout = RolloutConfig(
            canary_frac=args.canary_frac,
            wave_frac=args.wave_frac,
            baseline_s=args.baseline_s,
            soak_s=args.soak_s,
            gate=HealthGateConfig(),
        )
    except ValueError as exc:
        print(f"bad rollout knobs: {exc}", file=sys.stderr)
        return 2
    engine = FleetdEngine(FleetdConfig(
        seed=args.seed,
        base_config=HostConfig(
            ram_gb=args.ram_gb, ncpu=args.ncpu,
            page_size_bytes=args.page_mb * MB,
        ),
        supervisor=SupervisorConfig(),
        rollout=rollout,
        checkpoint_every_s=args.checkpoint_every,
        spool_dir=args.spool_dir,
    ))
    server = FleetdServer(
        engine, args.socket, tick_interval_s=args.tick_interval,
    )
    print(f"fleetd listening on {args.socket} "
          f"(seed {args.seed}, tick every {args.tick_interval}s); "
          "stop with `repro fleetd stop` or SIGINT")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    finally:
        engine.close()
    print("fleetd stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TMO (ASPLOS '22) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="show the application catalog")
    sub.add_parser("list-ssds", help="show the SSD device catalog")
    sub.add_parser("cost-table", help="show Figure 1's cost trends")

    run = sub.add_parser("run-host",
                         help="simulate one host under Senpai")
    run.add_argument("--app", default="Feed",
                     help="application name (see list-apps)")
    run.add_argument("--backend", default=None,
                     choices=["zswap", "ssd", "tiered", "none"],
                     help="offload backend (default: app's preference)")
    run.add_argument("--duration", type=float, default=1800.0,
                     help="simulated seconds (default 1800)")
    run.add_argument("--ram-gb", type=float, default=4.0)
    run.add_argument("--ncpu", type=int, default=16)
    run.add_argument("--page-mb", type=int, default=1,
                     help="simulated page granularity in MiB")
    run.add_argument("--size-scale", type=float, default=0.05,
                     help="fraction of the production footprint")
    run.add_argument("--seed", type=int, default=1234)

    ckpt = sub.add_parser(
        "run",
        help="checkpointed long run: snapshot periodically, resume "
             "a killed run bit-identically",
    )
    ckpt.add_argument("--app", default="Feed",
                      help="application name (ignored with --resume)")
    ckpt.add_argument("--backend", default=None,
                      choices=["zswap", "ssd", "tiered", "none"])
    ckpt.add_argument("--duration", type=float, default=1800.0,
                      help="total simulated seconds, including any "
                           "already covered by a resumed snapshot")
    ckpt.add_argument("--ram-gb", type=float, default=4.0)
    ckpt.add_argument("--ncpu", type=int, default=16)
    ckpt.add_argument("--page-mb", type=int, default=1)
    ckpt.add_argument("--size-scale", type=float, default=0.05)
    ckpt.add_argument("--seed", type=int, default=1234)
    ckpt.add_argument("--checkpoint-every", type=float, default=None,
                      metavar="N",
                      help="snapshot every N simulated seconds")
    ckpt.add_argument("--checkpoint-path",
                      default="tmo-checkpoint.json",
                      help="where snapshots are written")
    ckpt.add_argument("--resume", default=None, metavar="PATH",
                      help="restore this snapshot and continue")

    ab = sub.add_parser(
        "run-ab", help="A/B two backends on identically seeded hosts"
    )
    ab.add_argument("--app", default="Feed")
    ab.add_argument("--control", default="none",
                    choices=["zswap", "ssd", "tiered", "nvm", "cxl",
                             "none"])
    ab.add_argument("--treatment", default="zswap",
                    choices=["zswap", "ssd", "tiered", "nvm", "cxl",
                             "none"])
    ab.add_argument("--duration", type=float, default=1800.0)
    ab.add_argument("--ram-gb", type=float, default=4.0)
    ab.add_argument("--ncpu", type=int, default=16)
    ab.add_argument("--page-mb", type=int, default=1)
    ab.add_argument("--size-scale", type=float, default=0.05)
    ab.add_argument("--seed", type=int, default=1234)

    chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection scenarios under invariants",
    )
    chaos.add_argument("--seed", type=int, default=1,
                       help="seed for a single run (ignored with --seeds)")
    chaos.add_argument("--seeds", type=int, nargs="+", default=None,
                       help="sweep several seeds; nonzero exit on any FAIL")
    chaos.add_argument("--duration", type=float, default=None,
                       help="simulated seconds per run (default 900; "
                            "240 with --fleet)")
    chaos.add_argument("--ram-gb", type=float, default=1.0)
    chaos.add_argument("--ncpu", type=int, default=8)
    chaos.add_argument("--extra-events", type=int, default=6,
                       help="random fault windows beyond the guaranteed "
                            "breaker storm")
    chaos.add_argument("--hang-timeout", type=float, default=20.0,
                       help="supervisor hang-kill threshold in simulated "
                            "seconds (default 20)")
    chaos.add_argument("--fleet", action="store_true",
                       help="storm a parallel fleet with worker "
                            "crash/hang/slow faults and assert the "
                            "graceful-degradation verdict")
    chaos.add_argument("--fleetd", action="store_true",
                       help="storm the fleetd control plane: guarded "
                            "rollouts under controller/worker faults, "
                            "kill switch, deterministic digests")
    chaos.add_argument("--workers", type=int, default=3,
                       help="worker processes for --fleet (default 3)")
    chaos.add_argument("--worker-faults", type=int, default=3,
                       help="worker fault events per --fleet/--fleetd "
                            "storm (default 3)")
    chaos.add_argument("--controller-faults", type=int, default=3,
                       help="controller fault events per --fleetd "
                            "storm (default 3)")
    chaos.add_argument("--out", default=None, metavar="PATH",
                       help="where --fleet/--fleetd write the "
                            "versioned verdict JSON (default "
                            "chaos-fleet-verdict.json / "
                            "chaos-fleetd-verdict.json)")

    fleet = sub.add_parser(
        "fleet",
        help="run a fleet rollout through the resilience runtime and "
             "report per-app savings",
    )
    fleet.add_argument("--apps", nargs="+",
                       default=["Feed", "Web", "Cache"],
                       help="applications to roll out (see list-apps)")
    fleet.add_argument("--count", type=int, default=2,
                       help="hosts per application (default 2)")
    fleet.add_argument("--duration", type=float, default=600.0,
                       help="simulated seconds per host (default 600)")
    fleet.add_argument("--ram-gb", type=float, default=1.0)
    fleet.add_argument("--ncpu", type=int, default=8)
    fleet.add_argument("--page-mb", type=int, default=1)
    fleet.add_argument("--size-scale", type=float, default=0.01,
                       help="fraction of the production footprint")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1: serial)")
    fleet.add_argument("--max-attempts", type=int, default=None,
                       help="resilience: tries per host before "
                            "quarantine (default 3)")
    fleet.add_argument("--deadline-min-s", type=float, default=None,
                       help="resilience: floor on the per-host "
                            "wall-clock deadline (default 60)")
    fleet.add_argument("--checkpoint-every-sim-s", type=float,
                       default=None, metavar="N",
                       help="resilience: spool a snapshot every N "
                            "simulated seconds so retries resume "
                            "instead of rerunning (default: off)")

    fleetd = sub.add_parser(
        "fleetd",
        help="the fleet control-plane daemon: live host registration "
             "and guarded policy rollouts over a Unix socket",
    )
    fleetd_sub = fleetd.add_subparsers(dest="fleetd_command",
                                       required=True)

    fd_start = fleetd_sub.add_parser(
        "start", help="run the daemon (blocks until `fleetd stop`)"
    )
    fd_start.add_argument("--socket", default="tmo-fleetd.sock",
                          help="Unix socket path "
                               "(default tmo-fleetd.sock)")
    fd_start.add_argument("--seed", type=int, default=7)
    fd_start.add_argument("--ram-gb", type=float, default=0.25,
                          help="RAM per registered host (default 0.25)")
    fd_start.add_argument("--ncpu", type=int, default=4)
    fd_start.add_argument("--page-mb", type=int, default=1)
    fd_start.add_argument("--tick-interval", type=float, default=0.05,
                          help="wall seconds per simulated tick "
                               "(default 0.05)")
    fd_start.add_argument("--checkpoint-every", type=float,
                          default=60.0, metavar="N",
                          help="spool host snapshots every N simulated "
                               "seconds (default 60)")
    fd_start.add_argument("--spool-dir", default=None,
                          help="snapshot spool directory (default: a "
                               "private temporary directory)")
    fd_start.add_argument("--canary-frac", type=float, default=0.25,
                          help="fraction of hosts in the canary wave")
    fd_start.add_argument("--wave-frac", type=float, default=0.5,
                          help="fraction of remaining hosts per wave")
    fd_start.add_argument("--baseline-s", type=float, default=60.0,
                          help="pre-rollout baseline window "
                               "(simulated seconds)")
    fd_start.add_argument("--soak-s", type=float, default=60.0,
                          help="soak time before each wave's health "
                               "gate (simulated seconds)")

    def _fd_client_parser(name, help_text):
        p = fleetd_sub.add_parser(name, help=help_text)
        p.add_argument("--socket", default="tmo-fleetd.sock",
                       help="daemon socket path "
                            "(default tmo-fleetd.sock)")
        return p

    _fd_client_parser("status", "print the daemon's fleet status JSON")

    fd_reg = _fd_client_parser(
        "register", "admit a host into the running fleet"
    )
    fd_reg.add_argument("host_id", help="new host id ([A-Za-z0-9._-])")
    fd_reg.add_argument("--app", default="Feed",
                        help="application (see list-apps)")
    fd_reg.add_argument("--policy", default=None,
                        choices=["senpai", "autotune", "gswap"],
                        help="initial policy (default: the fleet's "
                             "committed policy)")
    fd_reg.add_argument("--set", action="append", metavar="K=V",
                        help="policy parameter (repeatable)")
    fd_reg.add_argument("--size-scale", type=float, default=0.003,
                        help="fraction of the production footprint")
    fd_reg.add_argument("--region", default="default",
                        help="placement region label; rollups fold "
                             "host -> region -> fleet and wave "
                             "planning never makes one region "
                             "all-canary (default: 'default')")

    fd_dereg = _fd_client_parser(
        "deregister", "remove a host from the fleet"
    )
    fd_dereg.add_argument("host_id")

    fd_roll = _fd_client_parser(
        "rollout", "start a guarded policy rollout"
    )
    fd_roll.add_argument("--policy", required=True,
                         choices=["senpai", "autotune", "gswap"])
    fd_roll.add_argument("--set", action="append", metavar="K=V",
                         help="policy parameter (repeatable)")
    fd_roll.add_argument("--hosts", nargs="+", default=None,
                         help="target hosts (default: whole fleet)")
    fd_roll.add_argument("--wait", action="store_true",
                         help="drive simulated ticks until the rollout "
                              "reaches a terminal state; exit nonzero "
                              "unless it succeeded")
    fd_roll.add_argument("--max-wait-ticks", type=int, default=5000,
                         help="tick budget for --wait (default 5000)")
    fd_roll.add_argument("--wait-step-ticks", type=int, default=50,
                         help="ticks advanced per --wait poll "
                              "(default 50)")
    fd_roll.add_argument("--out", default=None, metavar="PATH",
                         help="write the RolloutResult JSON envelope "
                              "here")

    fd_rs = _fd_client_parser(
        "rollout-status", "print one rollout's RolloutResult envelope"
    )
    fd_rs.add_argument("--id", type=int, required=True,
                       help="rollout id")

    _fd_client_parser("rollback",
                      "abort the active rollout, reverting its hosts")
    _fd_client_parser("kill-switch",
                      "revert every in-flight rollout and freeze the "
                      "fleet")

    fd_rq = _fd_client_parser(
        "reset-quarantine",
        "manually un-quarantine a host's supervised controller",
    )
    fd_rq.add_argument("host_id")

    fd_metrics = _fd_client_parser(
        "metrics",
        "print the read-only host/region/fleet metric rollup envelope",
    )
    fd_metrics.add_argument("--window", type=float, default=60.0,
                            help="trailing window per host "
                                 "(simulated seconds, default 60)")
    fd_metrics.add_argument("--out", default=None, metavar="PATH",
                            help="also write the validated envelope "
                                 "here (the CI artifact)")

    fd_top = _fd_client_parser(
        "top", "rank hosts by a rollup signal's window mean"
    )
    fd_top.add_argument("--signal", default="psi_mem_some",
                        help="signal to rank by (psi_mem_some, "
                             "psi_io_some, refault_rate, "
                             "promotion_rate, swap_bytes, zswap_bytes)")
    fd_top.add_argument("-n", type=int, default=5,
                        help="how many hosts (default 5)")
    fd_top.add_argument("--window", type=float, default=60.0,
                        help="trailing window per host "
                             "(simulated seconds, default 60)")

    fd_run = _fd_client_parser(
        "run", "advance the daemon's simulated clock synchronously"
    )
    fd_run.add_argument("--ticks", type=int, default=60,
                        help="ticks to advance (default 60)")

    _fd_client_parser("stop", "shut the daemon down cleanly")

    ce = sub.add_parser(
        "crash-equivalence",
        help="assert checkpoint -> kill -> restore -> continue matches "
             "the uninterrupted run digest-for-digest",
    )
    ce.add_argument("--seed", type=int, default=1,
                    help="seed for a single run (ignored with --seeds)")
    ce.add_argument("--seeds", type=int, nargs="+", default=None,
                    help="sweep several seeds; nonzero exit on any FAIL")
    ce.add_argument("--duration", type=float, default=600.0,
                    help="simulated seconds per run (default 600)")
    ce.add_argument("--controller-faults", type=int, default=2,
                    help="controller crash/hang events injected against "
                         "the supervised controller")
    ce.add_argument("--workers", type=int, default=1,
                    help="run a --seeds sweep across this many worker "
                         "processes (default 1: serial)")

    bench = sub.add_parser(
        "bench",
        help="run the benchmark matrix; write BENCH_5.json and "
             "optionally gate against a baseline",
    )
    bench.add_argument("--out", default="BENCH_5.json",
                       help="where the report is written "
                            "(default BENCH_5.json)")
    bench.add_argument("--check", default=None, metavar="BASELINE",
                       help="compare against this baseline report and "
                            "exit nonzero on regression")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="allowed relative drop of a normalized "
                            "score vs. baseline (default 0.20)")
    bench.add_argument("--quick", action="store_true",
                       help="shrink every scenario (smoke runs; too "
                            "noisy to commit as a baseline)")
    bench.add_argument("--seed", type=int, default=None,
                       help="scenario seed (default: the canonical "
                            "bench seed)")
    bench.add_argument("--workers", type=int, default=4,
                       help="worker processes for the parallel fleet "
                            "scenario (default 4)")
    bench.add_argument("--profile", action="store_true",
                       help="instead of the scenario matrix, run the "
                            "tick microbench under cProfile and write "
                            "the per-function tick-share profile "
                            "(default out: BENCH_profile.json) for "
                            "'tmo-lint --flow --profile'")
    bench.add_argument("--profile-steps", type=int, default=2000,
                       help="ticks to profile with --profile "
                            "(default 2000)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list-apps": _cmd_list_apps,
        "list-ssds": _cmd_list_ssds,
        "cost-table": _cmd_cost_table,
        "run-host": _cmd_run_host,
        "run": _cmd_run,
        "run-ab": _cmd_run_ab,
        "chaos": _cmd_chaos,
        "fleet": _cmd_fleet,
        "fleetd": _cmd_fleetd,
        "crash-equivalence": _cmd_crash_equivalence,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
