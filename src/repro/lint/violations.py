"""The finding type shared by every rule, the engine and the CLI."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class Violation:
    """One finding at one source location.

    Attributes:
        path: file path as given to the engine (posix separators).
        line: 1-based physical line of the offending node.
        col: 0-based column offset.
        rule_id: the ``TMOxxx`` identifier of the rule that fired.
        message: human-readable description with the suggested fix.
        snippet: the stripped source line, used by the baseline
            mechanism so entries survive line-number drift.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    snippet: str = field(default="", compare=False)

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"

    def as_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
