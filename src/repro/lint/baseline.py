"""The checked-in baseline: grandfathered findings that do not fail CI.

A baseline entry identifies a finding by ``(path, rule, stripped
source line text)`` rather than by line number, so entries survive
unrelated edits above them. Entries are consumed as a multiset: two
identical offending lines need two entries. Stale entries (nothing
matched them) are reported so the baseline shrinks over time instead
of fossilising.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.lint.violations import Violation

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def _fingerprint(violation: Violation) -> Fingerprint:
    return (violation.path, violation.rule_id, violation.snippet)


def load_baseline(path: Path) -> "Counter[Fingerprint]":
    """Load a baseline file into a fingerprint multiset."""
    data = json.loads(path.read_text())
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} "
            f"in {path}"
        )
    counts: "Counter[Fingerprint]" = Counter()
    for entry in data.get("entries", []):
        key = (entry["path"], entry["rule"], entry["text"])
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, violations: Iterable[Violation]) -> int:
    """Write the violations as the new baseline; returns entry count."""
    counts: "Counter[Fingerprint]" = Counter(
        _fingerprint(v) for v in violations
    )
    entries = [
        {"path": fp[0], "rule": fp[1], "text": fp[2], "count": count}
        for fp, count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return sum(counts.values())


def apply_baseline(
    violations: List[Violation], baseline: "Counter[Fingerprint]"
) -> Tuple[List[Violation], int]:
    """Split findings into (new, matched-count); stale = leftovers.

    Returns the violations not covered by the baseline and the number
    of baseline entries left unused (stale).
    """
    remaining = Counter(baseline)
    fresh: List[Violation] = []
    for violation in violations:
        key = _fingerprint(violation)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(violation)
    stale = sum(count for count in remaining.values() if count > 0)
    return fresh, stale
