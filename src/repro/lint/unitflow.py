"""Interprocedural unit-flow analysis (rules TMO009-TMO011).

TMO004 checks one statement at a time: it flags ``a_bytes + b_pages``
only when both operands *spell* their unit. Real unit bugs cross
assignments and function boundaries — a pages quantity flows through a
local, a return value or a call argument and is consumed as bytes three
modules away. This pass tracks units through those paths.

The unit lattice
----------------

Canonical units form a small lattice: the data amounts (``bytes`` and
its scale variants ``kb``/``mb``/``gb``/``tb``), ``pages``,
``entries``, the time units (``s``/``ms``/``us``/``ns``), rates
(``bytes_per_s``, ``pages_per_s``, generic ``per_s``), the
dimensionless units ``ratio`` and ``count``, and ``unknown`` (no
information — the lattice bottom, absorbed by everything else).

Units are inferred from name suffixes (``heap_bytes``), numeric
literals (``count``), and arithmetic:

* ``+``/``-``/comparisons keep the operands' common unit; a
  dimensionless operand is absorbed (``x_bytes + 1`` is bytes);
* ``*`` by ``count``/``ratio`` keeps the unit; a rate times a time
  yields the rate's numerator (``bw_bytes_per_s * dt_s`` is bytes);
  any other dimensioned product changes dimension and becomes unknown
  (``n_pages * page_size_bytes`` is a deliberate conversion);
* ``/`` of equal units is a ``ratio``; an amount over a time is a
  rate; division by ``count``/``ratio`` keeps the unit.

Propagation is two-phase so results are cacheable per file: phase A
(:func:`collect`) walks one module and records *symbolic* unit
expressions — JSON-serialisable trees whose leaves are constants,
parameters, or calls into other project functions. Phase B
(:func:`check`) evaluates those trees against every module's summary,
substituting call arguments into callee return expressions, and emits:

* **TMO009** ``unit-mismatch-arith`` — an addition, subtraction,
  comparison or min/max whose operands carry different dimensioned
  units through the flow (sites where both units are spelled inline
  are left to TMO004);
* **TMO010** ``unit-mismatch-call`` — an argument whose inferred unit
  contradicts the unit suffix of the parameter it binds to, including
  dataclass constructor fields;
* **TMO011** ``unit-lost-conversion`` — an assignment to a
  unit-suffixed name whose right-hand side carries a *different*
  dimensioned unit with no conversion arithmetic in between
  (``cap_bytes = spare_pages``).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.astutil import unit_of
from repro.lint.callgraph import (
    ModuleInfo,
    ModuleResolver,
    ProjectIndex,
    collect_self_attr_classes,
)
from repro.lint.registry import FileContext, LintRule, register
from repro.lint.violations import Violation

# ----------------------------------------------------------------------
# the unit lattice

DATA_UNITS = frozenset({"bytes", "kb", "mb", "gb", "tb"})
TIME_UNITS = frozenset({"s", "ms", "us", "ns"})
RATE_UNITS = frozenset({"per_s", "bytes_per_s", "pages_per_s"})
#: Units whose silent mixing is always a bug.
DIMENSIONED = frozenset(
    DATA_UNITS | TIME_UNITS | {"pages", "entries"} | RATE_UNITS
)
DIMENSIONLESS = frozenset({"ratio", "count"})

#: astutil suffix tokens → lattice units (astutil keeps the historical
#: token names; the lattice canonicalises them).
_CANON = {
    "frac": "ratio",
    "per_s": "per_s",
    "pbw": None,  # device-endurance totals mix freely with budgets
}

#: Names that *are* a data-scale token with no stem (``MB = 1 << 20``)
#: are multiplier constants, not quantities; ``4 * MB`` is a conversion
#: into bytes, not a value measured in megabytes.
_SCALE_CONSTANTS = frozenset(
    {"kb", "kib", "mb", "mib", "gb", "gib", "tb", "tib"}
)


def unit_of_name(name: str) -> Optional[str]:
    """Lattice unit carried by ``name``'s suffix, or None (unknown)."""
    lowered = name.lower().strip("_")
    if lowered in _SCALE_CONSTANTS:
        return None
    token = unit_of(lowered)
    if token is None:
        return None
    return _CANON.get(token, token)


def _rate_family(unit: str) -> bool:
    return unit in RATE_UNITS


def units_conflict(a: Optional[str], b: Optional[str]) -> bool:
    """Whether mixing ``a`` and ``b`` additively is a unit bug."""
    if a is None or b is None or a == b:
        return False
    if a not in DIMENSIONED or b not in DIMENSIONED:
        return False
    # A generic rate does not conflict with a specific one.
    if _rate_family(a) and _rate_family(b) and "per_s" in (a, b):
        return False
    return True


def binding_conflict(declared: Optional[str], actual: Optional[str]) -> bool:
    """Conflict rule for call arguments and assignments.

    Stricter than :func:`units_conflict`: handing a dimensioned value
    to a ``ratio`` slot (or vice versa) is also flagged — a fraction
    is never interchangeable with bytes.
    """
    if declared is None or actual is None or declared == actual:
        return False
    strict = DIMENSIONED | {"ratio"}
    if declared not in strict or actual not in strict:
        return False
    if (
        _rate_family(declared)
        and _rate_family(actual)
        and "per_s" in (declared, actual)
    ):
        return False
    return True


def join_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Least upper bound for ``min``/``max``/merged returns."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a == "count":
        return b
    if b == "count":
        return a
    return None


def add_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a in DIMENSIONLESS:
        return b
    if b in DIMENSIONLESS:
        return a
    return None  # conflicting: the site is flagged, result is unknown


#: rate * time -> amount products recognised by :func:`mul_units`.
_RATE_AMOUNTS = {"bytes_per_s": "bytes", "pages_per_s": "pages"}


def mul_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a is None or b is None:
        return None
    if a in DIMENSIONLESS and b in DIMENSIONLESS:
        # Scaling a count by a fraction still counts things.
        return "ratio" if a == b == "ratio" else "count"
    if a in DIMENSIONLESS:
        return b
    if b in DIMENSIONLESS:
        return a
    for rate, other in ((a, b), (b, a)):
        if other in TIME_UNITS and rate in _RATE_AMOUNTS:
            return _RATE_AMOUNTS[rate]
    return None  # dimension changed (a conversion), give up


def div_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a is None or b is None:
        return None
    if b == "count" or b == "ratio":
        return a
    if a == b:
        return "ratio"
    if b in TIME_UNITS:
        if a in DATA_UNITS:
            return "bytes_per_s" if a == "bytes" else "per_s"
        if a == "pages":
            return "pages_per_s"
        if a in ("entries", "count"):
            return "per_s"
    return None


# ----------------------------------------------------------------------
# symbolic unit expressions (JSON-serialisable)
#
#   ["u", unit]                      constant (unit may be None)
#   ["p", index]                     parameter of the current function
#   ["c", key, bound, [args], {kw}]  call into a project function
#   ["b", op, left, right]           arithmetic ("+", "*", "/", "%")
#   ["j", [exprs]]                   join (min/max, merged returns)

UNKNOWN: List[Any] = ["u", None]


def _is_const(expr: Sequence[Any]) -> bool:
    return expr[0] == "u"


class _FunctionFlow:
    """Phase-A walker for one function (or the module top level)."""

    def __init__(
        self,
        module: ModuleInfo,
        resolver: ModuleResolver,
        lines: List[str],
        key: str,
        params: List[str],
        self_class: Optional[str],
        self_attr_classes: Dict[str, str],
        out: Dict[str, Any],
    ) -> None:
        self.module = module
        self.resolver = resolver
        self.lines = lines
        self.key = key
        self.params = params
        self.self_class = self_class
        self.self_attr_classes = self_attr_classes
        self.out = out
        self.env: Dict[str, List[Any]] = {}
        self.local_classes: Dict[str, str] = {}
        self.returns: List[List[Any]] = []
        self._seen_records: Set[Tuple[str, int, int, str]] = set()
        for i, name in enumerate(params):
            declared = unit_of_name(name)
            self.env[name] = ["u", declared] if declared else ["p", i]

    # -- recording -----------------------------------------------------

    def _snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _record(self, bucket: str, node: ast.AST, **payload: Any) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        # Expressions are re-analysed when reached along several
        # statement paths; one site yields one record.
        tag = str(payload.get("op") or payload.get("key")
                  or payload.get("target") or "")
        dedupe = (bucket, line, col, tag)
        if dedupe in self._seen_records:
            return
        self._seen_records.add(dedupe)
        payload.update(line=line, col=col, snippet=self._snippet(line))
        self.out.setdefault(bucket, []).append(payload)

    # -- expression analysis -------------------------------------------

    def unit_expr(self, node: ast.AST) -> Tuple[List[Any], bool]:
        """Return ``(symbolic unit expr, spelled_inline)``.

        ``spelled_inline`` is True when the unit is visible in the
        source at this very node (a unit-suffixed name), which is
        TMO004's territory.
        """
        if isinstance(node, ast.Name):
            unit = unit_of_name(node.id)
            if unit is not None:
                return ["u", unit], True
            if node.id in self.env:
                return self.env[node.id], False
            return UNKNOWN, False
        if isinstance(node, ast.Attribute):
            unit = unit_of_name(node.attr)
            return (["u", unit], unit is not None)
        if isinstance(node, ast.Subscript):
            expr, direct = self.unit_expr(node.value)
            return expr, direct
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return UNKNOWN, False
            if isinstance(node.value, (int, float)):
                return ["u", "count"], False
            return UNKNOWN, False
        if isinstance(node, ast.UnaryOp):
            return self.unit_expr(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop_expr(node), False
        if isinstance(node, ast.IfExp):
            body, _ = self.unit_expr(node.body)
            orelse, _ = self.unit_expr(node.orelse)
            return ["j", [body, orelse]], False
        if isinstance(node, ast.Call):
            return self._call_expr(node), False
        if isinstance(node, ast.Starred):
            return self.unit_expr(node.value)
        return UNKNOWN, False

    _OP_MAP = {
        ast.Add: "+", ast.Sub: "+",
        ast.Mult: "*",
        ast.Div: "/", ast.FloorDiv: "/",
        ast.Mod: "%",
    }

    def _binop_expr(self, node: ast.BinOp) -> List[Any]:
        op = self._OP_MAP.get(type(node.op))
        left, ldirect = self.unit_expr(node.left)
        right, rdirect = self.unit_expr(node.right)
        if op is None:
            return UNKNOWN
        if op == "+":
            self._record(
                "arith", node,
                op="-" if isinstance(node.op, ast.Sub) else "+",
                l=left, r=right, inline=int(ldirect and rdirect),
            )
        return ["b", op, left, right]

    _PASSTHROUGH = frozenset({"abs", "int", "float", "round"})
    _PASSTHROUGH_TAILS = frozenset({"floor", "ceil", "rint", "trunc"})
    _COUNT_CALLS = frozenset({"len", "sum", "ord", "id"})
    _JOIN_CALLS = frozenset({"min", "max"})

    def _call_expr(self, node: ast.Call) -> List[Any]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._JOIN_CALLS:
            exprs = []
            directs = []
            for arg in node.args:
                expr, direct = self.unit_expr(arg)
                exprs.append(expr)
                directs.append(direct)
            if len(exprs) >= 2:
                self._record(
                    "arith", node, op=func.id,
                    l=exprs[0], r=exprs[1],
                    inline=0,
                )
            return ["j", exprs] if exprs else UNKNOWN
        if isinstance(func, ast.Name) and func.id in self._PASSTHROUGH:
            if node.args:
                return self.unit_expr(node.args[0])[0]
            return UNKNOWN
        if isinstance(func, ast.Name) and func.id in self._COUNT_CALLS:
            return ["u", "count"]
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._PASSTHROUGH_TAILS
            and node.args
        ):
            return self.unit_expr(node.args[0])[0]

        resolved = self.resolver.resolve_call(
            node, self.local_classes, self.self_class, self.self_attr_classes
        )
        if resolved is None:
            return UNKNOWN
        kind, key, bound = resolved
        args = [self.unit_expr(a)[0] for a in node.args
                if not isinstance(a, ast.Starred)]
        kwargs = {
            kw.arg: self.unit_expr(kw.value)[0]
            for kw in node.keywords if kw.arg is not None
        }
        self._record(
            "calls", node, kind=kind, key=key, bound=int(bound),
            args=args, kwargs=kwargs,
        )
        if kind == "class":
            return UNKNOWN
        return ["c", key, int(bound), args, kwargs]

    # -- statement analysis --------------------------------------------

    def walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value, _ = self.unit_expr(stmt.value)
            convertible = _has_conversion(stmt.value)
            for target in stmt.targets:
                self._bind_target(stmt, target, value, convertible)
            self._visit_exprs(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value, _ = self.unit_expr(stmt.value)
                self._bind_target(
                    stmt, stmt.target, value, _has_conversion(stmt.value)
                )
                self._visit_exprs(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value, rdirect = self.unit_expr(stmt.value)
            self._visit_exprs(stmt.value)
            target_expr, _ = self.unit_expr(stmt.target)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                # TMO004 never sees augmented assignments, so these are
                # recorded even when both units are spelled inline.
                self._record(
                    "arith", stmt,
                    op="+", l=target_expr, r=value, inline=0,
                )
            if isinstance(stmt.target, ast.Name):
                op = self._OP_MAP.get(type(stmt.op))
                if op is not None and unit_of_name(stmt.target.id) is None:
                    self.env[stmt.target.id] = ["b", op, target_expr, value]
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                expr, _ = self.unit_expr(stmt.value)
                self.returns.append(expr)
                self._visit_exprs(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.unit_expr(stmt.value)
            self._visit_exprs(stmt.value)
        elif isinstance(stmt, ast.For):
            element, _ = self.unit_expr(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = element
            self._visit_exprs(stmt.iter)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_exprs(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._visit_exprs(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._visit_exprs(item.context_expr)
            self.walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_exprs(child)
        # Nested function/class definitions are analysed by the module
        # driver; other statements carry no unit information.

    def _bind_target(
        self,
        stmt: ast.stmt,
        target: ast.expr,
        value: List[Any],
        convertible: bool,
    ) -> None:
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            name = target.attr
        if name is None:
            return
        declared = unit_of_name(name)
        if declared is not None and not convertible:
            self._record(
                "assigns", stmt, target=name, unit=declared, value=value,
            )
        if isinstance(target, ast.Name):
            # Track the class of locals for method resolution.
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value_node = stmt.value
                if isinstance(value_node, ast.Call):
                    resolved = self.resolver.resolve_call(
                        value_node, self.local_classes,
                        self.self_class, self.self_attr_classes,
                    )
                    if resolved is not None and resolved[0] == "class":
                        self.local_classes[name] = resolved[1]
            self.env[name] = ["u", declared] if declared else value

    def _visit_exprs(self, node: ast.expr) -> None:
        """Record checks in sub-expressions ``unit_expr`` cannot reach.

        ``unit_expr`` recurses through arithmetic and call arguments,
        but comparisons and calls also hide inside conditions, ternary
        tests and boolean operators; this sweep records them too
        (``_record`` de-duplicates sites reached both ways).
        """
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self.unit_expr(child)
            elif isinstance(child, ast.Compare):
                operands = [child.left] + list(child.comparators)
                for op, left, right in zip(
                    child.ops, operands, operands[1:]
                ):
                    if isinstance(
                        op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                             ast.Eq, ast.NotEq)
                    ):
                        lexpr, ld = self.unit_expr(left)
                        rexpr, rd = self.unit_expr(right)
                        self._record(
                            "arith", child, op="cmp",
                            l=lexpr, r=rexpr, inline=int(ld and rd),
                        )

    def finish(self) -> Dict[str, Any]:
        if not self.returns:
            ret: Optional[List[Any]] = None
        elif len(self.returns) == 1:
            ret = self.returns[0]
        else:
            ret = ["j", self.returns]
        return {
            "params": self.params,
            "param_units": [unit_of_name(p) for p in self.params],
            "ret": ret,
        }


def _has_conversion(node: ast.expr) -> bool:
    """Whether the RHS contains arithmetic that could convert units."""
    for child in ast.walk(node):
        if isinstance(child, ast.BinOp) and isinstance(
            child.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Pow,
                       ast.LShift, ast.RShift)
        ):
            return True
    return False


# ----------------------------------------------------------------------
# phase A driver: one module → serialisable facts


def collect_module(
    module: ModuleInfo, index: ProjectIndex, source: str
) -> Dict[str, Any]:
    """Extract the unit-flow facts for one parsed module."""
    assert module.tree is not None
    resolver = ModuleResolver(index, module)
    lines = source.splitlines()
    functions: Dict[str, Dict[str, Any]] = {}
    records: Dict[str, Any] = {}

    def analyse(
        node: ast.AST,
        key: str,
        params: List[str],
        body: Sequence[ast.stmt],
        self_class: Optional[str],
        self_attrs: Dict[str, str],
    ) -> None:
        flow = _FunctionFlow(
            module, resolver, lines, key, params,
            self_class, self_attrs, records,
        )
        flow.walk_body(body)
        functions[key] = flow.finish()
        # Nested defs get their own (unsummarised) pass for checks.
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                stmt.lineno != getattr(node, "lineno", -1)
            ):
                nested = _FunctionFlow(
                    module, resolver, lines,
                    f"{key}.<local>.{stmt.name}", _params_of(stmt),
                    self_class, self_attrs, records,
                )
                nested.walk_body(stmt.body)

    toplevel = [
        stmt for stmt in module.tree.body
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    analyse(module.tree, f"{module.name}.<toplevel>", [], toplevel, None, {})

    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyse(
                stmt, f"{module.name}.{stmt.name}", _params_of(stmt),
                stmt.body, None, {},
            )
        elif isinstance(stmt, ast.ClassDef):
            class_key = f"{module.name}.{stmt.name}"
            self_attrs = collect_self_attr_classes(resolver, stmt)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    analyse(
                        item, f"{class_key}.{item.name}", _params_of(item),
                        item.body, class_key, self_attrs,
                    )

    classes = {
        info.key: {
            "params": info.constructor_params(),
            "param_units": [
                unit_of_name(p) for p in info.constructor_params()
            ],
        }
        for info in module.classes.values()
    }
    return {
        "functions": functions,
        "classes": classes,
        "arith": records.get("arith", []),
        "calls": records.get("calls", []),
        "assigns": records.get("assigns", []),
    }


def _params_of(func: ast.AST) -> List[str]:
    args = func.args
    return [a.arg for a in
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)]


# ----------------------------------------------------------------------
# phase B: evaluation over all module facts


class UnitEvaluator:
    """Evaluates symbolic unit expressions against global summaries."""

    def __init__(self, facts_by_path: Dict[str, Dict[str, Any]]) -> None:
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.classes: Dict[str, Dict[str, Any]] = {}
        for facts in facts_by_path.values():
            unit = facts.get("unit", {})
            self.functions.update(unit.get("functions", {}))
            self.classes.update(unit.get("classes", {}))

    def callee_signature(
        self, kind: str, key: str, bound: bool
    ) -> Optional[Tuple[List[str], List[Optional[str]]]]:
        """(param names, declared units) as seen by the call site."""
        if kind == "class":
            ctor = self.classes.get(key)
            if ctor is None:
                return None
            return ctor["params"], ctor["param_units"]
        func = self.functions.get(key)
        if func is None:
            return None
        params = list(func["params"])
        units = list(func["param_units"])
        if bound and params and params[0] in ("self", "cls"):
            params, units = params[1:], units[1:]
        elif params and params[0] in ("self", "cls") and not bound:
            # Methods reached without a receiver expression (rare);
            # keep self in place so positional binding stays aligned.
            pass
        return params, units

    def bind_args(
        self,
        kind: str,
        key: str,
        bound: bool,
        args: List[Any],
        kwargs: Dict[str, Any],
    ) -> List[Tuple[str, Optional[str], Any]]:
        """Yield (param name, declared unit, arg expr) bindings."""
        signature = self.callee_signature(kind, key, bound)
        if signature is None:
            return []
        params, units = signature
        out: List[Tuple[str, Optional[str], Any]] = []
        for i, arg in enumerate(args):
            if i < len(params):
                out.append((params[i], units[i], arg))
        for name, arg in kwargs.items():
            if name in params:
                idx = params.index(name)
                out.append((name, units[idx], arg))
        return out

    def evaluate(
        self,
        expr: Optional[Sequence[Any]],
        param_env: Optional[Dict[int, Optional[str]]] = None,
        stack: Optional[Set[str]] = None,
    ) -> Optional[str]:
        if expr is None:
            return None
        tag = expr[0]
        if tag == "u":
            return expr[1]
        if tag == "p":
            if param_env is not None:
                return param_env.get(expr[1])
            return None
        if tag == "b":
            _, op, left, right = expr
            lu = self.evaluate(left, param_env, stack)
            ru = self.evaluate(right, param_env, stack)
            if op == "+":
                return None if units_conflict(lu, ru) else add_units(lu, ru)
            if op == "*":
                return mul_units(lu, ru)
            if op == "/":
                return div_units(lu, ru)
            if op == "%":
                return lu
            return None
        if tag == "j":
            result: Optional[str] = "count"
            for sub in expr[1]:
                result = join_units(result, self.evaluate(sub, param_env, stack))
                if result is None:
                    return None
            return result
        if tag == "c":
            _, key, bound, args, kwargs = expr
            func = self.functions.get(key)
            if func is None or func.get("ret") is None:
                return None
            stack = stack or set()
            if key in stack:
                return None  # recursion: give up rather than loop
            callee_env: Dict[int, Optional[str]] = {}
            params = list(func["params"])
            units = list(func["param_units"])
            offset = 1 if bound and params and params[0] in ("self", "cls") else 0
            for i, param in enumerate(params):
                callee_env[i] = units[i]
            for i, arg in enumerate(args):
                idx = i + offset
                if idx < len(params) and callee_env.get(idx) is None:
                    callee_env[idx] = self.evaluate(arg, param_env, stack)
            for name, arg in kwargs.items():
                if name in params:
                    idx = params.index(name)
                    if callee_env.get(idx) is None:
                        callee_env[idx] = self.evaluate(arg, param_env, stack)
            return self.evaluate(
                func["ret"], callee_env, stack | {key}
            )
        return None


def check(
    facts_by_path: Dict[str, Dict[str, Any]],
) -> Iterator[Violation]:
    """Phase B: evaluate every recorded site and emit TMO009-TMO011."""
    evaluator = UnitEvaluator(facts_by_path)
    for path in sorted(facts_by_path):
        unit_facts = facts_by_path[path].get("unit", {})
        for record in unit_facts.get("arith", []):
            if record.get("inline"):
                continue  # both units spelled in source: TMO004's site
            lu = evaluator.evaluate(record["l"])
            ru = evaluator.evaluate(record["r"])
            if units_conflict(lu, ru):
                op = record["op"]
                what = {
                    "+": "addition/subtraction",
                    "-": "addition/subtraction",
                    "cmp": "comparison",
                    "min": "min()", "max": "max()",
                }.get(op, op)
                yield Violation(
                    path=path, line=record["line"], col=record["col"],
                    rule_id="TMO009",
                    message=(
                        f"{what} mixes units {lu!r} and {ru!r} flowing "
                        "through this expression; convert one side "
                        "explicitly before combining"
                    ),
                    snippet=record["snippet"],
                )
        for record in unit_facts.get("calls", []):
            bindings = evaluator.bind_args(
                record["kind"], record["key"], bool(record["bound"]),
                record["args"], record["kwargs"],
            )
            for param, declared, arg in bindings:
                actual = evaluator.evaluate(arg)
                if binding_conflict(declared, actual):
                    callee = record["key"].rpartition(".")[2]
                    if record["kind"] == "class":
                        callee = record["key"].rpartition(".")[2] + "()"
                    yield Violation(
                        path=path, line=record["line"], col=record["col"],
                        rule_id="TMO010",
                        message=(
                            f"argument for parameter {param!r} of "
                            f"{callee} carries unit {actual!r} but the "
                            f"parameter declares {declared!r}; convert "
                            "before the call"
                        ),
                        snippet=record["snippet"],
                    )
        for record in unit_facts.get("assigns", []):
            actual = evaluator.evaluate(record["value"])
            if binding_conflict(record["unit"], actual):
                yield Violation(
                    path=path, line=record["line"], col=record["col"],
                    rule_id="TMO011",
                    message=(
                        f"assignment binds a {actual!r} value to "
                        f"{record['target']!r} (declared "
                        f"{record['unit']!r}) with no conversion; "
                        "multiply/divide by the conversion factor or "
                        "rename the target"
                    ),
                    snippet=record["snippet"],
                )


# ----------------------------------------------------------------------
# rule registrations (flow rules run via `tmo-lint --flow`)


class FlowRule(LintRule):
    """Base for whole-program rules; inert in the per-file engine."""

    flow = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


@register
class UnitMismatchArithRule(FlowRule):
    rule_id = "TMO009"
    name = "unit-mismatch-arith"
    summary = (
        "arithmetic/comparison mixes units flowing across functions "
        "(flow pass)"
    )


@register
class UnitMismatchCallRule(FlowRule):
    rule_id = "TMO010"
    name = "unit-mismatch-call"
    summary = (
        "call argument unit contradicts the parameter's declared unit "
        "(flow pass)"
    )


@register
class UnitLostConversionRule(FlowRule):
    rule_id = "TMO011"
    name = "unit-lost-conversion"
    summary = (
        "assignment changes unit without a conversion (flow pass)"
    )
