"""The determinism & unit-discipline rules (TMO001-TMO008).

Every rule targets a failure mode this simulator has actually been
bitten by or is structurally exposed to; docs/LINTING.md anchors each
one to the design decision it protects.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import (
    DIMENSIONED_UNITS,
    dotted_name,
    expr_unit,
    is_ambiguous_name,
)
from repro.lint.registry import FileContext, LintRule, register
from repro.lint.violations import Violation

# ----------------------------------------------------------------------
# TMO001 — global RNG state


@register
class GlobalRngRule(LintRule):
    """Randomness must flow through ``repro.sim.rng.derive_rng``.

    Calls into ``numpy.random``'s module-level API (``default_rng``,
    ``seed``, ``rand``, ...) or the stdlib ``random`` module create or
    mutate RNG state outside the seed-derivation tree, so two runs with
    the same host seed can diverge. Components must accept a
    ``numpy.random.Generator`` or call ``derive_rng(seed, label)``.
    """

    rule_id = "TMO001"
    name = "no-global-rng"
    summary = (
        "np.random.* / random.* call bypasses derive_rng seed discipline"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.path_exempt():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve_call(node)
            if resolved is None:
                continue
            if resolved.startswith("numpy.random."):
                func = resolved[len("numpy.random."):]
                yield self.violation(
                    ctx, node,
                    f"call to numpy.random.{func} bypasses the seed "
                    "derivation tree; take a numpy.random.Generator or "
                    "use repro.sim.rng.derive_rng(seed, label)",
                )
            elif resolved.startswith("random.") or resolved == "random":
                yield self.violation(
                    ctx, node,
                    f"call into the stdlib random module ({resolved}) "
                    "uses hidden global RNG state; use "
                    "repro.sim.rng.derive_rng(seed, label) instead",
                )


# ----------------------------------------------------------------------
# TMO002 — wall-clock reads

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


@register
class WallClockRule(LintRule):
    """Simulated time only: no wall-clock or host-entropy reads.

    The simulator's clock (:class:`repro.sim.clock.Clock`) is the only
    source of time; reading the host's clock or entropy pool makes a
    run irreproducible and couples results to the machine it ran on.
    """

    rule_id = "TMO002"
    name = "no-wall-clock"
    summary = "wall-clock/entropy read inside the simulator"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.path_exempt():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve_call(node)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.violation(
                    ctx, node,
                    f"{resolved} reads the host's wall clock or entropy "
                    "pool; simulated components must use the sim Clock "
                    "(clock.now) so runs stay deterministic",
                )


# ----------------------------------------------------------------------
# TMO003 — iteration over unordered sets


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


class _SetIterVisitor(ast.NodeVisitor):
    """Tracks names bound to set expressions per scope and flags
    order-sensitive consumption of them."""

    _ORDER_SENSITIVE_WRAPPERS = ("list", "tuple", "iter", "enumerate")

    def __init__(self, rule: "SetIterationRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Violation] = []
        self._scopes: List[Set[str]] = [set()]

    # -- scope management

    def _push_scope(self, node: ast.AST) -> None:
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _push_scope
    visit_AsyncFunctionDef = _push_scope
    visit_Lambda = _push_scope

    def _set_names(self) -> Set[str]:
        names: Set[str] = set()
        for scope in self._scopes:
            names |= scope
        return names

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self._set_names())
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self._scopes[-1].add(target.id)
                else:
                    for scope in self._scopes:
                        scope.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            if _is_set_expr(node.value, self._set_names()):
                self._scopes[-1].add(node.target.id)
        self.generic_visit(node)

    # -- consumption sites

    def _flag(self, node: ast.AST, how: str) -> None:
        self.findings.append(
            self.rule.violation(
                self.ctx, node,
                f"{how} iterates a set in hash-randomised order; wrap "
                "it in sorted(...) to fix the traversal order",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self._set_names()):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            if _is_set_expr(gen.iter, self._set_names()):
                self._flag(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_DictComp = _check_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building another set from a set is order-insensitive.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in self._ORDER_SENSITIVE_WRAPPERS
            and node.args
            and _is_set_expr(node.args[0], self._set_names())
        ):
            self._flag(node, f"{func.id}(...) over a set")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and _is_set_expr(node.args[0], self._set_names())
        ):
            self._flag(node, "str.join over a set")
        self.generic_visit(node)


@register
class SetIterationRule(LintRule):
    """Iterating a set leaks hash-randomised order into results.

    Under ``PYTHONHASHSEED`` randomisation, two identical runs can
    traverse a set of strings in different orders, which perturbs any
    order-sensitive downstream state (RNG consumption, tie-breaks,
    metric emission order). Iterate ``sorted(the_set)`` instead.
    """

    rule_id = "TMO003"
    name = "no-set-iteration"
    summary = "iteration over an unordered set without sorted(...)"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        visitor = _SetIterVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings


# ----------------------------------------------------------------------
# TMO004 — unit discipline


@register
class UnitDisciplineRule(LintRule):
    """Quantities in public signatures must say their unit.

    A parameter called ``size`` or ``interval`` forces every caller to
    guess bytes-vs-pages or seconds-vs-milliseconds; the guess that is
    wrong by a factor of 1000 still "works". Public parameters,
    dataclass fields and instance attributes holding sizes, rates or
    durations must carry a unit suffix (``_bytes``, ``_pages``, ``_s``,
    ``_ms``, ...), and one arithmetic expression must never mix two
    different units.
    """

    rule_id = "TMO004"
    name = "unit-discipline"
    summary = "quantity without a unit suffix, or mixed-unit arithmetic"

    _CMP_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        allowed = set(self.rule_options_allowed(ctx))
        yield from self._check_signatures(ctx, allowed)
        yield from self._check_mixing(ctx)

    @staticmethod
    def rule_options_allowed(ctx: FileContext):
        return ctx.options.get("allowed_names", ())

    # -- part A: unit-less names in public signatures

    def _check_signatures(
        self, ctx: FileContext, allowed: Set[str]
    ) -> Iterator[Violation]:
        yield from self._walk_scope(ctx, ctx.tree, allowed, class_public=True)

    def _walk_scope(
        self,
        ctx: FileContext,
        node: ast.AST,
        allowed: Set[str],
        class_public: bool,
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                public = class_public and not child.name.startswith("_")
                if public:
                    yield from self._check_class_fields(ctx, child, allowed)
                yield from self._walk_scope(ctx, child, allowed, public)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                public = class_public and (
                    not child.name.startswith("_")
                    or child.name == "__init__"
                )
                if public:
                    yield from self._check_params(ctx, child, allowed)
                    yield from self._check_self_attrs(ctx, child, allowed)
                yield from self._walk_scope(ctx, child, allowed, class_public)
            else:
                yield from self._walk_scope(ctx, child, allowed, class_public)

    def _flag_name(self, ctx, node, name: str, where: str) -> Violation:
        return self.violation(
            ctx, node,
            f"{where} {name!r} holds a quantity but carries no unit "
            "suffix; append _bytes/_pages/_s/_ms (or another recognised "
            "unit) so callers cannot misread the scale",
        )

    def _check_params(
        self, ctx: FileContext, func, allowed: Set[str]
    ) -> Iterator[Violation]:
        args = func.args
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in params:
            name = arg.arg
            if name in ("self", "cls") or name.startswith("_"):
                continue
            if name in allowed:
                continue
            if is_ambiguous_name(name):
                yield self._flag_name(
                    ctx, arg, name, f"parameter of {func.name}()"
                )

    def _check_class_fields(
        self, ctx: FileContext, cls: ast.ClassDef, allowed: Set[str]
    ) -> Iterator[Violation]:
        for stmt in cls.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            elif isinstance(stmt, ast.Assign):
                targets = stmt.targets
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("_") or name in allowed:
                    continue
                if is_ambiguous_name(name):
                    yield self._flag_name(
                        ctx, target, name, f"field of class {cls.name}"
                    )

    def _check_self_attrs(
        self, ctx: FileContext, func, allowed: Set[str]
    ) -> Iterator[Violation]:
        for node in ast.walk(func):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    name = target.attr
                    if name.startswith("_") or name in allowed:
                        continue
                    if is_ambiguous_name(name):
                        yield self._flag_name(
                            ctx, target, name, "attribute self."
                        )

    # -- part B: mixed-unit arithmetic

    def _check_mixing(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            pairs: List[Tuple[ast.AST, ast.AST]] = []
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs.append((node.left, node.right))
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(
                    node.ops, operands, operands[1:]
                ):
                    if isinstance(op, self._CMP_OPS):
                        pairs.append((left, right))
            for left, right in pairs:
                lu, ru = expr_unit(left), expr_unit(right)
                if (
                    lu is not None
                    and ru is not None
                    and lu != ru
                    and lu in DIMENSIONED_UNITS
                    and ru in DIMENSIONED_UNITS
                ):
                    yield self.violation(
                        ctx, node,
                        f"expression mixes units {lu!r} and {ru!r}; "
                        "convert one operand explicitly before "
                        "adding/comparing",
                    )


# ----------------------------------------------------------------------
# TMO005 — mutable default arguments

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray",
     "collections.OrderedDict", "collections.defaultdict",
     "collections.deque", "collections.Counter"}
)


@register
class MutableDefaultRule(LintRule):
    """Mutable default arguments are shared across every call.

    A ``def f(items=[])`` accumulates state between calls — classic
    cross-run contamination that breaks run-to-run identity even with
    fixed seeds.
    """

    rule_id = "TMO005"
    name = "no-mutable-default"
    summary = "mutable default argument"

    def _is_mutable(self, node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _MUTABLE_FACTORIES:
                return True
            resolved = ctx.imports.resolve(name)
            if resolved in _MUTABLE_FACTORIES:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default, ctx):
                    yield self.violation(
                        ctx, default,
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the function",
                    )


# ----------------------------------------------------------------------
# TMO006 — float equality on sim time

_TIME_SUFFIXES = ("_s", "_sec", "_secs", "_seconds", "_ms", "_us",
                  "_ns", "_time", "_deadline")
_TIME_NAMES = frozenset({"now", "when", "deadline", "t0", "t1"})


def _time_like(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES):
        return name
    return None


@register
class FloatTimeEqualityRule(LintRule):
    """Accumulated sim-time must not be compared with ``==``.

    The clock accumulates float tick deltas, so ``now == 600.0`` is
    true or false depending on rounding of the accumulation path — an
    epsilon comparison or an integer tick index is required.
    """

    rule_id = "TMO006"
    name = "no-float-time-equality"
    summary = "==/!= comparison on accumulated simulation time"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                name = _time_like(left) or _time_like(right)
                if name is not None:
                    yield self.violation(
                        ctx, node,
                        f"float equality on sim-time value {name!r}; "
                        "accumulated float time needs an epsilon window "
                        "or an integer tick counter",
                    )


# ----------------------------------------------------------------------
# TMO007 — RNG shared across components

_RNG_PRODUCERS = ("derive_rng", "default_rng")


class _SharedRngVisitor(ast.NodeVisitor):
    def __init__(self, rule: "SharedRngRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Violation] = []
        self._scopes: List[Dict[str, int]] = [{}]  # rng name -> uses

    def _enter_function(self, node) -> None:
        scope: Dict[str, int] = {}
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            annotation = getattr(arg, "annotation", None)
            if annotation is not None:
                ann = dotted_name(annotation)
                if ann is not None and ann.split(".")[-1] == "Generator":
                    scope[arg.arg] = 0
        self._scopes.append(scope)
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    def _lookup(self, name: str) -> Optional[Dict[str, int]]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        produces_rng = False
        if isinstance(node.value, ast.Call):
            callee = dotted_name(node.value.func) or ""
            if callee.split(".")[-1] in _RNG_PRODUCERS:
                produces_rng = True
        for target in node.targets:
            if isinstance(target, ast.Name):
                if produces_rng:
                    self._scopes[-1][target.id] = 0
                else:
                    scope = self._lookup(target.id)
                    if scope is not None:
                        scope.pop(target.id, None)
        self.generic_visit(node)

    @staticmethod
    def _is_component_call(func: ast.AST) -> bool:
        name = dotted_name(func)
        if name is None:
            return False
        tail = name.split(".")[-1]
        return tail[:1].isupper() or tail.startswith("make_")

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_component_call(node.func):
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                if not isinstance(value, ast.Name):
                    continue
                scope = self._lookup(value.id)
                if scope is None:
                    continue
                scope[value.id] += 1
                if scope[value.id] > 1:
                    self.findings.append(
                        self.rule.violation(
                            self.ctx, node,
                            f"generator {value.id!r} is handed to more "
                            "than one component; each component must "
                            "own an independent stream — derive one "
                            "per component with derive_rng(seed, label)",
                        )
                    )
        self.generic_visit(node)


@register
class SharedRngRule(LintRule):
    """One ``Generator``, one component.

    Two components drawing from the same generator interleave their
    streams: adding a draw in one silently changes every number the
    other sees. Each component derives its own generator with a stable
    label instead.
    """

    rule_id = "TMO007"
    name = "no-shared-rng"
    summary = "one RNG object passed to multiple component constructors"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        visitor = _SharedRngVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings


# ----------------------------------------------------------------------
# TMO008 — swallowed exceptions


@register
class ExceptionSwallowRule(LintRule):
    """Invariant violations must not be silently swallowed.

    A bare ``except:`` (or ``except Exception: pass``) absorbs the
    assertion/accounting errors the substrate raises when its internal
    state goes bad — the run continues with corrupt state and produces
    a plausible-looking but wrong figure.
    """

    rule_id = "TMO008"
    name = "no-swallowed-exceptions"
    summary = "bare except, or except Exception with an empty body"

    _BROAD = frozenset({"Exception", "BaseException"})

    @staticmethod
    def _body_is_empty(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ) and stmt.value.value is Ellipsis:
                continue
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx, node,
                    "bare except: catches everything including "
                    "invariant violations; name the exception types "
                    "this handler is prepared to handle",
                )
                continue
            type_name = dotted_name(node.type)
            if (
                type_name is not None
                and type_name.split(".")[-1] in self._BROAD
                and self._body_is_empty(node.body)
            ):
                yield self.violation(
                    ctx, node,
                    f"except {type_name}: pass swallows every error "
                    "silently; handle or at least record the failure",
                )


# ----------------------------------------------------------------------
# TMO013 — no pickle/marshal serialization


@register
class OpaqueSerializationRule(LintRule):
    """State must serialize through the versioned snapshot format.

    ``pickle``/``marshal`` documents are neither versioned nor
    canonical: their bytes drift across interpreter versions, they
    silently skew when a class changes shape, and unpickling executes
    arbitrary code. Everything :mod:`repro.checkpoint` guarantees —
    schema-version refusal, digest integrity, bit-reproducible
    restores — an opaque binary blob cannot.
    """

    rule_id = "TMO013"
    name = "no-opaque-serialization"
    summary = "pickle/marshal serialization (non-versioned, opaque)"

    #: The opaque-serialization stdlib surface: pickle and its
    #: implementation aliases, marshal, and the pickle-backed shelve.
    _BANNED = frozenset({"pickle", "cPickle", "_pickle", "marshal",
                         "shelve"})

    def _message(self, module: str) -> str:
        return (
            f"{module} is non-versioned, non-deterministic "
            "serialization; snapshot state through repro.checkpoint's "
            "versioned, digest-checked format instead"
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._BANNED:
                        yield self.violation(
                            ctx, node, self._message(alias.name)
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in self._BANNED:
                    yield self.violation(
                        ctx, node, self._message(node.module)
                    )
