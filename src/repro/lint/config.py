"""Per-directory rule sets and per-rule options.

The pass runs over the whole tree but not with one hammer: the
simulator core gets every rule, benchmarks and examples get the
determinism rules, and tests get a relaxed set (tests legitimately
construct raw generators to probe components in isolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Any, Dict, FrozenSet, Tuple

from repro.lint.registry import RULES

#: Scope names used in :attr:`LintConfig.scope_rules`.
SCOPE_SRC = "src"
SCOPE_BENCHMARKS = "benchmarks"
SCOPE_EXAMPLES = "examples"
SCOPE_TESTS = "tests"
SCOPE_OTHER = "other"

_ALL_RULES = frozenset(
    {"TMO001", "TMO002", "TMO003", "TMO004",
     "TMO005", "TMO006", "TMO007", "TMO008",
     "TMO009", "TMO010", "TMO011", "TMO012",
     "TMO013", "TMO014", "TMO015", "TMO016",
     "TMO017", "TMO018", "TMO019", "TMO020",
     "TMO021"}
)

#: Rules enforced outside the simulator core: seed discipline and
#: hygiene, but not the public-API unit conventions (TMO004), the
#: sim-time comparison rule (TMO006) or the serialization-format rule
#: (TMO013), which target ``src/repro``.
#: The whole-program flow rules (TMO009-TMO012) apply everywhere:
#: unit bugs in benchmarks corrupt results just as surely as unit
#: bugs in the simulator. So do the hot-path rules (TMO017-TMO021):
#: a benchmark driving the simulator through a scalar fallback
#: measures the wrong thing.
_HARNESS_RULES = frozenset(
    {"TMO001", "TMO002", "TMO003", "TMO005", "TMO007", "TMO008",
     "TMO009", "TMO010", "TMO011", "TMO012", "TMO016",
     "TMO017", "TMO018", "TMO019", "TMO020", "TMO021"}
)

#: Tests probe components with hand-built RNGs and error paths, so only
#: the unconditional hygiene rules apply — plus metric-registry drift
#: (TMO016): a test recording or reading a misspelled metric name
#: silently asserts against an always-empty series.
_TEST_RULES = frozenset({"TMO005", "TMO008", "TMO016"})


@dataclass
class LintConfig:
    """Which rules run where, and with what options."""

    scope_rules: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Directory basenames skipped during recursive discovery (explicit
    #: file arguments are always linted, which is how the fixture tests
    #: exercise intentionally-bad files).
    exclude_dirs: Tuple[str, ...] = (
        "__pycache__", ".git", ".venv", "build", "dist",
        "lint_fixtures",
    )

    def scope_for(self, path: str) -> str:
        parts = PurePosixPath(path.replace("\\", "/")).parts
        if "tests" in parts:
            return SCOPE_TESTS
        if "benchmarks" in parts:
            return SCOPE_BENCHMARKS
        if "examples" in parts:
            return SCOPE_EXAMPLES
        if "src" in parts or "repro" in parts:
            return SCOPE_SRC
        return SCOPE_OTHER

    def rules_for(self, path: str) -> FrozenSet[str]:
        return self.scope_rules.get(self.scope_for(path), frozenset())

    def options_for(self, rule_id: str) -> Dict[str, Any]:
        return self.rule_options.get(rule_id, {})


def default_config() -> LintConfig:
    """The repo's checked-in configuration (documented in LINTING.md)."""
    unknown = _ALL_RULES - set(RULES)
    if unknown:  # pragma: no cover - registry/config drift guard
        raise RuntimeError(f"config names unregistered rules: {unknown}")
    return LintConfig(
        scope_rules={
            SCOPE_SRC: _ALL_RULES,
            SCOPE_BENCHMARKS: _HARNESS_RULES,
            SCOPE_EXAMPLES: _HARNESS_RULES,
            SCOPE_TESTS: _TEST_RULES,
            SCOPE_OTHER: _TEST_RULES,
        },
        rule_options={
            # The derivation root is the one legitimate default_rng call.
            "TMO001": {"exempt_path_suffixes": ("repro/sim/rng.py",)},
            # The sim clock module is the boundary where "time" is
            # defined; it never reads the wall clock, but the exemption
            # documents where one *would* be allowed to talk about it.
            # The fleet resilience runtime orchestrates *real* worker
            # processes around the simulation (deadline kills, retry
            # backoff), so its wall-clock reads and sleeps are the
            # product, not a determinism leak.
            # The fleetd server is the daemon shell around the pure
            # engine: its tick pacing (sleep) is likewise real-world
            # orchestration, never simulation input.
            "TMO002": {"exempt_path_suffixes": (
                "repro/sim/clock.py",
                "repro/core/fleetres.py",
                "repro/fleetd/server.py",
            )},
            "TMO004": {"allowed_names": frozenset()},
            # Determinism-taint sinks: anything feeding the metrics
            # pipeline or the CSV exports must be reproducible.
            "TMO012": {
                "sink_call_suffixes": (
                    "repro.sim.metrics.MetricsRecorder.record",
                    "repro.sim.metrics.Series.record",
                    "repro.analysis.export.to_csv_long",
                    "repro.analysis.export.to_csv_wide",
                ),
                "sink_method_names": ("record",),
            },
            # State contracts (LINTING.md "State contracts" section).
            "TMO014": {
                # Modules whose attribute mentions count as codec
                # coverage for checkpoint round-trips.
                "codec_modules": (
                    "repro.checkpoint.codec",
                    "repro.checkpoint.controllers",
                ),
                # Packages holding checkpointable simulation state.
                "state_roots": (
                    "repro.sim.",
                    "repro.core.",
                    "repro.backends.",
                    "repro.psi.",
                    "repro.workloads.",
                    "repro.faults.",
                ),
                # Classes the codec refuses wholesale at snapshot time
                # (trace workloads hold open recorders/replays), so
                # attribute-level coverage is moot.
                "exempt_class_suffixes": (
                    "workloads.trace.RecordingWorkload",
                    "workloads.trace.ReplayWorkload",
                ),
                # Per-class attribute allowlist for derived/scratch
                # state (equivalent to inline '# tmo-lint: transient').
                "transient_attrs": {},
            },
            "TMO015": {
                # Functions executed inside worker processes.
                "worker_entrypoints": (
                    "repro.core.fleetres.run_host_attempt",
                    "repro.core.fleetres._worker_main",
                ),
            },
            # Hot-path performance rules (LINTING.md "Hot paths").
            # All five share this option block; it lives under TMO017
            # so the flow-cache digest folds it in exactly once.
            "TMO017": {
                # Tick-loop entrypoints the hot region grows from.
                "entrypoints": (
                    "repro.sim.host.Host.step",
                    "repro.kernel.mm.MemoryManager.touch_batch",
                    "repro.kernel.mm.MemoryManager.kswapd",
                    "repro.kernel.reclaim.Reclaimer.reclaim",
                    "repro.kernel.idle.IdlePageTracker.scan",
                    "repro.kernel.idle.IdlePageTracker.cold_bytes",
                ),
                # Packages whose functions can join the hot region
                # (and be reported). Excludes repro.lint / repro.perf /
                # repro.faults / repro.analysis / repro.checkpoint:
                # tooling and cold paths by construction.
                "hot_roots": (
                    "repro.sim.",
                    "repro.kernel.",
                    "repro.psi.",
                    "repro.workloads.",
                    "repro.backends.",
                    "repro.core.",
                ),
                # --profile: escalate findings in (and require static
                # reachability of) functions at or above this share of
                # measured tick time.
                "profile_share_threshold": 0.05,
            },
            "TMO016": {
                "record_sink_suffixes": (
                    "repro.sim.metrics.MetricsRecorder.record",
                    "repro.sim.metrics.Series.record",
                ),
                "record_method_names": ("record",),
                "read_sink_suffixes": (
                    "repro.sim.metrics.MetricsRecorder.series",
                    "repro.sim.metrics.MetricsRecorder.summary",
                    "repro.sim.metrics.MetricsRecorder.get",
                    "repro.sim.metrics.MetricsRecorder.read_window",
                ),
                # "read_window" is distinctive; bare "get" is not
                # (every dict has one), so `get` reads only count when
                # the receiver resolves to MetricsRecorder above.
                "read_method_names": ("series", "summary",
                                      "read_window"),
            },
        },
    )
