"""The ``tmo-lint`` / ``python -m repro.lint`` command line.

Exit codes: 0 = clean, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

import subprocess

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.config import default_config
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    LintResult,
    iter_python_files,
    lint_paths,
)
from repro.lint.flow import DEFAULT_CACHE, analyze_flow
from repro.lint.registry import RULES
from repro.lint.violations import Violation

DEFAULT_PATHS = ("src", "benchmarks", "examples", "tests")
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tmo-lint",
        description=(
            "Determinism & unit-discipline static analysis for the TMO "
            "reproduction (rules TMO001-TMO021; see docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help=f"files or directories (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run, overriding the "
             "per-directory configuration (e.g. TMO001,TMO005)",
    )
    parser.add_argument(
        "--disable", metavar="RULES",
        help="comma-separated rule ids to switch off everywhere",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the whole-program analyses: unit-flow and "
             "determinism taint (TMO009-TMO012), state contracts "
             "(TMO013-TMO016) and hot-path performance "
             "(TMO017-TMO021)",
    )
    parser.add_argument(
        "--profile", type=Path, default=None, metavar="FILE",
        help="tick-share profile written by 'python -m repro bench "
             "--profile' (requires --flow): escalates findings in "
             "measured-hot functions and fails on hot-but-unanalyzed "
             "functions above the configured share threshold",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files changed relative to git HEAD "
             "(staged, unstaged and untracked); with --flow the "
             "analysis still reads the whole project for call "
             "resolution but reports only on changed files",
    )
    parser.add_argument(
        "--cache", type=Path, default=None, metavar="FILE",
        help=f"flow-analysis cache file (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="run the flow analysis without reading or writing a cache",
    )
    parser.add_argument(
        "--stats", type=Path, default=None, metavar="FILE",
        help="write a JSON rule-hit/cache-hit summary of the run to "
             "FILE (CI uploads it next to the flow cache)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return parser


def _parse_rule_list(
    parser: argparse.ArgumentParser, value: Optional[str]
) -> Optional[List[str]]:
    if value is None:
        return None
    rule_ids = [part.strip() for part in value.split(",") if part.strip()]
    unknown = [r for r in rule_ids if r not in RULES]
    if unknown:
        parser.error(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return rule_ids


def _git_changed_files(parser: argparse.ArgumentParser) -> List[Path]:
    """Python files changed vs HEAD (staged, unstaged, untracked)."""
    names = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            parser.error(f"--changed requires a git checkout: {exc}")
        names.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    return [
        path for path in (Path(name) for name in sorted(names))
        if path.suffix == ".py" and path.exists()
    ]


def _list_rules() -> None:
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        print(f"{rule_id}  {rule.name:<26} {rule.summary}")
    print(f"{PARSE_ERROR_RULE}  {'parse-error':<26} "
          "file could not be parsed (always enabled)")


def _write_stats(
    target: Path,
    violations: List[Violation],
    result: LintResult,
    flow_result,
    stale: int,
) -> None:
    """Dump a machine-readable summary of the run (``--stats``)."""
    rule_hits: dict = {}
    for violation in violations:
        rule_hits[violation.rule_id] = rule_hits.get(violation.rule_id, 0) + 1
    payload = {
        "files_checked": result.files_checked,
        "violations_total": len(violations),
        "rule_hits": dict(sorted(rule_hits.items())),
        "rule_wall_s": {
            rule_id: round(seconds, 6)
            for rule_id, seconds in sorted(result.rule_wall_s.items())
        },
        "stale_baseline_entries": stale,
        "flow": (
            {
                "files_checked": flow_result.files_checked,
                "cache_hits": flow_result.cache_hits,
                "cache_misses": flow_result.cache_misses,
                "pass_wall_s": {
                    name: round(seconds, 6)
                    for name, seconds in sorted(
                        flow_result.pass_wall_s.items()
                    )
                },
                "hot_unanalyzed": len(flow_result.hot_unanalyzed),
            }
            if flow_result is not None else None
        ),
    }
    target.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # grep does. Re-point stdout at devnull so the interpreter's
        # exit-time flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    select = _parse_rule_list(parser, args.select)
    disable = _parse_rule_list(parser, args.disable)

    paths = args.paths or [Path(p) for p in DEFAULT_PATHS]
    paths = [p for p in paths if p.exists()]
    if not paths:
        parser.error("none of the given paths exist")

    config = default_config()
    if disable:
        config.scope_rules = {
            scope: rules - set(disable)
            for scope, rules in config.scope_rules.items()
        }
        if select is not None:
            select = [r for r in select if r not in disable]

    profile = None
    if args.profile is not None:
        if not args.flow:
            parser.error("--profile requires --flow")
        from repro.lint.hotpath import ProfileError, load_profile
        try:
            profile = load_profile(args.profile)
        except ProfileError as exc:
            print(f"tmo-lint: error: {exc}", file=sys.stderr)
            return 2

    changed: Optional[set] = None
    if args.changed:
        changed = {p.resolve() for p in _git_changed_files(parser)}

    if changed is not None:
        lint_targets: List[Path] = [
            p for p in iter_python_files(paths, config)
            if p.resolve() in changed
        ]
    else:
        lint_targets = list(paths)

    result = lint_paths(lint_targets, config, select) if lint_targets \
        else LintResult()
    violations = list(result.violations)

    flow_result = None
    if args.flow:
        cache_path = None if args.no_cache else (
            args.cache or Path(DEFAULT_CACHE)
        )
        # The flow analysis always reads the full path set so cross-
        # module calls resolve; --changed only narrows what we report.
        flow_result = analyze_flow(
            paths, config, select, cache_path, profile=profile
        )
        flow_violations = flow_result.violations
        if changed is not None:
            flow_violations = [
                v for v in flow_violations
                if Path(v.path).resolve() in changed
            ]
        violations = list(dict.fromkeys(violations + flow_violations))
        violations.sort(key=Violation.sort_key)

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = Path(DEFAULT_BASELINE)

    if args.write_baseline:
        target = args.baseline or Path(DEFAULT_BASELINE)
        count = write_baseline(target, violations)
        print(f"wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {target}")
        return 0

    stale = 0
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read baseline {baseline_path}: {exc}")
        violations, stale = apply_baseline(violations, baseline)

    if args.stats is not None:
        _write_stats(args.stats, violations, result, flow_result, stale)

    hot_unanalyzed = (
        flow_result.hot_unanalyzed if flow_result is not None else []
    )

    if args.format == "json":
        print(json.dumps(
            {
                "violations": [v.as_json() for v in violations],
                "files_checked": result.files_checked,
                "stale_baseline_entries": stale,
                "hot_unanalyzed": hot_unanalyzed,
            },
            indent=2,
        ))
    else:
        for violation in violations:
            print(violation.format_text())
        for entry in hot_unanalyzed:
            print(
                f"{entry['path']}:{entry['line']}: [hot-unanalyzed] "
                f"{entry['key']} measured {entry['share']:.1%} of tick "
                "time but is not reachable in the static hot region; "
                "extend the TMO017 entrypoints or fix call resolution"
            )
        if not args.quiet:
            noun = "violation" if len(violations) == 1 else "violations"
            print(
                f"{len(violations)} {noun} in "
                f"{result.files_checked} files"
                + (f" ({stale} stale baseline entries)" if stale else "")
                + (
                    f" ({len(hot_unanalyzed)} hot-but-unanalyzed "
                    "functions)" if hot_unanalyzed else ""
                )
            )

    return 1 if violations or hot_unanalyzed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
