"""Shared AST helpers: dotted-name resolution and unit-suffix parsing."""

from __future__ import annotations

import ast
from typing import Dict, Optional

# ----------------------------------------------------------------------
# dotted names and import resolution


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Maps local aliases to fully-qualified module/object paths.

    Built from every ``import``/``from ... import`` in a module, so a
    call spelled ``np.random.default_rng(...)`` or ``pc()`` (after
    ``from time import perf_counter as pc``) resolves to its canonical
    dotted path regardless of aliasing.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: not a stdlib/numpy target
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}"

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Canonicalise the first segment of ``dotted`` via the imports.

        Returns None when the head was never imported — a bare local
        name, which the determinism rules must not flag.
        """
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(dotted_name(call.func))


# ----------------------------------------------------------------------
# unit suffixes (TMO004)

#: Recognised trailing unit/qualifier tokens, mapped to a canonical
#: unit. Names carrying any of these are considered unit-disciplined.
UNIT_SUFFIXES: Dict[str, str] = {
    # data amounts
    "bytes": "bytes", "byte": "bytes",
    "kb": "kb", "kib": "kb",
    "mb": "mb", "mib": "mb",
    "gb": "gb", "gib": "gb",
    "tb": "tb", "tib": "tb",
    "pages": "pages",
    "entries": "entries",
    # count-prefixed conventions (nbytes/npages read as "n bytes")
    "nbytes": "bytes",
    "npages": "pages",
    # time
    "s": "s", "sec": "s", "secs": "s", "second": "s", "seconds": "s",
    "ms": "ms",
    "us": "us",
    "ns": "ns",
    # dimensionless qualifiers (explicitly unitless is also discipline)
    "frac": "frac", "fraction": "frac", "ratio": "frac", "pct": "frac",
    # per-second conventions of this repo
    "rate": "per_s", "rps": "per_s", "iops": "per_s", "hz": "per_s",
    # device endurance (petabytes written)
    "pbw": "pbw",
}

#: Compound rate suffixes, matched before the single-token fallback —
#: ``x_bytes_per_s`` names a rate, not a duration (the naive rpartition
#: parse would read its last token, ``s``, as seconds).
RATE_SUFFIXES = (
    ("_bytes_per_s", "bytes_per_s"),
    ("_bytes_per_sec", "bytes_per_s"),
    ("_pages_per_s", "pages_per_s"),
    ("_pages_per_sec", "pages_per_s"),
    ("_per_s", "per_s"),
    ("_per_sec", "per_s"),
)

#: Units that denote a measurable quantity; mixing two *different*
#: members of this set in one +/- or comparison is a unit bug. The
#: generic ``per_s`` (``rate``, ``rps``, ``hz``…) is deliberately
#: absent: it mixes legitimately with any specific rate.
DIMENSIONED_UNITS = frozenset(
    {"bytes", "kb", "mb", "gb", "tb", "pages", "entries",
     "s", "ms", "us", "ns", "bytes_per_s", "pages_per_s"}
)

#: Name stems that denote a size/duration/capacity without saying in
#: what unit — the ambiguity TMO004 exists to eliminate.
AMBIGUOUS_STEMS = frozenset(
    {"size", "sizes", "capacity", "duration", "latency", "timeout",
     "interval", "delay", "period", "age", "length", "amount"}
)


def unit_of(name: str) -> Optional[str]:
    """The canonical unit carried by ``name``'s suffix, or None."""
    lowered = name.lower().rstrip("_")
    for suffix, unit in RATE_SUFFIXES:
        if lowered.endswith(suffix) or lowered == suffix[1:]:
            return unit
    return UNIT_SUFFIXES.get(lowered.rpartition("_")[2])


def is_ambiguous_name(name: str) -> bool:
    """True when ``name`` denotes a quantity but carries no unit."""
    cleaned = name.lower().strip("_")
    if not cleaned:
        return False
    if unit_of(cleaned) is not None:
        return False
    stem = cleaned.rpartition("_")[2]
    return stem in AMBIGUOUS_STEMS


def expr_unit(node: ast.AST) -> Optional[str]:
    """Infer the unit of an expression from its terminal identifier."""
    if isinstance(node, ast.Name):
        return unit_of(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of(node.attr)
    return None
