"""File discovery and per-file rule execution."""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint import hotpath as _hotpath  # noqa: F401  (TMO017-021)
from repro.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.lint import statecontract as _statecontract  # noqa: F401  (TMO014-016)
from repro.lint import taint as _taint  # noqa: F401  (registers TMO012)
from repro.lint import unitflow as _unitflow  # noqa: F401  (TMO009-011)
from repro.lint.config import LintConfig, default_config
from repro.lint.ignores import collect_ignores, is_suppressed
from repro.lint.registry import RULES, FileContext
from repro.lint.violations import Violation

#: Pseudo rule id for files that could not be parsed; always enabled.
PARSE_ERROR_RULE = "TMO000"


@dataclass
class LintResult:
    """Outcome of one engine run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    #: accumulated wall seconds per rule id across all files
    #: (surfaced by ``tmo-lint --stats`` as ``rule_wall_s``).
    rule_wall_s: Dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations


def iter_python_files(
    paths: Sequence[Path], config: LintConfig
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directory recursion honours ``config.exclude_dirs``; explicitly
    named files are always included.
    """
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                if any(
                    part in config.exclude_dirs
                    for part in relative.parts[:-1]
                ):
                    continue
                out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def lint_file(
    path: Path,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
    rule_wall: Optional[Dict[str, float]] = None,
) -> List[Violation]:
    """Lint one file.

    Args:
        path: the file to analyse.
        config: rule sets and options; the repo default when None.
        select: run exactly these rule ids, overriding the per-scope
            configuration (the CLI's ``--select``).
        rule_wall: when given, per-rule wall seconds are accumulated
            into it (``lint_paths`` threads the result's counter
            through here for ``--stats``).
    """
    config = config or default_config()
    rel = path.as_posix()
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError) as exc:
        return [
            Violation(
                path=rel,
                line=getattr(exc, "lineno", 1) or 1,
                col=(getattr(exc, "offset", 1) or 1) - 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"file could not be parsed: {exc}",
            )
        ]

    ignores, skip_file = collect_ignores(source)
    if skip_file:
        return []

    if select is not None:
        enabled = set(select)
    else:
        enabled = set(config.rules_for(rel))

    findings: List[Violation] = []
    for rule_id in sorted(enabled):
        rule_cls = RULES.get(rule_id)
        if rule_cls is None:
            raise ValueError(f"unknown rule id {rule_id!r}")
        ctx = FileContext(
            path=rel,
            tree=tree,
            source=source,
            options=config.options_for(rule_id),
        )
        start = time.perf_counter()  # lint: ignore[TMO002]
        for violation in rule_cls().check(ctx):
            if not is_suppressed(ignores, violation.line, rule_id):
                findings.append(violation)
        if rule_wall is not None:
            elapsed = time.perf_counter() - start  # lint: ignore[TMO002]
            rule_wall[rule_id] = rule_wall.get(rule_id, 0.0) + elapsed
    findings.sort(key=Violation.sort_key)
    return findings


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint files and directories; the programmatic entry point."""
    config = config or default_config()
    result = LintResult()
    for path in iter_python_files(paths, config):
        result.violations.extend(
            lint_file(path, config, select, rule_wall=result.rule_wall_s)
        )
        result.files_checked += 1
    result.violations.sort(key=Violation.sort_key)
    return result
