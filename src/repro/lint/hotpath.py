"""Hot-path performance analysis (rules TMO017-TMO021).

The tick loop is the product: fleet-scale claims only hold if
``Host.step`` stays fast, and the columnar-kernel roadmap keeps
replacing scalar per-page work with batched/vectorized kernels. This
pass is the static guardrail that keeps those wins from quietly
regressing. It runs as part of ``tmo-lint --flow`` with the same
two-phase scheme as the other flow passes: phase A
(:func:`collect_module`) records JSON-serialisable facts per file
(cached on disk by the flow driver), phase B (:func:`check`) evaluates
them whole-program.

**The hot region.** Phase B computes every function reachable from the
configured entrypoints (``Host.step``, ``MemoryManager.touch_batch``,
the reclaim/scan entrypoints) over the project call graph. Resolved
calls follow their exact edge; a reachable class constructor widens to
every method of the class (a hot function that builds an object may
call anything on it); and *unresolved* method calls — the
``hosted.workload.tick(...)`` shape the resolver cannot type — widen
by method name to every project method of that name under the
configured ``hot_roots`` package prefixes. The widening is what keeps
the static region honest against the profile cross-check below.
Findings are only reported inside the region, and only for functions
under ``hot_roots``.

**The rules.**

* **TMO017 scalar-page-loop** — a call, inside a loop in a hot
  function, to a scalar API that the batched-API registry
  (:mod:`repro.perf.batched`) maps to a batched equivalent. The
  batched implementation itself may call its scalar fallback.
* **TMO018 hot-loop-alloc** — list/dict/set/comprehension
  construction, lambda definition, or string formatting inside a loop
  in a hot function. Error paths (``raise``/``assert``) are exempt;
  justified allocations are suppressed inline with
  ``# tmo-lint: alloc-ok -- <reason>``.
* **TMO019 quadratic-scan** — ``x in <list>`` membership tests,
  ``.index()`` calls, and nested loops over the same collection,
  inside loops in hot functions.
* **TMO020 numpy-scalarization** — element-wise Python iteration over
  tracked numpy arrays (``for x in arr``, per-index subscripts in
  loops, ``.tolist()``/``.item()`` in loops). Arrays are tracked from
  ``np.*`` constructor calls, ``np.ndarray`` annotations, and calls to
  project functions whose return annotation is an ndarray.
* **TMO021 scalar-fallback-call** — any hot-region call to a scalar
  API the registry marks superseded, loop or not.

**The registry.** :mod:`repro.perf.batched` declares
``BATCHED_EQUIVALENTS`` (scalar key -> batched key) and
``SUPERSEDED_SCALAR_APIS`` as literal tables; phase A parses them from
the AST. Because the tables live in an analysed source file, editing
them changes that file's content hash, and phase B (always recomputed)
re-evaluates TMO017/TMO021 against every cached file.

**Profile mode.** ``python -m repro bench --profile`` writes a
schema-versioned per-function tick-share profile
(:data:`PROFILE_SCHEMA_VERSION`); ``tmo-lint --flow --profile <file>``
escalates findings in functions measured above
``profile_share_threshold`` and reports **hot-but-unanalyzed**
functions — measured hot but not reachable in the static hot region —
so the call graph and reality cannot drift apart.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from pathlib import Path
from typing import (
    Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple,
)

from repro.lint.callgraph import (
    ModuleInfo,
    ModuleResolver,
    ProjectIndex,
    collect_self_attr_classes,
)
from repro.lint.registry import register
from repro.lint.unitflow import FlowRule
from repro.lint.violations import Violation

#: Schema version of the ``BENCH_profile.json`` tick-share document
#: written by ``python -m repro bench --profile`` (see
#: :mod:`repro.perf.profile`, which imports this constant — the lint
#: pass owns the contract it consumes).
PROFILE_SCHEMA_VERSION = 1

#: Default ``profile_share_threshold``: functions at or above this
#: cumulative share of profiled tick time are "measured hot".
DEFAULT_PROFILE_SHARE = 0.05

#: Inline annotation exempting one allocation line from TMO018:
#:     names = {}  # tmo-lint: alloc-ok -- memoized, grows once per key
_ALLOC_OK_RE = re.compile(r"#\s*tmo-lint:\s*alloc-ok\b")

#: Module-level literal tables a batched-API registry module declares.
_REGISTRY_BATCHED = "BATCHED_EQUIVALENTS"
_REGISTRY_SUPERSEDED = "SUPERSEDED_SCALAR_APIS"

#: Method names excluded from the unresolved-call name widening:
#: overwhelmingly builtin container/string methods whose project
#: namesakes (if any) would drag unrelated code into the hot region.
#: Deliberately NOT here: ``update`` — PSI running averages and
#: triggers fold samples through ``update`` methods that the tick-share
#: profile measures hot, and a subscripted receiver
#: (``self._avgs[state].update(...)``) defeats exact resolution, so
#: those calls must stay widenable.
_WIDEN_STOPLIST = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "setdefault", "add", "discard", "appendleft", "extendleft",
    "popleft", "move_to_end", "sort", "reverse", "get", "items", "keys",
    "values", "copy", "join", "split", "strip", "format", "startswith",
    "endswith", "replace", "lower", "upper", "encode", "decode", "read",
    "write", "readline", "close", "flush", "most_common",
})

#: ``.method()`` calls on a tracked array that scalarize it.
_SCALARIZE_METHODS = frozenset({"tolist", "item"})

#: Assignment sources that produce a plain Python list (TMO019
#: membership tests against these are linear scans).
_LIST_CTORS = frozenset({"list", "sorted"})


class ProfileError(ValueError):
    """A tick-share profile could not be read or has the wrong schema."""


def load_profile(path: "Path | str") -> Dict[str, Any]:
    """Read and validate a ``BENCH_profile.json`` document.

    Raises :class:`ProfileError` with a one-line message on a missing
    or unreadable file, invalid JSON, or a schema-version mismatch.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        reason = exc.strerror or exc.__class__.__name__
        raise ProfileError(
            f"cannot read profile {path}: {reason}"
        ) from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ProfileError(f"{path}: not valid JSON ({exc})") from exc
    version = data.get("schema_version") if isinstance(data, dict) else None
    if version != PROFILE_SCHEMA_VERSION:
        raise ProfileError(
            f"{path}: profile schema_version {version!r} != "
            f"{PROFILE_SCHEMA_VERSION}; regenerate with "
            "'python -m repro bench --profile'"
        )
    if not isinstance(data.get("functions"), list):
        raise ProfileError(f"{path}: profile has no 'functions' list")
    return data


def _alloc_ok_lines(source: str) -> Set[int]:
    """Physical lines carrying a ``# tmo-lint: alloc-ok`` comment."""
    lines: Set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            if _ALLOC_OK_RE.search(token.string):
                lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return set()
    return lines


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _string_pairs(node: ast.AST) -> Optional[Dict[str, str]]:
    """str->str entries of a literal dict."""
    if not isinstance(node, ast.Dict):
        return None
    out: Dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if not (
            isinstance(key, ast.Constant) and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return None
        out[key.value] = value.value
    return out


def _string_elements(node: ast.AST) -> Optional[List[str]]:
    """String elements of a literal tuple/list/set/frozenset(...)."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in ("frozenset", "set", "tuple") and len(node.args) == 1:
            node = node.args[0]
        else:
            return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        elements = list(node.elts)
    elif isinstance(node, ast.Dict):
        elements = [k for k in node.keys if k is not None]
    else:
        return None
    out: List[str] = []
    for element in elements:
        if isinstance(element, ast.Constant) and isinstance(
            element.value, str
        ):
            out.append(element.value)
        else:
            return None
    return out


def _collect_registry(tree: ast.Module) -> Optional[Dict[str, Any]]:
    """Batched-API registry declarations, when the module makes any."""
    batched: Dict[str, str] = {}
    superseded: List[str] = []
    found = False
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == _REGISTRY_BATCHED:
                pairs = _string_pairs(value)
                if pairs is not None:
                    batched.update(pairs)
                    found = True
            elif target.id == _REGISTRY_SUPERSEDED:
                elements = _string_elements(value)
                if elements is not None:
                    superseded.extend(elements)
                    found = True
    if not found:
        return None
    return {"batched": batched, "superseded": superseded}


def _is_array_annotation(node: Optional[ast.AST]) -> bool:
    """Whether an annotation names a numpy ndarray."""
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "ndarray" in node.value
    if isinstance(node, ast.Subscript):
        return _is_array_annotation(node.value)
    dotted = _dotted(node)
    return dotted is not None and dotted.split(".")[-1] == "ndarray"


def _numpy_aliases(module: ModuleInfo) -> Set[str]:
    """Local names bound to the numpy module (``import numpy as np``)."""
    out: Set[str] = set()
    for local, (kind, target) in module.imports.items():
        if kind == "mod" and (target == "numpy"
                              or target.startswith("numpy.")):
            out.add(local)
    return out


# ----------------------------------------------------------------------
# phase A: per-module fact collection


class _FnWalker:
    """Phase-A walker for one function in the hot-path pass.

    Tracks loop nesting, error-path guards (``raise``/``assert``),
    list-typed and array-typed locals, and records the raw material the
    phase-B rules evaluate: resolved and unresolved calls (with loop
    context), in-loop allocations, quadratic-scan shapes, and numpy
    scalarization sites.
    """

    def __init__(
        self,
        module: ModuleInfo,
        resolver: ModuleResolver,
        lines: List[str],
        key: str,
        func: Optional[ast.AST],
        self_class: Optional[str],
        self_attr_classes: Dict[str, str],
        np_aliases: Set[str],
        alloc_ok: Set[int],
        out: Dict[str, Any],
    ) -> None:
        self.module = module
        self.resolver = resolver
        self.lines = lines
        self.key = key
        self.self_class = self_class
        self.self_attr_classes = self_attr_classes
        self.np_aliases = np_aliases
        self.alloc_ok = alloc_ok
        self.out = out
        self.loop_depth = 0
        self.guard_depth = 0
        #: iterable names of enclosing ``for`` loops (TMO019 nesting).
        self.iter_stack: List[str] = []
        self.local_classes: Dict[str, str] = {}
        #: local name -> JSON origin entry ({"kind": "np"|"param"} or
        #: {"kind": "call", "key": ...}).
        self.array_locals: Dict[str, Dict[str, Any]] = {}
        self.list_locals: Set[str] = set()
        if func is not None:
            for arg in (list(func.args.args) + list(func.args.kwonlyargs)
                        + list(getattr(func.args, "posonlyargs", []))):
                if arg.annotation is None:
                    continue
                if _is_array_annotation(arg.annotation):
                    self.array_locals[arg.arg] = {"kind": "param"}
                    continue
                ann = _dotted(arg.annotation)
                if ann:
                    resolved = resolver.resolve_name(ann)
                    if resolved and resolved[0] == "class":
                        self.local_classes[arg.arg] = resolved[1]

    # -- emit helpers --------------------------------------------------

    def _snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _emit(self, bucket: str, node: ast.AST, **payload) -> None:
        payload.update(
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            snippet=self._snippet(getattr(node, "lineno", 1)),
        )
        self.out.setdefault(bucket, []).append(payload)

    def _emit_alloc(self, node: ast.AST, what: str) -> None:
        if self.loop_depth <= 0 or self.guard_depth > 0:
            return
        line = getattr(node, "lineno", 1)
        suppressed = line in self.alloc_ok or (
            getattr(node, "end_lineno", line) or line
        ) in self.alloc_ok
        self._emit("loop_allocs", node, what=what, suppressed=suppressed)

    # -- the walk ------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs get their own walker
        handler = getattr(
            self, f"_visit_{type(node).__name__}", None
        )
        if handler is not None:
            handler(node)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- statements ----------------------------------------------------

    def _visit_For(self, node: ast.For) -> None:
        self._visit(node.iter)
        self._note_iteration(node.iter)
        iter_name = node.iter.id if isinstance(node.iter, ast.Name) else None
        if iter_name is not None and iter_name in self.iter_stack:
            self._emit(
                "quadratic", node, what="nested-loop", name=iter_name,
            )
        self.loop_depth += 1
        if iter_name is not None:
            self.iter_stack.append(iter_name)
        # The loop target rebinds a local; it is no longer a tracked
        # array/list even if it shadowed one.
        for name_node in ast.walk(node.target):
            if isinstance(name_node, ast.Name):
                self.array_locals.pop(name_node.id, None)
                self.list_locals.discard(name_node.id)
        self._visit_block(node.body)
        self._visit_block(node.orelse)
        if iter_name is not None:
            self.iter_stack.pop()
        self.loop_depth -= 1

    _visit_AsyncFor = _visit_For

    def _visit_While(self, node: ast.While) -> None:
        self._visit(node.test)
        self.loop_depth += 1
        self._visit_block(node.body)
        self._visit_block(node.orelse)
        self.loop_depth -= 1

    def _visit_Raise(self, node: ast.Raise) -> None:
        self.guard_depth += 1
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        self.guard_depth -= 1

    def _visit_Assert(self, node: ast.Assert) -> None:
        self.guard_depth += 1
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        self.guard_depth -= 1

    def _visit_Assign(self, node: ast.Assign) -> None:
        self._visit(node.value)
        self._track_assign(node.targets, node.value)

    def _visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._visit(node.value)
        if isinstance(node.target, ast.Name):
            if _is_array_annotation(node.annotation):
                self.array_locals[node.target.id] = {"kind": "param"}
            elif node.value is not None:
                self._track_assign([node.target], node.value)

    def _track_assign(
        self, targets: Sequence[ast.expr], value: ast.AST
    ) -> None:
        origin = self._array_origin(value)
        is_list = self._is_list_value(value)
        class_key: Optional[str] = None
        if isinstance(value, ast.Call):
            resolved = self.resolver.resolve_call(
                value, self.local_classes, self.self_class,
                self.self_attr_classes,
            )
            if resolved is not None and resolved[0] == "class":
                class_key = resolved[1]
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            self.array_locals.pop(name, None)
            self.list_locals.discard(name)
            self.local_classes.pop(name, None)
            if origin is not None:
                self.array_locals[name] = origin
            elif is_list:
                self.list_locals.add(name)
            elif class_key is not None:
                self.local_classes[name] = class_key

    def _array_origin(self, value: ast.AST) -> Optional[Dict[str, Any]]:
        """Origin entry when ``value`` produces a (possible) array."""
        if isinstance(value, ast.Name):
            return self.array_locals.get(value.id)
        if isinstance(value, ast.Subscript):
            # Slicing a tracked array yields an array view.
            base = value.value
            if isinstance(base, ast.Name) and isinstance(
                value.slice, ast.Slice
            ):
                return self.array_locals.get(base.id)
            return None
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        dotted = _dotted(func)
        if dotted is not None and dotted.split(".")[0] in self.np_aliases:
            return {"kind": "np"}
        resolved = self.resolver.resolve_call(
            value, self.local_classes, self.self_class,
            self.self_attr_classes,
        )
        if resolved is not None and resolved[0] == "func":
            return {"kind": "call", "key": resolved[1]}
        return None

    def _is_list_value(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.ListComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(
            value.func, ast.Name
        ):
            return (
                value.func.id in _LIST_CTORS
                and self.resolver.resolve_call(value) is None
            )
        return False

    # -- expressions ---------------------------------------------------

    def _note_iteration(self, iterable: ast.AST) -> None:
        """TMO020: Python-level iteration over a tracked array."""
        if self.guard_depth > 0:
            return
        origin: Optional[Dict[str, Any]] = None
        if isinstance(iterable, ast.Name):
            origin = self.array_locals.get(iterable.id)
        else:
            origin = self._array_origin(iterable)
        if origin is not None:
            self._emit(
                "np_scalar", iterable, what="iter", origin=origin,
            )

    def _visit_Call(self, node: ast.Call) -> None:
        func = node.func
        resolved = self.resolver.resolve_call(
            node, self.local_classes, self.self_class,
            self.self_attr_classes,
        )
        in_loop = self.loop_depth > 0
        if resolved is not None:
            kind, key, _bound = resolved
            self._emit("calls", node, kind=kind, key=key, in_loop=in_loop)
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            if not attr.startswith("__") and attr not in _WIDEN_STOPLIST:
                self._emit(
                    "unresolved", node, name=attr, in_loop=in_loop,
                )
            if in_loop and self.guard_depth == 0:
                if attr == "index":
                    self._emit("quadratic", node, what="index", name=attr)
                elif attr in _SCALARIZE_METHODS and isinstance(
                    func.value, ast.Name
                ):
                    origin = self.array_locals.get(func.value.id)
                    if origin is not None:
                        self._emit(
                            "np_scalar", node, what=attr, origin=origin,
                        )
            if attr == "format" and isinstance(
                func.value, ast.Constant
            ) and isinstance(func.value.value, str):
                self._emit_alloc(node, "str.format() call")
        elif isinstance(func, ast.Name) and func.id in (
            "list", "dict", "set"
        ):
            self._emit_alloc(node, f"{func.id}() construction")
        for child in ast.iter_child_nodes(node):
            if child is not func or isinstance(func, ast.Attribute):
                # Walk the receiver of attribute calls (it may contain
                # subscripts/calls) but not a bare Name callee.
                self._visit(child)

    def _visit_Compare(self, node: ast.Compare) -> None:
        if (
            self.loop_depth > 0
            and self.guard_depth == 0
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.In, ast.NotIn))
            and isinstance(node.comparators[0], ast.Name)
            and node.comparators[0].id in self.list_locals
        ):
            self._emit(
                "quadratic", node, what="in-list",
                name=node.comparators[0].id,
            )
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self.loop_depth > 0
            and self.guard_depth == 0
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and isinstance(node.slice, ast.Name)
        ):
            origin = self.array_locals.get(node.value.id)
            if origin is not None:
                self._emit(
                    "np_scalar", node, what="subscript", origin=origin,
                )
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_comprehension_expr(self, node: ast.AST, label: str) -> None:
        self._emit_alloc(node, label)
        for gen in node.generators:  # type: ignore[attr-defined]
            self._visit(gen.iter)
            self._note_iteration(gen.iter)
            for cond in gen.ifs:
                self._visit(cond)
        for field_name in ("elt", "key", "value"):
            child = getattr(node, field_name, None)
            if child is not None:
                self._visit(child)

    def _visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_expr(node, "list comprehension")

    def _visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension_expr(node, "set comprehension")

    def _visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_expr(node, "dict comprehension")

    def _visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_expr(node, "generator expression")

    def _visit_List(self, node: ast.List) -> None:
        if isinstance(node.ctx, ast.Load):
            self._emit_alloc(node, "list literal")
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_Dict(self, node: ast.Dict) -> None:
        self._emit_alloc(node, "dict literal")
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_Set(self, node: ast.Set) -> None:
        self._emit_alloc(node, "set literal")
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_Lambda(self, node: ast.Lambda) -> None:
        self._emit_alloc(node, "lambda definition")
        self._visit(node.body)

    def _visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self._emit_alloc(node, "f-string formatting")
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Mod) and isinstance(
            node.left, ast.Constant
        ) and isinstance(node.left.value, str):
            self._emit_alloc(node, "%-formatting")
        for child in ast.iter_child_nodes(node):
            self._visit(child)


def _returns_array(func: ast.AST) -> bool:
    return _is_array_annotation(getattr(func, "returns", None))


def collect_module(
    module: ModuleInfo,
    index: ProjectIndex,
    source: str,
    options: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """Phase A: extract hot-path facts for one parsed module."""
    assert module.tree is not None
    resolver = ModuleResolver(index, module)
    lines = source.splitlines()
    alloc_ok = _alloc_ok_lines(source)
    np_aliases = _numpy_aliases(module)

    functions: List[Dict[str, Any]] = []
    classes: List[Dict[str, Any]] = []

    def analyse_one(
        key: str,
        func: Optional[ast.AST],
        body: Sequence[ast.stmt],
        self_class: Optional[str],
        self_attrs: Dict[str, str],
        lineno: int,
    ) -> None:
        records: Dict[str, Any] = {}
        walker = _FnWalker(
            module, resolver, lines, key, func, self_class, self_attrs,
            np_aliases, alloc_ok, records,
        )
        walker.run(body)
        functions.append({
            "key": key,
            "line": lineno,
            "returns_array": (
                _returns_array(func) if func is not None else False
            ),
            "calls": records.get("calls", []),
            "unresolved": records.get("unresolved", []),
            "loop_allocs": records.get("loop_allocs", []),
            "quadratic": records.get("quadratic", []),
            "np_scalar": records.get("np_scalar", []),
        })

    def analyse(
        key: str,
        func: Optional[ast.AST],
        body: Sequence[ast.stmt],
        self_class: Optional[str],
        self_attrs: Dict[str, str],
        lineno: int,
    ) -> None:
        analyse_one(key, func, body, self_class, self_attrs, lineno)
        # ast.walk reaches defs at every nesting depth, so locals-of-
        # locals get exactly one flat ``<local>`` record here.
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                analyse_one(
                    f"{key}.<local>.{stmt.name}", stmt, stmt.body,
                    self_class, self_attrs, stmt.lineno,
                )

    toplevel = [
        stmt for stmt in module.tree.body
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    analyse(f"{module.name}.<toplevel>", None, toplevel, None, {}, 1)
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyse(
                f"{module.name}.{stmt.name}", stmt, stmt.body, None, {},
                stmt.lineno,
            )
        elif isinstance(stmt, ast.ClassDef):
            class_key = f"{module.name}.{stmt.name}"
            info = module.classes.get(stmt.name)
            bases: List[str] = []
            if info is not None:
                for base_name in info.base_names:
                    resolved = resolver.resolve_name(base_name)
                    if resolved is not None and resolved[0] == "class":
                        bases.append(resolved[1])
            self_attrs = _extended_self_attrs(resolver, stmt)
            classes.append({
                "key": class_key,
                "bases": bases,
                "methods": sorted(
                    f"{class_key}.{m}" for m in (
                        info.methods if info is not None else {}
                    )
                ),
            })
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    analyse(
                        f"{class_key}.{item.name}", item, item.body,
                        class_key, self_attrs, item.lineno,
                    )

    return {
        "module": module.name,
        "path": module.path,
        "functions": functions,
        "classes": classes,
        "registry": _collect_registry(module.tree),
    }


def _extended_self_attrs(
    resolver: ModuleResolver, class_node: ast.ClassDef
) -> Dict[str, str]:
    """``self.<attr>`` -> class key, including annotated-param aliases.

    Extends :func:`collect_self_attr_classes` with the
    ``def __init__(self, mm: MemoryManager): self.mm = mm`` idiom, so
    ``self.mm.touch(...)`` resolves in workload methods.
    """
    out = collect_self_attr_classes(resolver, class_node)
    for item in class_node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        annotated: Dict[str, str] = {}
        for arg in (list(item.args.args) + list(item.args.kwonlyargs)):
            if arg.annotation is None:
                continue
            ann = _dotted(arg.annotation)
            if not ann:
                continue
            resolved = resolver.resolve_name(ann)
            if resolved is not None and resolved[0] == "class":
                annotated[arg.arg] = resolved[1]
        if not annotated:
            continue
        for stmt in item.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not isinstance(stmt.value, ast.Name):
                continue
            class_key = annotated.get(stmt.value.id)
            if class_key is None:
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out.setdefault(target.attr, class_key)
    return out


# ----------------------------------------------------------------------
# phase B: evaluation


def _hot_facts(
    facts_by_path: Dict[str, Dict[str, Any]]
) -> List[Tuple[str, Dict[str, Any]]]:
    out = []
    for path in sorted(facts_by_path):
        hot = facts_by_path[path].get("hot")
        if hot is not None:
            out.append((path, hot))
    return out


def _hot_options(
    options: Dict[str, Dict[str, Any]]
) -> Tuple[Tuple[str, ...], Tuple[str, ...], float]:
    opts = options.get("TMO017", {})
    entrypoints = tuple(opts.get("entrypoints", ()))
    hot_roots = tuple(opts.get("hot_roots", ()))
    threshold = float(
        opts.get("profile_share_threshold", DEFAULT_PROFILE_SHARE)
    )
    return entrypoints, hot_roots, threshold


class _Project:
    """Whole-program tables assembled from the per-file hot facts."""

    def __init__(
        self, hot_facts: List[Tuple[str, Dict[str, Any]]]
    ) -> None:
        #: function key -> (path, function record)
        self.functions: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        self.class_methods: Dict[str, List[str]] = {}
        self.class_bases: Dict[str, List[str]] = {}
        self.methods_by_name: Dict[str, Set[str]] = {}
        self.batched: Dict[str, str] = {}
        self.superseded: Set[str] = set()
        self.array_returns: Set[str] = set()
        for path, hot in hot_facts:
            for record in hot.get("functions", []):
                self.functions[record["key"]] = (path, record)
                if record.get("returns_array"):
                    self.array_returns.add(record["key"])
            for cls in hot.get("classes", []):
                self.class_methods[cls["key"]] = cls["methods"]
                self.class_bases[cls["key"]] = cls["bases"]
                for method_key in cls["methods"]:
                    name = method_key.rpartition(".")[2]
                    self.methods_by_name.setdefault(name, set()).add(
                        method_key
                    )
            registry = hot.get("registry")
            if registry:
                self.batched.update(registry.get("batched", {}))
                self.superseded.update(registry.get("superseded", ()))

    def hot_region(
        self, entrypoints: Sequence[str], hot_roots: Sequence[str]
    ) -> Set[str]:
        """Function keys reachable from the entrypoints.

        Resolved calls follow their edge; constructors widen to all
        class (and base) methods; unresolved method calls widen by
        name to project methods under ``hot_roots``.
        """
        def under_roots(key: str) -> bool:
            return any(key.startswith(root) for root in hot_roots)

        reachable: Set[str] = set()
        queue: List[str] = list(entrypoints)
        while queue:
            node = queue.pop()
            if node in reachable:
                continue
            reachable.add(node)
            if node.startswith("class:"):
                stack = [node[len("class:"):]]
                seen: Set[str] = set()
                while stack:
                    current = stack.pop()
                    if current in seen:
                        continue
                    seen.add(current)
                    queue.extend(self.class_methods.get(current, ()))
                    stack.extend(self.class_bases.get(current, ()))
                continue
            entry = self.functions.get(node)
            if entry is None:
                continue
            _, record = entry
            for call in record["calls"]:
                target = call["key"]
                queue.append(
                    f"class:{target}" if call["kind"] == "class"
                    else target
                )
            for unresolved in record["unresolved"]:
                for key in self.methods_by_name.get(
                    unresolved["name"], ()
                ):
                    if under_roots(key):
                        queue.append(key)
        return reachable


def _short(key: str) -> str:
    return key.rpartition(".")[2]


def _match_profile(
    project: _Project, profile: Dict[str, Any]
) -> Dict[str, float]:
    """Map analysed function keys to measured tick shares.

    Profile entries are matched to static functions by file suffix and
    bare function name, tie-broken by definition-line distance
    (``co_firstlineno`` and the AST line can differ under decorators).
    """
    by_file: Dict[str, List[Tuple[str, str, int]]] = {}
    for key, (path, record) in project.functions.items():
        by_file.setdefault(path, []).append(
            (key, _short(key), record.get("line", 0))
        )

    def candidates(prof_file: str) -> List[Tuple[str, str, int]]:
        prof_file = prof_file.replace("\\", "/")
        for path, entries in by_file.items():
            if (
                prof_file == path
                or prof_file.endswith("/" + path)
                or path.endswith("/" + prof_file)
            ):
                return entries
        return []

    shares: Dict[str, float] = {}
    for entry in profile.get("functions", []):
        name = entry.get("name")
        prof_file = entry.get("file")
        share = entry.get("tick_share")
        if not name or not prof_file or not isinstance(share, (int, float)):
            continue
        matched: Optional[str] = None
        best_distance: Optional[int] = None
        for key, bare, line in candidates(prof_file):
            if bare != name:
                continue
            distance = abs(line - int(entry.get("line", line)))
            if best_distance is None or distance < best_distance:
                matched, best_distance = key, distance
        if matched is not None:
            shares[matched] = max(shares.get(matched, 0.0), float(share))
    return shares


def check(
    facts_by_path: Dict[str, Dict[str, Any]],
    options: Dict[str, Dict[str, Any]],
    profile: Optional[Dict[str, Any]] = None,
) -> Iterator[Violation]:
    """Phase B: emit TMO017-TMO021 findings inside the hot region."""
    entrypoints, hot_roots, threshold = _hot_options(options)
    if not entrypoints:
        return
    hot_facts = _hot_facts(facts_by_path)
    project = _Project(hot_facts)
    region = project.hot_region(entrypoints, hot_roots)
    shares = (
        _match_profile(project, profile) if profile is not None else {}
    )

    #: owners allowed to call a scalar API: the API itself and its
    #: batched equivalent (whose implementation takes the slow path).
    scalar_exempt_owners: Dict[str, Set[str]] = {}
    for scalar, batched in project.batched.items():
        scalar_exempt_owners[scalar] = {scalar, batched}
    batched_by_name: Dict[str, List[str]] = {}
    for scalar in project.batched:
        batched_by_name.setdefault(_short(scalar), []).append(scalar)

    for key in sorted(region):
        entry = project.functions.get(key)
        if entry is None:
            continue
        if hot_roots and not any(key.startswith(r) for r in hot_roots):
            continue
        path, record = entry
        owner_short = _short(key)
        share = shares.get(key, 0.0)
        marker = (
            f" [measured {share:.1%} of tick time]"
            if share >= threshold else ""
        )

        def violation(
            rule_id: str, rec: Dict[str, Any], message: str
        ) -> Violation:
            return Violation(
                path=path,
                line=rec["line"],
                col=rec["col"],
                rule_id=rule_id,
                message=message + marker,
                snippet=rec["snippet"],
            )

        # -- TMO017 / TMO021: scalar calls against the registry --------
        for call in record["calls"]:
            target = call["key"]
            if call["kind"] != "func":
                continue
            if target in project.superseded and key not in (
                scalar_exempt_owners.get(target, ())
            ) and key != target:
                batched = project.batched.get(target)
                hint = (
                    f"; use {batched}" if batched
                    else "; it has no remaining hot-path caller"
                )
                yield violation(
                    "TMO021", call,
                    f"hot function {owner_short}() calls superseded "
                    f"scalar API {target}{hint}",
                )
            elif (
                call["in_loop"]
                and target in project.batched
                and key not in scalar_exempt_owners[target]
            ):
                yield violation(
                    "TMO017", call,
                    f"per-element call to scalar API {target} inside "
                    f"a loop in hot function {owner_short}(); use the "
                    f"batched equivalent {project.batched[target]}",
                )
        for unresolved in record["unresolved"]:
            if not unresolved["in_loop"]:
                continue
            for scalar in batched_by_name.get(unresolved["name"], ()):
                if key in scalar_exempt_owners[scalar]:
                    continue
                yield violation(
                    "TMO017", unresolved,
                    f"per-element call to scalar API "
                    f".{unresolved['name']}() (registered as {scalar}) "
                    f"inside a loop in hot function {owner_short}(); "
                    f"use the batched equivalent "
                    f"{project.batched[scalar]}",
                )

        # -- TMO018: in-loop allocations -------------------------------
        for alloc in record["loop_allocs"]:
            if alloc["suppressed"]:
                continue
            yield violation(
                "TMO018", alloc,
                f"{alloc['what']} inside a loop in hot function "
                f"{owner_short}(); hoist it out of the tick loop, or "
                "annotate the line '# tmo-lint: alloc-ok -- <reason>' "
                "if the allocation is intentional",
            )

        # -- TMO019: quadratic scans -----------------------------------
        for quad in record["quadratic"]:
            if quad["what"] == "in-list":
                message = (
                    f"membership test against list {quad['name']!r} "
                    f"inside a loop in hot function {owner_short}() is "
                    "a linear scan per iteration; use a set or dict"
                )
            elif quad["what"] == "index":
                message = (
                    f".index() inside a loop in hot function "
                    f"{owner_short}() rescans the collection every "
                    "iteration; precompute an index map"
                )
            else:
                message = (
                    f"nested loops over {quad['name']!r} in hot "
                    f"function {owner_short}() scan the collection "
                    "quadratically; restructure to a single pass"
                )
            yield violation("TMO019", quad, message)

        # -- TMO020: numpy scalarization -------------------------------
        for scalar in record["np_scalar"]:
            origin = scalar["origin"]
            if origin["kind"] == "call" and origin.get(
                "key"
            ) not in project.array_returns:
                continue
            if scalar["what"] == "iter":
                message = (
                    f"element-wise Python iteration over a numpy array "
                    f"in hot function {owner_short}(); keep the "
                    "computation vectorized (or convert once with "
                    ".tolist() outside the loop)"
                )
            elif scalar["what"] == "subscript":
                message = (
                    f"per-index subscript of a numpy array inside a "
                    f"loop in hot function {owner_short}(); index the "
                    "whole batch with one vectorized operation"
                )
            else:
                message = (
                    f".{scalar['what']}() on a numpy array inside a "
                    f"loop in hot function {owner_short}(); convert "
                    "once outside the loop"
                )
            yield violation("TMO020", scalar, message)


def hot_unanalyzed(
    facts_by_path: Dict[str, Dict[str, Any]],
    options: Dict[str, Dict[str, Any]],
    profile: Dict[str, Any],
) -> List[Dict[str, Any]]:
    """Functions measured hot but outside the static hot region.

    Each entry is ``{"key", "share", "path", "line"}``, sorted by
    descending share. A non-empty result means the call graph and the
    profile disagree: extend the TMO017 entrypoints, fix call
    resolution, or stop the function from being hot.
    """
    entrypoints, hot_roots, threshold = _hot_options(options)
    project = _Project(_hot_facts(facts_by_path))
    region = (
        project.hot_region(entrypoints, hot_roots) if entrypoints
        else set()
    )
    shares = _match_profile(project, profile)
    out: List[Dict[str, Any]] = []
    for key, share in shares.items():
        if share < threshold or key in region:
            continue
        if hot_roots and not any(key.startswith(r) for r in hot_roots):
            continue
        path, record = project.functions[key]
        out.append({
            "key": key,
            "share": share,
            "path": path,
            "line": record.get("line", 1),
        })
    out.sort(key=lambda e: (-e["share"], e["key"]))
    return out


# ----------------------------------------------------------------------
# rule registration


@register
class ScalarPageLoopRule(FlowRule):
    rule_id = "TMO017"
    name = "scalar-page-loop"
    summary = (
        "per-element scalar API call in a hot loop where a batched "
        "equivalent is registered (flow pass)"
    )


@register
class HotLoopAllocRule(FlowRule):
    rule_id = "TMO018"
    name = "hot-loop-alloc"
    summary = (
        "container/lambda/string-formatting allocation inside a loop "
        "in a hot function (flow pass)"
    )


@register
class QuadraticScanRule(FlowRule):
    rule_id = "TMO019"
    name = "quadratic-scan"
    summary = (
        "list membership, .index() or same-collection nested loop "
        "inside a hot loop (flow pass)"
    )


@register
class NumpyScalarizationRule(FlowRule):
    rule_id = "TMO020"
    name = "numpy-scalarization"
    summary = (
        "element-wise Python iteration/subscripting of a numpy array "
        "on the hot path (flow pass)"
    )


@register
class ScalarFallbackCallRule(FlowRule):
    rule_id = "TMO021"
    name = "scalar-fallback-call"
    summary = (
        "hot-region call to a scalar API the batched-API registry "
        "marks superseded (flow pass)"
    )
