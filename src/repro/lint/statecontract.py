"""State-contract analysis (rules TMO014-TMO016).

The simulator's production value rests on three contracts that, before
this pass, were only enforced dynamically:

* **checkpoint coverage** — every byte of mutable per-class simulation
  state must survive ``Host.snapshot()``/``restore()`` bit-identically
  (the crash-equivalence gate);
* **process safety** — fleet worker processes must share no mutable
  module-level state, or parallel runs diverge from serial ones on
  *some* seed;
* **metric-name stability** — metric names feed digests, the bench
  gate and chaos verdicts, so they must come from one declared
  registry rather than scattered string literals.

This pass proves all three statically, on every ``tmo-lint --flow``
run, using the same two-phase scheme as :mod:`repro.lint.unitflow`:
phase A (:func:`collect_module`) records JSON-serialisable facts per
file (cached on disk by the flow driver), phase B (:func:`check`)
evaluates them whole-program.

**TMO014 checkpoint-coverage-gap.** Phase A builds an attribute
inventory per class: every ``self.x`` ever assigned in a method, with
whether the assignment happens outside ``__init__``/``__post_init__``
(evolving state) or binds a mutable container in ``__init__`` (a
dict/list/set that methods will grow). Phase A also records, for the
configured checkpoint-codec modules, every attribute name the codec
mentions (attribute accesses plus document keys). Phase B keeps
classes under the configured ``state_roots`` packages, resolves
inheritance through the recorded base-class keys, and flags each
mutable attribute no codec mention covers: that field silently
vanishes across checkpoint→restore. Genuinely derived/scratch state
is exempted with an inline ``# tmo-lint: transient -- <reason>``
annotation or the per-class ``transient_attrs`` config allowlist.

**TMO015 process-unsafe-global.** Phase A records each module's
mutable module-level globals and, per function, every read or
mutation of project module-level state (its own globals, ``global``
rebinds, and imported objects — including mutating method calls,
subscript stores and attribute stores). Phase B computes the set of
functions reachable from the configured ProcessPool worker
entrypoints — over the call edges the taint pass already recorded,
widening a reachable constructor to all methods of its class, since a
worker that builds an object may later call anything on it — and
flags mutations reachable from a worker, plus reads of any global
some function mutates at runtime. Import-time (module toplevel)
initialisation is deterministic across worker processes and stays
allowed, as do reads of never-mutated constant tables.

**TMO016 metric-registry-drift.** Phase A collects every metric-name
string literal flowing into the recorder sinks — directly, through a
bound-method alias (``rec = self.metrics.record``), or as a literal
argument to a wrapper whose parameter the taint machinery proves
sink-flowing — plus the literal names at read sites
(``metrics.series("...")`` / ``summary([...])``). Phase B checks
every name against the registry declared in
:mod:`repro.sim.metric_names` (full names, per-cgroup suffixes,
dynamic namespaces), reporting unregistered names with near-miss
suggestions, and — when the analysed paths include the test tree —
names recorded but never read by any test or analysis. Names without
a ``/`` namespace are out of scope: they are ad-hoc local recorders,
not fleet metrics.
"""

from __future__ import annotations

import ast
import difflib
import io
import re
import tokenize
from pathlib import PurePosixPath
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import (
    ModuleInfo,
    ModuleResolver,
    ProjectIndex,
    collect_self_attr_classes,
)
from repro.lint.registry import register
from repro.lint.taint import TaintEvaluator, compute_sink_params
from repro.lint.unitflow import FlowRule
from repro.lint.violations import Violation

#: Inline annotation exempting one attribute assignment from TMO014,
#: written on the assignment line with a short reason:
#:     self._cache = {}  # tmo-lint: transient -- rebuilt lazily
_TRANSIENT_RE = re.compile(r"#\s*tmo-lint:\s*transient\b")

#: Methods that count as initialisation for the inventory split.
_INIT_METHODS = frozenset({"__init__", "__post_init__"})

#: Constructor names whose call produces a mutable container.
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "bytearray",
    "defaultdict", "OrderedDict", "Counter", "deque",
})

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "appendleft", "extendleft",
    "sort", "reverse",
})

#: Module-level assignments a registry module uses to declare names.
_REGISTRY_VARS = {
    "METRIC_NAMES": "names",
    "PER_CGROUP_METRICS": "per_cgroup",
    "DYNAMIC_NAMESPACES": "dynamic",
    "UNREAD_OK": "unread_ok",
}


def _transient_lines(source: str) -> Set[int]:
    """Physical lines carrying a ``# tmo-lint: transient`` comment."""
    lines: Set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            if _TRANSIENT_RE.search(token.string):
                lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return set()
    return lines


def _is_mutable_value(node: ast.AST) -> bool:
    """Whether an expression builds a mutable container."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CTORS
    return False


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _name_entry(index: int, node: ast.AST) -> Optional[Dict[str, Any]]:
    """Classify one argument as a (partially) literal metric name.

    Returns ``{"index", "value"}`` for a plain literal,
    ``{"index", "suffix"}`` for an f-string with a dynamic head and a
    constant ``/suffix`` tail (``f"{cgroup}/senpai_reclaim"``), and
    ``{"index", "prefix"}`` for a constant ``ns/`` head with a dynamic
    tail (``f"faults/{ev.kind}"``); None when nothing is statically
    known about the name.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {"index": index, "value": node.value}
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        last = node.values[-1]
        if (
            isinstance(last, ast.Constant)
            and isinstance(last.value, str)
            and last.value.startswith("/")
            and not isinstance(first, ast.Constant)
        ):
            return {"index": index, "suffix": last.value[1:]}
        if (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and "/" in first.value
            and not isinstance(last, ast.Constant)
        ):
            return {"index": index, "prefix": first.value}
    return None


# ----------------------------------------------------------------------
# phase A: per-module fact collection


class _ClassAttrs(ast.NodeVisitor):
    """Inventory of ``self.<attr>`` assignments in one class body."""

    def __init__(self, transient: Set[int]) -> None:
        self.transient_lines = transient
        self.attrs: Dict[str, Dict[str, Any]] = {}
        self._method: Optional[str] = None

    def collect(self, node: ast.ClassDef) -> Dict[str, Dict[str, Any]]:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._method = stmt.name
                for inner in stmt.body:
                    self.visit(inner)
        return self.attrs

    def _note(self, target: ast.expr, value: Optional[ast.AST],
              aug: bool) -> None:
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        name = target.attr
        in_init = self._method in _INIT_METHODS
        entry = self.attrs.get(name)
        if entry is None:
            entry = {
                "line": target.lineno,
                "col": target.col_offset,
                "outside_init": False,
                "mutable_init": False,
                "transient": False,
                "init_seen": False,
            }
            self.attrs[name] = entry
        elif in_init and not entry["init_seen"]:
            # Prefer reporting at the __init__ assignment when any.
            entry["line"] = target.lineno
            entry["col"] = target.col_offset
        entry["init_seen"] = entry["init_seen"] or in_init
        if not in_init or aug:
            entry["outside_init"] = True
        if in_init and value is not None and _is_mutable_value(value):
            entry["mutable_init"] = True
        if target.lineno in self.transient_lines:
            entry["transient"] = True

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                for elt in target.elts:
                    self._note(elt, None, aug=False)
            else:
                self._note(target, node.value, aug=False)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note(node.target, node.value, aug=False)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note(node.target, None, aug=True)
        self.generic_visit(node)


def _module_mutable_globals(tree: ast.Module) -> Dict[str, int]:
    """Module-level names bound to mutable containers, with lines."""
    out: Dict[str, int] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.setdefault(target.id, stmt.lineno)
    return out


def _module_assigned_names(tree: ast.Module) -> Set[str]:
    """Every name assigned at module toplevel (any value)."""
    out: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        out.add(name.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            out.add(stmt.target.id)
    return out


def _local_names(func: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(names bound locally, names declared ``global``) in a function."""
    local: Set[str] = set()
    declared_global: Set[str] = set()
    args = func.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        local.add(arg.arg)
    if args.vararg is not None:
        local.add(args.vararg.arg)
    if args.kwarg is not None:
        local.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local.add(node.id)
        elif isinstance(node, ast.comprehension):
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    local.add(name.id)
    return local - declared_global, declared_global


class _FunctionFacts:
    """Phase-A walker for one function: globals + metric names."""

    def __init__(
        self,
        module: ModuleInfo,
        resolver: ModuleResolver,
        lines: List[str],
        key: str,
        func: Optional[ast.AST],
        self_class: Optional[str],
        self_attr_classes: Dict[str, str],
        module_globals: Dict[str, int],
        module_names: Set[str],
        out: Dict[str, List[Dict[str, Any]]],
        options: Dict[str, Dict[str, Any]],
    ) -> None:
        self.module = module
        self.resolver = resolver
        self.lines = lines
        self.key = key
        self.self_class = self_class
        self.self_attr_classes = self_attr_classes
        self.module_globals = module_globals
        self.module_names = module_names
        self.out = out
        t16 = options.get("TMO016", {})
        self.record_suffixes: Tuple[str, ...] = tuple(
            t16.get("record_sink_suffixes", ())
        )
        self.record_methods: Set[str] = set(
            t16.get("record_method_names", ())
        )
        self.read_suffixes: Tuple[str, ...] = tuple(
            t16.get("read_sink_suffixes", ())
        )
        self.read_methods: Set[str] = set(t16.get("read_method_names", ()))
        if func is not None:
            self.locals, self.declared_global = _local_names(func)
        else:
            self.locals, self.declared_global = set(), set()
        self.local_classes: Dict[str, str] = {}
        #: local name -> sink-method key for bound aliases like
        #: ``rec = self.metrics.record``.
        self.sink_aliases: Dict[str, str] = {}
        self._flagged: Set[Tuple[int, int, str]] = set()
        if func is not None:
            for arg in (list(func.args.args) + list(func.args.kwonlyargs)):
                if arg.annotation is not None:
                    ann = _dotted(arg.annotation)
                    if ann:
                        resolved = resolver.resolve_name(ann)
                        if resolved and resolved[0] == "class":
                            self.local_classes[arg.arg] = resolved[1]

    # -- shared helpers ------------------------------------------------

    def _snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _emit(self, bucket: str, node: ast.AST, **payload) -> None:
        payload.update(
            owner=self.key,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            snippet=self._snippet(getattr(node, "lineno", 1)),
        )
        self.out.setdefault(bucket, []).append(payload)

    # -- module-level state resolution ---------------------------------

    def _in_project(self, target: str) -> bool:
        mod = target.rpartition(".")[0]
        return mod in self.resolver.index.modules

    def _global_key(self, name: str) -> Optional[str]:
        """Resolve a bare name to a ``module.GLOBAL`` key, if any."""
        if name in self.locals:
            return None
        if name in self.declared_global or name in self.module_names:
            return f"{self.module.name}.{name}"
        imported = self.module.imports.get(name)
        if imported is not None and imported[0] == "obj":
            target = imported[1]
            if not self._in_project(target):
                return None
            # Imported functions/classes/modules are code, not state.
            if self.resolver.resolve_name(name) is not None:
                return None
            return target
        return None

    def _base_global(self, node: ast.AST) -> Optional[str]:
        """Global key of the *receiver* of a mutation/subscript."""
        if isinstance(node, ast.Name):
            return self._global_key(node.id)
        dotted = _dotted(node)
        if dotted is None or "." not in dotted:
            return None
        head, _, attr = dotted.partition(".")
        if head in self.locals:
            return None
        imported = self.module.imports.get(head)
        if imported is not None and imported[0] == "mod" and "." not in attr:
            # one attribute deep: ``fleetmod._CACHE``
            target = f"{imported[1]}.{attr}"
            if self._in_project(target) and (
                self.resolver.resolve_name(dotted) is None
            ):
                return target
        return None

    def _note_global(self, node: ast.AST, key: str, mode: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        dedupe = (line, col, key)
        if dedupe in self._flagged:
            return
        self._flagged.add(dedupe)
        self._emit("global_accesses", node, target=key, mode=mode)

    # -- metric names --------------------------------------------------

    def _resolve_method_ref(self, node: ast.AST) -> Optional[str]:
        """Resolve ``self.metrics.record``-style method references."""
        if not isinstance(node, ast.Attribute):
            return None
        value = node.value
        class_key: Optional[str] = None
        if isinstance(value, ast.Name):
            if value.id == "self":
                class_key = self.self_class
            else:
                class_key = self.local_classes.get(value.id)
        elif (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            class_key = self.self_attr_classes.get(value.attr)
        if class_key is None:
            return None
        method = self.resolver.index.resolve_method(class_key, node.attr)
        return method.key if method is not None else None

    def _match(self, key: str, suffixes: Sequence[str]) -> bool:
        return any(key == s or key.endswith("." + s) for s in suffixes)

    def _visit_call(self, call: ast.Call) -> None:
        if isinstance(call.func, ast.Name):
            alias = self.sink_aliases.get(call.func.id)
            if alias is not None:
                self._emit_names(call, "sink", alias, 0)
                return
        resolved = self.resolver.resolve_call(
            call, self.local_classes, self.self_class,
            self.self_attr_classes,
        )
        if resolved is not None and resolved[0] == "func":
            key = resolved[1]
            if self._match(key, self.record_suffixes):
                self._emit_names(call, "sink", key, 0)
            elif self._match(key, self.read_suffixes):
                self._emit_reads(call)
            else:
                self._emit_names(call, "call", key, int(resolved[2]))
            return
        if resolved is None and isinstance(call.func, ast.Attribute):
            if call.func.attr in self.record_methods:
                self._emit_names(
                    call, "sink", f"<unresolved>.{call.func.attr}", 0
                )
            elif call.func.attr in self.read_methods:
                self._emit_reads(call)

    def _emit_names(
        self, call: ast.Call, kind: str, key: str, bound: int
    ) -> None:
        names = []
        for i, arg in enumerate(call.args):
            entry = _name_entry(i, arg)
            if entry is not None:
                names.append(entry)
        kwnames: Dict[str, Dict[str, Any]] = {}
        if kind == "call":
            for kw in call.keywords:
                if kw.arg is None:
                    continue
                entry = _name_entry(0, kw.value)
                if entry is not None:
                    entry.pop("index", None)
                    kwnames[kw.arg] = entry
        if names or kwnames:
            self._emit(
                "metric_records", call, kind=kind, key=key, bound=bound,
                names=names, kwnames=kwnames,
            )

    def _emit_reads(self, call: ast.Call) -> None:
        for arg in call.args:
            for child in ast.walk(arg):
                if isinstance(child, ast.Constant) and isinstance(
                    child.value, str
                ):
                    self._emit("metric_reads", call, value=child.value)

    # -- the walk ------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        skip: Set[int] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if id(node) in skip:
                    continue
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    # Nested definitions get their own walker (with
                    # their own local scope) from collect_module.
                    for sub in ast.walk(node):
                        skip.add(id(sub))
                    continue
                self._visit_node(node)

    def _visit_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            self._track_assign(node)
            for target in node.targets:
                self._note_store_target(target)
        elif isinstance(node, ast.AugAssign):
            self._note_store_target(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._note_store_target(target)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr in _MUTATOR_METHODS
            ):
                key = self._base_global(node.func.value)
                if key is not None:
                    self._note_global(node, key, "write")
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            key = self._base_global(node.value)
            if key is not None:
                self._note_global(node, key, "write")
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            key = self._global_key(node.id)
            if key is not None:
                self._note_global(node, key, "read")
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Load
        ):
            key = self._base_global(node)
            if key is not None:
                self._note_global(node, key, "read")

    def _note_store_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self._note_global(
                    target, f"{self.module.name}.{target.id}", "write"
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._note_store_target(elt)
        elif isinstance(target, ast.Subscript):
            key = self._base_global(target.value)
            if key is not None:
                self._note_global(target, key, "write")
        elif isinstance(target, ast.Attribute):
            key = self._base_global(target) or self._base_global(
                target.value
            )
            if key is not None:
                self._note_global(target, key, "write")

    def _track_assign(self, stmt: ast.Assign) -> None:
        """Track class-typed locals and bound sink-method aliases."""
        value = stmt.value
        if isinstance(value, ast.Call):
            resolved = self.resolver.resolve_call(
                value, self.local_classes, self.self_class,
                self.self_attr_classes,
            )
            if resolved is not None and resolved[0] == "class":
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.local_classes[target.id] = resolved[1]
        elif isinstance(value, ast.Attribute):
            key = self._resolve_method_ref(value)
            if key is not None and not self._match(
                key, self.record_suffixes
            ):
                key = None
            if key is None and value.attr in self.record_methods:
                dotted = _dotted(value)
                if dotted is None or self.resolver.resolve_name(
                    dotted
                ) is None:
                    # ``rec = host.metrics.record`` with untyped host.
                    key = f"<unresolved>.{value.attr}"
            if key is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.sink_aliases[target.id] = key


def _codec_attr_mentions(tree: ast.Module) -> List[str]:
    """Attribute names a codec module covers.

    Attribute accesses (``senpai.stale_skips``) plus string keys of
    document dicts, subscripts and ``.get()`` calls — the codec's
    round-trip idioms. Free-floating strings (docstrings, messages) do
    not count as coverage.
    """
    seen: Set[str] = set()

    def note(node: Optional[ast.AST]) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            seen.add(node.value)

    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            seen.add(node.attr)
        elif isinstance(node, ast.Dict):
            for dict_key in node.keys:
                note(dict_key)
        elif isinstance(node, ast.Subscript):
            note(node.slice)
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr == "get" and node.args:
            note(node.args[0])
    return sorted(seen)


def _registry_literal(node: ast.AST) -> Optional[List[str]]:
    """String elements of a literal dict/set/tuple/frozenset(...)."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in ("frozenset", "set", "tuple") and len(node.args) == 1:
            node = node.args[0]
        else:
            return None
    if isinstance(node, ast.Dict):
        elements = [k for k in node.keys if k is not None]
    elif isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        elements = list(node.elts)
    else:
        return None
    out: List[str] = []
    for element in elements:
        if isinstance(element, ast.Constant) and isinstance(
            element.value, str
        ):
            out.append(element.value)
        else:
            return None
    return out


def _collect_registry(tree: ast.Module) -> Optional[Dict[str, List[str]]]:
    """Registry declarations, when the module makes any."""
    found: Dict[str, List[str]] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            bucket = _REGISTRY_VARS.get(target.id)
            if bucket is None or value is None:
                continue
            values = _registry_literal(value)
            if values is not None:
                found.setdefault(bucket, []).extend(values)
    return found or None


def collect_module(
    module: ModuleInfo,
    index: ProjectIndex,
    source: str,
    options: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """Phase A: extract state-contract facts for one parsed module."""
    assert module.tree is not None
    resolver = ModuleResolver(index, module)
    lines = source.splitlines()
    transient = _transient_lines(source)
    own_globals = _module_mutable_globals(module.tree)
    own_names = _module_assigned_names(module.tree)
    records: Dict[str, List[Dict[str, Any]]] = {}

    # -- class attribute inventories + method keys ---------------------
    classes: List[Dict[str, Any]] = []
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        class_key = f"{module.name}.{stmt.name}"
        bases: List[str] = []
        info = module.classes.get(stmt.name)
        if info is not None:
            for base_name in info.base_names:
                resolved = resolver.resolve_name(base_name)
                if resolved is not None and resolved[0] == "class":
                    bases.append(resolved[1])
        attrs = _ClassAttrs(transient).collect(stmt)
        classes.append({
            "key": class_key,
            "line": stmt.lineno,
            "bases": bases,
            "methods": sorted(
                f"{class_key}.{m}" for m in (
                    info.methods if info is not None else {}
                )
            ),
            "attrs": [
                {
                    "name": name,
                    "line": entry["line"],
                    "col": entry["col"],
                    "outside_init": entry["outside_init"],
                    "mutable_init": entry["mutable_init"],
                    "transient": entry["transient"],
                    "snippet": (
                        lines[entry["line"] - 1].strip()
                        if 1 <= entry["line"] <= len(lines) else ""
                    ),
                }
                for name, entry in sorted(attrs.items())
            ],
        })

    codec_modules = set(options.get("TMO014", {}).get("codec_modules", ()))
    codec_attrs = (
        _codec_attr_mentions(module.tree)
        if module.name in codec_modules else []
    )

    # -- per-function walks (globals + metric names) -------------------
    def analyse(
        key: str,
        func: Optional[ast.AST],
        body: Sequence[ast.stmt],
        self_class: Optional[str],
        self_attrs: Dict[str, str],
    ) -> None:
        walker = _FunctionFacts(
            module, resolver, lines, key, func, self_class, self_attrs,
            own_globals, own_names, records, options,
        )
        walker.run(body)
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = _FunctionFacts(
                    module, resolver, lines,
                    f"{key}.<local>.{stmt.name}", stmt,
                    self_class, self_attrs,
                    own_globals, own_names, records, options,
                )
                nested.run(stmt.body)

    toplevel = [
        stmt for stmt in module.tree.body
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    analyse(f"{module.name}.<toplevel>", None, toplevel, None, {})
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyse(f"{module.name}.{stmt.name}", stmt, stmt.body, None, {})
        elif isinstance(stmt, ast.ClassDef):
            class_key = f"{module.name}.{stmt.name}"
            self_attrs = collect_self_attr_classes(resolver, stmt)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    analyse(
                        f"{class_key}.{item.name}", item, item.body,
                        class_key, self_attrs,
                    )

    return {
        "module": module.name,
        "classes": classes,
        "codec_attrs": codec_attrs,
        "globals": [
            {"name": name, "line": line}
            for name, line in sorted(own_globals.items())
        ],
        "global_accesses": records.get("global_accesses", []),
        "metric_records": records.get("metric_records", []),
        "metric_reads": records.get("metric_reads", []),
        "registry": _collect_registry(module.tree),
    }


# ----------------------------------------------------------------------
# phase B: evaluation


def _state_facts(
    facts_by_path: Dict[str, Dict[str, Any]]
) -> List[Tuple[str, Dict[str, Any]]]:
    out = []
    for path in sorted(facts_by_path):
        state = facts_by_path[path].get("state")
        if state is not None:
            out.append((path, state))
    return out


def check(
    facts_by_path: Dict[str, Dict[str, Any]],
    options: Dict[str, Dict[str, Any]],
) -> Iterator[Violation]:
    """Phase B: emit TMO014/TMO015/TMO016 findings."""
    state_facts = _state_facts(facts_by_path)
    yield from _check_checkpoint_coverage(state_facts, options)
    yield from _check_process_safety(facts_by_path, state_facts, options)
    yield from _check_metric_registry(facts_by_path, state_facts)


# -- TMO014 ------------------------------------------------------------


def _check_checkpoint_coverage(
    state_facts: List[Tuple[str, Dict[str, Any]]],
    options: Dict[str, Dict[str, Any]],
) -> Iterator[Violation]:
    opts = options.get("TMO014", {})
    roots: Tuple[str, ...] = tuple(opts.get("state_roots", ()))
    exempt_suffixes: Tuple[str, ...] = tuple(
        opts.get("exempt_class_suffixes", ())
    )
    allow: Dict[str, Sequence[str]] = dict(opts.get("transient_attrs", {}))
    if not roots:
        return

    classes: Dict[str, Dict[str, Any]] = {}
    covered: Set[str] = set()
    for _, state in state_facts:
        covered.update(state.get("codec_attrs", []))
        for cls in state.get("classes", []):
            classes[cls["key"]] = cls
    if not covered:
        # No codec module in the analysed set: coverage is undefined,
        # not violated (small fixture trees, partial path sets).
        return

    def base_chain(key: str, seen: Optional[Set[str]] = None) -> Set[str]:
        seen = set() if seen is None else seen
        if key in seen:
            return seen
        seen.add(key)
        cls = classes.get(key)
        if cls is not None:
            for base in cls["bases"]:
                base_chain(base, seen)
        return seen

    def is_exempt(key: str) -> bool:
        return any(
            k == suffix or k.endswith(suffix)
            for k in base_chain(key)
            for suffix in exempt_suffixes
        )

    for path, state in state_facts:
        for cls in state.get("classes", []):
            key = cls["key"]
            if not any(key.startswith(root) for root in roots):
                continue
            if is_exempt(key):
                continue
            class_name = key.rpartition(".")[2]
            allowed = set(allow.get(class_name, ())) | set(
                allow.get(key, ())
            )
            for attr in cls["attrs"]:
                if not (attr["outside_init"] or attr["mutable_init"]):
                    continue
                if attr["transient"] or attr["name"] in allowed:
                    continue
                if attr["name"] in covered:
                    continue
                why = (
                    "is reassigned outside __init__"
                    if attr["outside_init"]
                    else "holds a mutable container"
                )
                yield Violation(
                    path=path,
                    line=attr["line"],
                    col=attr["col"],
                    rule_id="TMO014",
                    message=(
                        f"mutable attribute {class_name}.{attr['name']} "
                        f"{why} but no checkpoint codec field covers it; "
                        "snapshot->restore silently drops it (add it to "
                        "the codec, or mark the assignment "
                        "'# tmo-lint: transient -- <reason>' if it is "
                        "derived/scratch state)"
                    ),
                    snippet=attr["snippet"],
                )


# -- TMO015 ------------------------------------------------------------


def _reachable_functions(
    facts_by_path: Dict[str, Dict[str, Any]],
    state_facts: List[Tuple[str, Dict[str, Any]]],
    entrypoints: Sequence[str],
) -> Set[str]:
    """Function keys reachable from the worker entrypoints.

    Edges come from the taint pass's resolved call records. A
    reachable class constructor widens to every method of the class
    (and its project bases): a worker that builds an object may call
    anything on it later.
    """
    edges: Dict[str, Set[str]] = {}
    for facts in facts_by_path.values():
        taint = facts.get("taint", {})
        for record in taint.get("calls", []):
            owner = record.get("owner")
            if owner is None:
                continue
            target = record["key"]
            if record.get("kind") == "class":
                target = f"class:{target}"
            edges.setdefault(owner, set()).add(target)

    class_methods: Dict[str, List[str]] = {}
    class_bases: Dict[str, List[str]] = {}
    for _, state in state_facts:
        for cls in state.get("classes", []):
            class_methods[cls["key"]] = cls["methods"]
            class_bases[cls["key"]] = cls["bases"]

    reachable: Set[str] = set()
    queue: List[str] = list(entrypoints)
    while queue:
        node = queue.pop()
        if node in reachable:
            continue
        reachable.add(node)
        if node.startswith("class:"):
            stack = [node[len("class:"):]]
            seen_classes: Set[str] = set()
            while stack:
                current = stack.pop()
                if current in seen_classes:
                    continue
                seen_classes.add(current)
                queue.extend(class_methods.get(current, ()))
                stack.extend(class_bases.get(current, ()))
            continue
        queue.extend(edges.get(node, ()))
    return reachable


def _check_process_safety(
    facts_by_path: Dict[str, Dict[str, Any]],
    state_facts: List[Tuple[str, Dict[str, Any]]],
    options: Dict[str, Dict[str, Any]],
) -> Iterator[Violation]:
    opts = options.get("TMO015", {})
    entrypoints: Tuple[str, ...] = tuple(opts.get("worker_entrypoints", ()))
    if not entrypoints:
        return

    #: module state some function mutates at runtime (import-time
    #: toplevel initialisation is deterministic across processes).
    mutated: Set[str] = set()
    for _, state in state_facts:
        for access in state.get("global_accesses", []):
            owner = access.get("owner", "")
            if access["mode"] == "write" and not owner.endswith("<toplevel>"):
                mutated.add(access["target"])

    reachable = _reachable_functions(facts_by_path, state_facts, entrypoints)
    entry_label = ", ".join(e.rpartition(".")[2] for e in entrypoints)

    for path, state in state_facts:
        for access in state.get("global_accesses", []):
            owner = access.get("owner", "")
            if owner not in reachable or owner.endswith("<toplevel>"):
                continue
            target = access["target"]
            short = owner.rpartition(".")[2]
            if access["mode"] == "write":
                message = (
                    f"{short}() is reachable from worker entrypoint(s) "
                    f"{entry_label} and mutates module-level state "
                    f"{target}; per-process copies diverge, so parallel "
                    "fleet results stop matching serial ones (move the "
                    "state into an object passed through the call, or "
                    "derive it from the seed)"
                )
            else:
                if target not in mutated:
                    continue  # reads of frozen constant tables are fine
                message = (
                    f"{short}() is reachable from worker entrypoint(s) "
                    f"{entry_label} and reads module-level state "
                    f"{target}, which is mutated at runtime elsewhere; "
                    "its value depends on per-process history, so "
                    "worker results can diverge from serial runs"
                )
            yield Violation(
                path=path,
                line=access["line"],
                col=access["col"],
                rule_id="TMO015",
                message=message,
                snippet=access["snippet"],
            )


# -- TMO016 ------------------------------------------------------------


def _is_record_sink(label: Optional[str]) -> bool:
    return label is not None and label.endswith(".record")


def _check_metric_registry(
    facts_by_path: Dict[str, Dict[str, Any]],
    state_facts: List[Tuple[str, Dict[str, Any]]],
) -> Iterator[Violation]:
    names: Set[str] = set()
    per_cgroup: Set[str] = set()
    dynamic: Set[str] = set()
    unread_ok: Set[str] = set()
    for _, state in state_facts:
        registry = state.get("registry")
        if not registry:
            continue
        names.update(registry.get("names", ()))
        per_cgroup.update(registry.get("per_cgroup", ()))
        dynamic.update(registry.get("dynamic", ()))
        unread_ok.update(registry.get("unread_ok", ()))
    if not (names or per_cgroup or dynamic):
        return  # no registry in the analysed set: nothing to check

    evaluator = TaintEvaluator(facts_by_path)
    sink_params = compute_sink_params(facts_by_path, evaluator)

    candidates = sorted(names | per_cgroup | dynamic)

    def suggestion(value: str) -> str:
        close = difflib.get_close_matches(value, candidates, n=1)
        return f"; did you mean '{close[0]}'?" if close else ""

    def classify(entry: Dict[str, Any]) -> Tuple[str, Optional[str]]:
        """(status, recorded-name-label-for-unread-check)."""
        if "value" in entry:
            value = entry["value"]
            if "/" not in value:
                return "ok", None  # ad-hoc local recorder, out of scope
            if value in names:
                return "ok", value
            head, _, tail = value.partition("/")
            if tail in per_cgroup:
                return "ok", f"*/{tail}"
            if head in dynamic:
                return "ok", None
            return "bad-full", None
        if "suffix" in entry:
            if entry["suffix"] in per_cgroup:
                return "ok", f"*/{entry['suffix']}"
            return "bad-suffix", None
        if entry["prefix"].partition("/")[0] in dynamic:
            return "ok", None
        return "bad-prefix", None

    def finding(
        path: str, record: Dict[str, Any], entry: Dict[str, Any],
        status: str, verb: str,
    ) -> Violation:
        if status == "bad-full":
            value = entry["value"]
            message = (
                f"{verb} metric '{value}' is not declared in the metric "
                f"registry (METRIC_NAMES){suggestion(value)}"
            )
        elif status == "bad-suffix":
            suffix = entry["suffix"]
            message = (
                f"{verb} per-cgroup metric suffix '{suffix}' is not "
                f"declared in PER_CGROUP_METRICS in the metric registry"
                f"{suggestion(suffix)}"
            )
        else:
            namespace = entry["prefix"].partition("/")[0]
            message = (
                f"{verb} dynamic metric namespace '{namespace}/' is not "
                f"declared in DYNAMIC_NAMESPACES in the metric registry"
                f"{suggestion(namespace)}"
            )
        return Violation(
            path=path,
            line=record["line"],
            col=record["col"],
            rule_id="TMO016",
            message=message,
            snippet=record["snippet"],
        )

    def recorded_entries(
        record: Dict[str, Any]
    ) -> Iterator[Dict[str, Any]]:
        """Name entries of this record that actually reach a sink."""
        if record["kind"] == "sink":
            if not _is_record_sink(record["key"]):
                return
            for entry in record["names"]:
                if entry["index"] == 0:
                    yield entry
            return
        # Wrapper call: a literal counts only when it flows into a
        # recorder sink through the callee's sink-flowing parameters.
        flows = sink_params.get(record["key"])
        if not flows:
            return
        func = evaluator.functions.get(record["key"])
        params = list(func["params"]) if func else []
        offset = (
            1 if record["bound"] and params
            and params[0] in ("self", "cls") else 0
        )
        for entry in record["names"]:
            if _is_record_sink(flows.get(entry["index"] + offset)):
                yield entry
        for name, entry in record.get("kwnames", {}).items():
            if name in params and _is_record_sink(
                flows.get(params.index(name))
            ):
                yield entry

    # -- validate recorded and read names ------------------------------
    recorded_labels: List[Tuple[str, Dict[str, Any], str]] = []
    for path, state in state_facts:
        for record in state.get("metric_records", []):
            for entry in recorded_entries(record):
                status, label = classify(entry)
                if status != "ok":
                    yield finding(path, record, entry, status, "recorded")
                elif label is not None:
                    recorded_labels.append((path, record, label))
        for read in state.get("metric_reads", []):
            value = read["value"]
            if "/" not in value:
                continue
            status, _ = classify({"index": 0, "value": value})
            if status != "ok":
                yield finding(path, read, {"value": value}, status, "read")

    # -- recorded-but-never-read --------------------------------------
    if not any(
        "tests" in PurePosixPath(path.replace("\\", "/")).parts
        for path, _ in state_facts
    ):
        return  # without the test tree, "never read" is unknowable
    reads_full: Set[str] = set()
    for _, state in state_facts:
        for read in state.get("metric_reads", []):
            reads_full.add(read["value"])
    read_suffixes = {
        value.split("/", 1)[1] for value in reads_full if "/" in value
    }
    seen_unread: Set[str] = set()
    for path, record, label in recorded_labels:
        if label.startswith("*/"):
            suffix = label[2:]
            if suffix in read_suffixes or suffix in unread_ok:
                continue
            display = f"<cgroup>/{suffix}"
        else:
            if label in reads_full or label in unread_ok:
                continue
            display = label
        if display in seen_unread:
            continue
        seen_unread.add(display)
        yield Violation(
            path=path,
            line=record["line"],
            col=record["col"],
            rule_id="TMO016",
            message=(
                f"metric '{display}' is recorded but never read by any "
                "test or analysis in the analysed tree; add a reader, "
                "or declare it in UNREAD_OK in the metric registry "
                "with a reason"
            ),
            snippet=record["snippet"],
        )


# ----------------------------------------------------------------------
# rule registration


@register
class CheckpointCoverageGapRule(FlowRule):
    rule_id = "TMO014"
    name = "checkpoint-coverage-gap"
    summary = (
        "mutable class attribute not covered by the checkpoint codec "
        "(flow pass)"
    )


@register
class ProcessUnsafeGlobalRule(FlowRule):
    rule_id = "TMO015"
    name = "process-unsafe-global"
    summary = (
        "worker-reachable code touches mutable module-level state "
        "(flow pass)"
    )


@register
class MetricRegistryDriftRule(FlowRule):
    rule_id = "TMO016"
    name = "metric-registry-drift"
    summary = (
        "metric name missing from the declared registry, or recorded "
        "but never read (flow pass)"
    )
