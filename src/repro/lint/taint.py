"""Interprocedural determinism-taint analysis (rule TMO012).

TMO001/TMO002 flag a nondeterminism *source* at the line it is read;
they cannot tell whether the value ever matters. This pass answers the
question the reproduction actually cares about: **does a
run-dependent value reach a metric or export sink?** A wall-clock
read that only feeds a log message is noise; the same read folded
into a recorded series silently invalidates every A/B comparison.

Sources (each tagged with a human-readable description):

* wall clock / host entropy — ``time.time``, ``datetime.now``,
  ``os.urandom``, ``uuid.uuid4``, ...;
* global RNG state — ``numpy.random.*`` module-level calls, the stdlib
  ``random`` module (``derive_rng`` streams are *not* tainted: they
  are pure functions of the seed);
* process environment — ``os.environ[...]``, ``os.environ.get``,
  ``os.getenv``;
* hash randomisation — the ``hash()`` builtin on the iteration
  variable of a ``set`` loop, and set iteration order itself;
* filesystem enumeration order — ``os.listdir``, ``glob.glob``.

Taint propagates through assignments, arithmetic, f-strings, returns
and call arguments across module boundaries, using the same symbolic
two-phase scheme as :mod:`repro.lint.unitflow`: phase A records
serialisable taint expressions per file, phase B evaluates them
against every function's summary and emits **TMO012**
``nondeterministic-sink`` at:

* a sink call whose argument is tainted inside the function, and
* a call site that hands a tainted value to a parameter which the
  callee (transitively) forwards into a sink.

Sinks are metric/export calls: the recorder API
(``MetricsRecorder.record``, ``Series.record``), everything in
``repro.analysis.export`` / ``repro.analysis.reporting``, and — as a
heuristic for code the resolver cannot type — any method call named
``record``. The sink sets are per-rule options (see
``repro.lint.config``), so downstream forks can extend them.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import (
    ModuleInfo,
    ModuleResolver,
    ProjectIndex,
    collect_self_attr_classes,
)
from repro.lint.registry import register
from repro.lint.unitflow import FlowRule
from repro.lint.violations import Violation

# ----------------------------------------------------------------------
# sources

#: Fully-qualified callables whose return value is nondeterministic.
TAINT_SOURCE_CALLS: Dict[str, str] = {
    "time.time": "wall clock (time.time)",
    "time.time_ns": "wall clock (time.time_ns)",
    "time.monotonic": "wall clock (time.monotonic)",
    "time.monotonic_ns": "wall clock (time.monotonic_ns)",
    "time.perf_counter": "wall clock (time.perf_counter)",
    "time.perf_counter_ns": "wall clock (time.perf_counter_ns)",
    "time.process_time": "wall clock (time.process_time)",
    "time.process_time_ns": "wall clock (time.process_time_ns)",
    "datetime.datetime.now": "wall clock (datetime.now)",
    "datetime.datetime.utcnow": "wall clock (datetime.utcnow)",
    "datetime.datetime.today": "wall clock (datetime.today)",
    "datetime.date.today": "wall clock (date.today)",
    "os.urandom": "host entropy (os.urandom)",
    "os.getrandom": "host entropy (os.getrandom)",
    "uuid.uuid1": "host entropy (uuid.uuid1)",
    "uuid.uuid4": "host entropy (uuid.uuid4)",
    "os.getenv": "process environment (os.getenv)",
    "os.environ.get": "process environment (os.environ.get)",
    "os.getpid": "process id (os.getpid)",
    "os.listdir": "filesystem order (os.listdir)",
    "os.scandir": "filesystem order (os.scandir)",
    "glob.glob": "filesystem order (glob.glob)",
    "glob.iglob": "filesystem order (glob.iglob)",
}

#: Call-name prefixes that taint (module-level RNG state).
TAINT_SOURCE_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("numpy.random.", "global numpy RNG state"),
    ("random.", "stdlib random module (hidden global state)"),
)

#: numpy.random entry points that are deterministic *when seeded*.
_SEEDED_OK = frozenset({"numpy.random.default_rng", "numpy.random.Generator"})


# ----------------------------------------------------------------------
# symbolic taint expressions (JSON-serialisable)
#
#   ["t", description]               tainted by a named source
#   ["ok"]                           clean
#   ["p", index]                     taint of parameter `index`
#   ["c", key, bound, [args], {kw}]  taint of a project call's result
#   ["or", [exprs]]                  any-of

CLEAN: List[Any] = ["ok"]


def _or(exprs: List[List[Any]]) -> List[Any]:
    real = [e for e in exprs if e != CLEAN]
    if not real:
        return CLEAN
    if len(real) == 1:
        return real[0]
    return ["or", real]


class _FunctionTaint:
    """Phase-A taint walker for one function body."""

    def __init__(
        self,
        module: ModuleInfo,
        resolver: ModuleResolver,
        lines: List[str],
        key: str,
        params: List[str],
        self_class: Optional[str],
        self_attr_classes: Dict[str, str],
        out: Dict[str, Any],
        sink_options: Dict[str, Any],
    ) -> None:
        self.module = module
        self.resolver = resolver
        self.lines = lines
        self.key = key
        self.params = params
        self.self_class = self_class
        self.self_attr_classes = self_attr_classes
        self.out = out
        self.sink_suffixes: Tuple[str, ...] = tuple(
            sink_options.get("sink_call_suffixes", ())
        )
        self.sink_methods: Set[str] = set(
            sink_options.get("sink_method_names", ())
        )
        self.env: Dict[str, List[Any]] = {}
        self.local_classes: Dict[str, str] = {}
        self.returns: List[List[Any]] = []
        self._seen: Set[Tuple[str, int, int, str]] = set()
        for i, name in enumerate(params):
            self.env[name] = ["p", i]

    # -- recording -----------------------------------------------------

    def _snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _record(
        self, bucket: str, node: ast.AST, tag: str, **payload
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        dedupe = (bucket, line, col, tag)
        if dedupe in self._seen:
            return
        self._seen.add(dedupe)
        payload.update(
            line=line, col=col, snippet=self._snippet(line), owner=self.key,
        )
        self.out.setdefault(bucket, []).append(payload)

    # -- expression taint ----------------------------------------------

    def taint_expr(self, node: ast.AST) -> List[Any]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                # os.environ consumed as a mapping elsewhere.
                resolved = self.module.imports.get(base.id)
                if resolved and resolved[1] == "os" and node.attr == "environ":
                    return ["t", "process environment (os.environ)"]
                return self.env.get(base.id, CLEAN)
            return self.taint_expr(base)
        if isinstance(node, ast.Subscript):
            return self.taint_expr(node.value)
        if isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, (ast.UnaryOp,)):
            return self.taint_expr(node.operand)
        if isinstance(node, ast.BinOp):
            return _or([self.taint_expr(node.left),
                        self.taint_expr(node.right)])
        if isinstance(node, ast.BoolOp):
            return _or([self.taint_expr(v) for v in node.values])
        if isinstance(node, ast.Compare):
            return _or([self.taint_expr(node.left)]
                       + [self.taint_expr(c) for c in node.comparators])
        if isinstance(node, ast.IfExp):
            return _or([self.taint_expr(node.body),
                        self.taint_expr(node.orelse)])
        if isinstance(node, ast.JoinedStr):
            return _or([
                self.taint_expr(v.value)
                for v in node.values if isinstance(v, ast.FormattedValue)
            ])
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _or([self.taint_expr(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            parts = [self.taint_expr(v) for v in node.values]
            parts += [self.taint_expr(k) for k in node.keys if k is not None]
            return _or(parts)
        if isinstance(node, ast.Starred):
            return self.taint_expr(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        return CLEAN

    def _source_of_call(self, node: ast.Call) -> Optional[str]:
        """Source description when the call is itself a taint source."""
        dotted = _dotted(node.func)
        if dotted is None:
            if isinstance(node.func, ast.Name) and node.func.id == "hash":
                return "hash randomisation (hash() builtin)"
            return None
        resolved = _resolve_external(self.module, dotted)
        if resolved is None:
            return None
        if resolved in TAINT_SOURCE_CALLS:
            return TAINT_SOURCE_CALLS[resolved]
        if resolved in _SEEDED_OK:
            # default_rng() with no seed pulls host entropy.
            if not node.args and not node.keywords:
                return "host entropy (unseeded default_rng)"
            return None
        for prefix, description in TAINT_SOURCE_PREFIXES:
            if resolved.startswith(prefix) or resolved == prefix.rstrip("."):
                return description
        return None

    def _sink_name(self, node: ast.Call) -> Optional[str]:
        """Sink label when the call is a metric/export sink."""
        resolved = self.resolver.resolve_call(
            node, self.local_classes, self.self_class, self.self_attr_classes
        )
        if resolved is not None and resolved[0] == "func":
            key = resolved[1]
            for suffix in self.sink_suffixes:
                if key == suffix or key.endswith("." + suffix):
                    return key
            if key.rpartition(".")[2] in self.sink_methods:
                return key
            return None
        if (
            resolved is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self.sink_methods
        ):
            return f"<unresolved>.{node.func.attr}"
        return None

    def _call_taint(self, node: ast.Call) -> List[Any]:
        source = self._source_of_call(node)
        if source is not None:
            return ["t", source]

        arg_taints = [self.taint_expr(a) for a in node.args
                      if not isinstance(a, ast.Starred)]
        kw_taints = {
            kw.arg: self.taint_expr(kw.value)
            for kw in node.keywords if kw.arg is not None
        }

        sink = self._sink_name(node)
        if sink is not None:
            self._record(
                "sinks", node, tag=sink, sink=sink,
                args=arg_taints, kwargs=kw_taints,
            )

        resolved = self.resolver.resolve_call(
            node, self.local_classes, self.self_class, self.self_attr_classes
        )
        if resolved is None:
            # Unknown callable: assume it neither launders nor adds
            # taint; pass through the arguments' taint (str(), f-string
            # helpers, numpy ufuncs all behave this way).
            return _or(arg_taints + list(kw_taints.values()))
        kind, key, bound = resolved
        if kind == "class":
            self._record(
                "calls", node, tag=key, kind=kind, key=key,
                bound=int(bound), args=arg_taints, kwargs=kw_taints,
            )
            return _or(arg_taints + list(kw_taints.values()))
        self._record(
            "calls", node, tag=key, kind=kind, key=key,
            bound=int(bound), args=arg_taints, kwargs=kw_taints,
        )
        return ["c", key, int(bound), arg_taints, kw_taints]

    # -- statements ----------------------------------------------------

    def walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.taint_expr(stmt.value)
            self._sweep_calls(stmt.value)
            for target in stmt.targets:
                self._bind_target(stmt, target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint = self.taint_expr(stmt.value)
                self._sweep_calls(stmt.value)
                self._bind_target(stmt, stmt.target, taint)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.taint_expr(stmt.value)
            self._sweep_calls(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prev = self.env.get(stmt.target.id, CLEAN)
                self.env[stmt.target.id] = _or([prev, taint])
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns.append(self.taint_expr(stmt.value))
                self._sweep_calls(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.taint_expr(stmt.value)
            self._sweep_calls(stmt.value)
        elif isinstance(stmt, ast.For):
            self._sweep_calls(stmt.iter)
            element = self.taint_expr(stmt.iter)
            if _is_set_iteration(stmt.iter, self.env):
                element = _or([
                    element, ["t", "set iteration order (PYTHONHASHSEED)"]
                ])
            for target_name in _target_names(stmt.target):
                self.env[target_name] = element
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._sweep_calls(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._sweep_calls(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._sweep_calls(item.context_expr)
            self.walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._sweep_calls(child)

    def _bind_target(
        self, stmt: ast.stmt, target: ast.expr, taint: List[Any]
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if isinstance(value, ast.Call):
                    resolved = self.resolver.resolve_call(
                        value, self.local_classes,
                        self.self_class, self.self_attr_classes,
                    )
                    if resolved is not None and resolved[0] == "class":
                        self.local_classes[target.id] = resolved[1]
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._bind_target(stmt, elt, taint)

    def _sweep_calls(self, node: ast.expr) -> None:
        """Record sink/call sites hidden in conditions and nesting."""
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self.taint_expr(child)

    def finish(self) -> Dict[str, Any]:
        if not self.returns:
            ret = CLEAN
        else:
            ret = _or(self.returns)
        return {"params": self.params, "ret": ret}


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    return []


def _is_set_iteration(node: ast.AST, env: Dict[str, Any]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve_external(module: ModuleInfo, dotted: str) -> Optional[str]:
    """Canonicalise a dotted call through the module's imports."""
    head, _, rest = dotted.partition(".")
    imported = module.imports.get(head)
    if imported is None:
        return None
    kind, target = imported
    if kind == "mod":
        full = f"{target}.{rest}" if rest else target
    else:
        full = f"{target}.{rest}" if rest else target
    return full.replace("np.", "numpy.", 1) if full.startswith("np.") else full


# ----------------------------------------------------------------------
# phase A driver


def collect_module(
    module: ModuleInfo,
    index: ProjectIndex,
    source: str,
    sink_options: Dict[str, Any],
) -> Dict[str, Any]:
    """Extract taint facts for one parsed module."""
    assert module.tree is not None
    resolver = ModuleResolver(index, module)
    lines = source.splitlines()
    functions: Dict[str, Dict[str, Any]] = {}
    records: Dict[str, Any] = {}

    def analyse(
        key: str,
        params: List[str],
        body: Sequence[ast.stmt],
        self_class: Optional[str],
        self_attrs: Dict[str, str],
    ) -> None:
        walker = _FunctionTaint(
            module, resolver, lines, key, params,
            self_class, self_attrs, records, sink_options,
        )
        walker.walk_body(body)
        functions[key] = walker.finish()
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = _FunctionTaint(
                    module, resolver, lines,
                    f"{key}.<local>.{stmt.name}", _params_of(stmt),
                    self_class, self_attrs, records, sink_options,
                )
                nested.walk_body(stmt.body)

    toplevel = [
        stmt for stmt in module.tree.body
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    analyse(f"{module.name}.<toplevel>", [], toplevel, None, {})

    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyse(
                f"{module.name}.{stmt.name}", _params_of(stmt),
                stmt.body, None, {},
            )
        elif isinstance(stmt, ast.ClassDef):
            class_key = f"{module.name}.{stmt.name}"
            self_attrs = collect_self_attr_classes(resolver, stmt)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    analyse(
                        f"{class_key}.{item.name}", _params_of(item),
                        item.body, class_key, self_attrs,
                    )

    return {
        "functions": functions,
        "sinks": records.get("sinks", []),
        "calls": records.get("calls", []),
    }


def _params_of(func: ast.AST) -> List[str]:
    args = func.args
    return [a.arg for a in
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)]


# ----------------------------------------------------------------------
# phase B: evaluation


class TaintEvaluator:
    """Evaluates taint expressions against every function summary."""

    def __init__(self, facts_by_path: Dict[str, Dict[str, Any]]) -> None:
        self.functions: Dict[str, Dict[str, Any]] = {}
        for facts in facts_by_path.values():
            self.functions.update(facts.get("taint", {}).get("functions", {}))

    def evaluate(
        self,
        expr: Sequence[Any],
        param_env: Optional[Dict[int, Optional[str]]] = None,
        stack: Optional[Set[str]] = None,
    ) -> Optional[str]:
        """Source description if tainted, else None."""
        tag = expr[0]
        if tag == "ok":
            return None
        if tag == "t":
            return expr[1]
        if tag == "p":
            if param_env is not None:
                return param_env.get(expr[1])
            return None
        if tag == "or":
            for sub in expr[1]:
                found = self.evaluate(sub, param_env, stack)
                if found is not None:
                    return found
            return None
        if tag == "c":
            _, key, bound, args, kwargs = expr
            func = self.functions.get(key)
            if func is None:
                # Unresolvable summary: propagate argument taint.
                for sub in list(args) + list(kwargs.values()):
                    found = self.evaluate(sub, param_env, stack)
                    if found is not None:
                        return found
                return None
            stack = stack or set()
            if key in stack:
                return None
            params = list(func["params"])
            offset = (
                1 if bound and params and params[0] in ("self", "cls") else 0
            )
            callee_env: Dict[int, Optional[str]] = {}
            for i, arg in enumerate(args):
                idx = i + offset
                if idx < len(params):
                    callee_env[idx] = self.evaluate(arg, param_env, stack)
            for name, arg in kwargs.items():
                if name in params:
                    callee_env[params.index(name)] = self.evaluate(
                        arg, param_env, stack
                    )
            return self.evaluate(func["ret"], callee_env, stack | {key})
        return None

    def param_deps(self, expr: Sequence[Any]) -> Set[int]:
        """Parameter indices whose taint can make ``expr`` tainted."""
        tag = expr[0]
        if tag == "p":
            return {expr[1]}
        if tag == "or":
            out: Set[int] = set()
            for sub in expr[1]:
                out |= self.param_deps(sub)
            return out
        if tag == "c":
            _, key, bound, args, kwargs = expr
            func = self.functions.get(key)
            out = set()
            if func is None:
                for sub in list(args) + list(kwargs.values()):
                    out |= self.param_deps(sub)
                return out
            params = list(func["params"])
            offset = (
                1 if bound and params and params[0] in ("self", "cls") else 0
            )
            ret_deps = self._return_param_deps(key)
            for i, arg in enumerate(args):
                if (i + offset) in ret_deps:
                    out |= self.param_deps(arg)
            for name, arg in kwargs.items():
                if name in params and params.index(name) in ret_deps:
                    out |= self.param_deps(arg)
            return out
        return set()

    def _return_param_deps(
        self, key: str, _stack: Optional[Set[str]] = None
    ) -> Set[int]:
        stack = _stack or set()
        if key in stack:
            return set()
        func = self.functions.get(key)
        if func is None:
            return set()
        stack = stack | {key}
        # Inline param_deps with the extended stack to stay cycle-safe.
        return self._deps_with_stack(func["ret"], stack)

    def _deps_with_stack(
        self, expr: Sequence[Any], stack: Set[str]
    ) -> Set[int]:
        tag = expr[0]
        if tag == "p":
            return {expr[1]}
        if tag == "or":
            out: Set[int] = set()
            for sub in expr[1]:
                out |= self._deps_with_stack(sub, stack)
            return out
        if tag == "c":
            _, key, bound, args, kwargs = expr
            func = self.functions.get(key)
            out = set()
            if func is None:
                for sub in list(args) + list(kwargs.values()):
                    out |= self._deps_with_stack(sub, stack)
                return out
            params = list(func["params"])
            offset = (
                1 if bound and params and params[0] in ("self", "cls") else 0
            )
            ret_deps = (
                set() if key in stack
                else self._deps_with_stack(func["ret"], stack | {key})
            )
            for i, arg in enumerate(args):
                if (i + offset) in ret_deps:
                    out |= self._deps_with_stack(arg, stack)
            for name, arg in kwargs.items():
                if name in params and params.index(name) in ret_deps:
                    out |= self._deps_with_stack(arg, stack)
            return out
        return set()


def compute_sink_params(
    facts_by_path: Dict[str, Dict[str, Any]],
    evaluator: TaintEvaluator,
) -> Dict[str, Dict[int, str]]:
    """Fixed point: function key → {param index → sink description}.

    A parameter is sink-flowing when its taint can reach a sink call
    inside the function, directly or through a callee's sink-flowing
    parameter.
    """
    # Gather each function's sink sites and call sites, keyed by the
    # function they appear in. Records do not carry their enclosing
    # function; recover it by re-grouping at collection time instead —
    # the records were stored flat per module, so group by evaluation.
    flows: Dict[str, Dict[int, str]] = {}
    # Seed: direct parameter → sink edges.
    for facts in facts_by_path.values():
        taint = facts.get("taint", {})
        for record in taint.get("sinks", []):
            owner = record.get("owner")
            if owner is None:
                continue
            for expr in list(record["args"]) + list(
                record["kwargs"].values()
            ):
                for idx in evaluator.param_deps(expr):
                    flows.setdefault(owner, {}).setdefault(
                        idx, record["sink"]
                    )
    # Transitive closure through call sites.
    changed = True
    while changed:
        changed = False
        for facts in facts_by_path.values():
            taint = facts.get("taint", {})
            for record in taint.get("calls", []):
                owner = record.get("owner")
                callee_flows = flows.get(record["key"])
                if owner is None or not callee_flows:
                    continue
                func = evaluator.functions.get(record["key"])
                params = list(func["params"]) if func else []
                offset = (
                    1 if record["bound"] and params
                    and params[0] in ("self", "cls") else 0
                )
                for i, arg in enumerate(record["args"]):
                    sink = callee_flows.get(i + offset)
                    if sink is None:
                        continue
                    for idx in evaluator.param_deps(arg):
                        if idx not in flows.get(owner, {}):
                            flows.setdefault(owner, {})[idx] = sink
                            changed = True
                for name, arg in record["kwargs"].items():
                    if name not in params:
                        continue
                    sink = callee_flows.get(params.index(name))
                    if sink is None:
                        continue
                    for idx in evaluator.param_deps(arg):
                        if idx not in flows.get(owner, {}):
                            flows.setdefault(owner, {})[idx] = sink
                            changed = True
    return flows


def check(
    facts_by_path: Dict[str, Dict[str, Any]],
) -> Iterator[Violation]:
    """Phase B: emit TMO012 findings."""
    evaluator = TaintEvaluator(facts_by_path)
    sink_params = compute_sink_params(facts_by_path, evaluator)
    for path in sorted(facts_by_path):
        taint = facts_by_path[path].get("taint", {})
        # A call can be a sink itself *and* forward into a deeper sink
        # (MetricsRecorder.record → Series.record); report it once.
        sink_sites = {
            (record["line"], record["col"])
            for record in taint.get("sinks", [])
        }
        for record in taint.get("sinks", []):
            for expr in list(record["args"]) + list(
                record["kwargs"].values()
            ):
                source = evaluator.evaluate(expr)
                if source is not None:
                    yield Violation(
                        path=path, line=record["line"], col=record["col"],
                        rule_id="TMO012",
                        message=(
                            f"value derived from {source} reaches metric/"
                            f"export sink {record['sink']}; record only "
                            "seed-deterministic quantities"
                        ),
                        snippet=record["snippet"],
                    )
                    break  # one finding per sink call
        for record in taint.get("calls", []):
            if (record["line"], record["col"]) in sink_sites:
                continue
            callee_flows = sink_params.get(record["key"])
            if not callee_flows:
                continue
            func = evaluator.functions.get(record["key"])
            params = list(func["params"]) if func else []
            offset = (
                1 if record["bound"] and params
                and params[0] in ("self", "cls") else 0
            )
            emitted = False
            for i, arg in enumerate(record["args"]):
                sink = callee_flows.get(i + offset)
                if sink is None:
                    continue
                source = evaluator.evaluate(arg)
                if source is not None:
                    yield Violation(
                        path=path, line=record["line"], col=record["col"],
                        rule_id="TMO012",
                        message=(
                            f"argument derived from {source} flows "
                            f"through {record['key'].rpartition('.')[2]}() "
                            f"into metric/export sink {sink}"
                        ),
                        snippet=record["snippet"],
                    )
                    emitted = True
                    break
            if emitted:
                continue
            for name, arg in record["kwargs"].items():
                if name not in params:
                    continue
                sink = callee_flows.get(params.index(name))
                if sink is None:
                    continue
                source = evaluator.evaluate(arg)
                if source is not None:
                    yield Violation(
                        path=path, line=record["line"], col=record["col"],
                        rule_id="TMO012",
                        message=(
                            f"argument derived from {source} flows "
                            f"through {record['key'].rpartition('.')[2]}() "
                            f"into metric/export sink {sink}"
                        ),
                        snippet=record["snippet"],
                    )
                    break


# ----------------------------------------------------------------------
# rule registration


@register
class NondeterministicSinkRule(FlowRule):
    rule_id = "TMO012"
    name = "nondeterministic-sink"
    summary = (
        "nondeterministic value reaches a metric/export sink (flow pass)"
    )
