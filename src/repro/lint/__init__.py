"""repro.lint — determinism & unit-discipline static analysis.

The reproduction's evaluation methodology rests on one invariant
(DESIGN.md, "Deterministic seeding"): identical seeds produce
bit-identical runs, which is what makes the A/B experiments exact
rather than statistical. This package machine-checks the coding
disciplines that protect the invariant:

* all randomness flows through :func:`repro.sim.rng.derive_rng`
  (TMO001, TMO007);
* no wall-clock reads inside the simulator (TMO002);
* no iteration order leaks from hash-randomised sets (TMO003);
* quantities carry unit suffixes and are never mixed (TMO004);
* assorted correctness hygiene (TMO005, TMO006, TMO008).

On top of the per-file rules, ``tmo-lint --flow`` runs a whole-program
pass (:mod:`repro.lint.flow`) that builds the project call graph and
tracks units and determinism taint *across* function and module
boundaries:

* unit mismatches in arithmetic, call arguments and assignments
  that only materialise interprocedurally (TMO009-TMO011);
* wall-clock / unseeded-RNG / environment taint reaching the metrics
  and CSV-export sinks (TMO012).

Run it with ``python -m repro.lint`` or the ``tmo-lint`` console
script; see docs/LINTING.md for the full rule catalogue, the
``# lint: ignore[RULE]`` comment syntax and the baseline mechanism.
"""

from repro.lint.config import LintConfig, default_config
from repro.lint.engine import LintResult, lint_file, lint_paths
from repro.lint.flow import FlowResult, analyze_flow
from repro.lint.registry import RULES, LintRule, all_rule_ids
from repro.lint.violations import Violation

__all__ = [
    "FlowResult",
    "LintConfig",
    "LintResult",
    "LintRule",
    "RULES",
    "Violation",
    "all_rule_ids",
    "analyze_flow",
    "default_config",
    "lint_file",
    "lint_paths",
]
