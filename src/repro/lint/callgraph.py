"""Project-wide call-graph resolution for the flow passes.

The per-statement rules (TMO001-TMO008) see one file at a time; the
flow passes (:mod:`repro.lint.unitflow`, :mod:`repro.lint.taint`) need
to know *which function a call lands in* across module boundaries.
This module builds that map:

* :class:`ProjectIndex` — every module under the analysed roots, with
  its functions, classes, methods and dataclass fields indexed by a
  stable qualified key (``repro.sim.metrics.MetricsRecorder.record``);
* :class:`ModuleResolver` — resolves a call expression inside one
  module to such a key, through imports (absolute and relative),
  aliases, ``self``, class constructors, and locals whose class is
  known from an assignment or annotation;
* :func:`build_call_graph` — the caller→callee edge set, used by the
  tests and available for tooling.

Resolution is best-effort and *sound for the project's idioms*: a call
that cannot be resolved is simply absent from the graph (the flow
passes then treat its value as unknown/untainted rather than guessing).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.astutil import unit_of

#: Decorator names that mark a class as a dataclass (constructor
#: parameters come from the field declarations).
_DATACLASS_DECORATORS = frozenset({"dataclass", "dataclasses.dataclass"})


def module_name_for(path: Path) -> str:
    """Importable dotted name for ``path``, inferred from packages.

    Walks up while ``__init__.py`` exists, so ``src/repro/sim/host.py``
    maps to ``repro.sim.host`` and a bare ``benchmarks/bench_common.py``
    (no package) maps to ``bench_common`` — exactly how each is
    imported at runtime.
    """
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if path.stem == "__init__" and len(parts) > 1:
        parts = parts[1:]
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method definition."""

    key: str                       # qualified key, e.g. mod.Class.meth
    name: str
    params: List[str] = field(default_factory=list)
    lineno: int = 0
    is_method: bool = False

    @property
    def param_units(self) -> List[Optional[str]]:
        return [unit_of(p) for p in self.params]


@dataclass
class ClassInfo:
    """One class: its methods, declared fields and base names."""

    key: str
    name: str
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: declaration-ordered (field name, unit) pairs — the synthesized
    #: constructor signature for dataclasses without an __init__.
    fields: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    is_dataclass: bool = False
    base_names: List[str] = field(default_factory=list)

    def constructor_params(self) -> List[str]:
        """Constructor parameter names, *without* ``self``."""
        init = self.methods.get("__init__")
        if init is not None:
            return init.params[1:]
        if self.is_dataclass:
            return [name for name, _ in self.fields]
        return []


@dataclass
class ModuleInfo:
    """Everything the resolver knows about one project module."""

    name: str                      # importable dotted name
    path: str                      # as given to the engine (posix)
    tree: Optional[ast.Module] = None
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> ("mod", dotted) | ("obj", "module.attr")
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def _decorator_names(node: ast.AST) -> Iterable[str]:
    for deco in getattr(node, "decorator_list", ()):
        target = deco.func if isinstance(deco, ast.Call) else deco
        parts: List[str] = []
        while isinstance(target, ast.Attribute):
            parts.append(target.attr)
            target = target.value
        if isinstance(target, ast.Name):
            parts.append(target.id)
            yield ".".join(reversed(parts))


def _param_names(func: ast.AST) -> List[str]:
    args = func.args
    return [a.arg for a in
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)]


def _index_class(mod_name: str, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(key=f"{mod_name}.{node.name}", name=node.name)
    info.is_dataclass = any(
        d in _DATACLASS_DECORATORS for d in _decorator_names(node)
    )
    for base in node.bases:
        parts: List[str] = []
        target = base
        while isinstance(target, ast.Attribute):
            parts.append(target.attr)
            target = target.value
        if isinstance(target, ast.Name):
            parts.append(target.id)
            info.base_names.append(".".join(reversed(parts)))
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = FunctionInfo(
                key=f"{info.key}.{stmt.name}",
                name=stmt.name,
                params=_param_names(stmt),
                lineno=stmt.lineno,
                is_method=True,
            )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            info.fields.append((stmt.target.id, unit_of(stmt.target.id)))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.fields.append((target.id, unit_of(target.id)))
    return info


def index_module(name: str, path: str, tree: ast.Module) -> ModuleInfo:
    """Build the definition/import index for one parsed module."""
    info = ModuleInfo(name=name, path=path, tree=tree)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                key=f"{name}.{node.name}",
                name=node.name,
                params=_param_names(node),
                lineno=node.lineno,
            )
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _index_class(name, node)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                info.imports[local] = ("mod", target)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package.
                package = name.split(".")
                # level 1 = current package; the module part of `name`
                # itself is not a package component.
                package = package[: len(package) - node.level]
                base = ".".join(package + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = ("obj", f"{base}.{alias.name}")
    return info


def module_to_json(info: ModuleInfo) -> Dict[str, object]:
    """Serialise a module's *interface* (no AST) for the flow cache."""
    return {
        "name": info.name,
        "path": info.path,
        "functions": {
            name: {
                "key": f.key, "params": f.params,
                "lineno": f.lineno, "is_method": f.is_method,
            }
            for name, f in info.functions.items()
        },
        "classes": {
            name: {
                "key": c.key,
                "methods": {
                    m: {
                        "key": f.key, "params": f.params,
                        "lineno": f.lineno, "is_method": True,
                    }
                    for m, f in c.methods.items()
                },
                "fields": [[n, u] for n, u in c.fields],
                "is_dataclass": c.is_dataclass,
                "bases": c.base_names,
            }
            for name, c in info.classes.items()
        },
        "imports": {k: list(v) for k, v in info.imports.items()},
    }


def module_from_json(data: Dict) -> ModuleInfo:
    """Rebuild a cached module interface (``tree`` stays ``None``)."""
    info = ModuleInfo(name=data["name"], path=data["path"])
    for name, f in data["functions"].items():
        info.functions[name] = FunctionInfo(
            key=f["key"], name=name, params=list(f["params"]),
            lineno=f["lineno"], is_method=f["is_method"],
        )
    for name, c in data["classes"].items():
        cls = ClassInfo(key=c["key"], name=name)
        for m, f in c["methods"].items():
            cls.methods[m] = FunctionInfo(
                key=f["key"], name=m, params=list(f["params"]),
                lineno=f["lineno"], is_method=True,
            )
        cls.fields = [(n, u) for n, u in c["fields"]]
        cls.is_dataclass = c["is_dataclass"]
        cls.base_names = list(c["bases"])
        info.classes[name] = cls
    for local, pair in data["imports"].items():
        info.imports[local] = (pair[0], pair[1])
    return info


class ProjectIndex:
    """All modules under the analysed roots, keyed by dotted name."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}

    def add(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info
        self.by_path[info.path] = info

    # -- lookups -------------------------------------------------------

    def function(self, key: str) -> Optional[FunctionInfo]:
        mod, _, tail = key.rpartition(".")
        info = self.modules.get(mod)
        if info is not None and tail in info.functions:
            return info.functions[tail]
        # method key: module.Class.meth
        mod2, _, cls_name = mod.rpartition(".")
        info = self.modules.get(mod2)
        if info is not None and cls_name in info.classes:
            return info.classes[cls_name].methods.get(tail)
        return None

    def class_info(self, key: str) -> Optional[ClassInfo]:
        mod, _, tail = key.rpartition(".")
        info = self.modules.get(mod)
        if info is not None:
            return info.classes.get(tail)
        return None

    def resolve_method(
        self, class_key: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """Find ``method`` on the class or (project-local) bases."""
        seen = _seen or set()
        if class_key in seen:
            return None
        seen.add(class_key)
        cls = self.class_info(class_key)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        mod = self.modules.get(class_key.rpartition(".")[0])
        for base_name in cls.base_names:
            if mod is None:
                continue
            resolved = ModuleResolver(self, mod).resolve_name(base_name)
            if resolved is not None and resolved[0] == "class":
                found = self.resolve_method(resolved[1], method, seen)
                if found is not None:
                    return found
        return None


def build_project_index(
    files: Sequence[Tuple[str, ast.Module]]
) -> ProjectIndex:
    """Index every (path, tree) pair into a :class:`ProjectIndex`."""
    index = ProjectIndex()
    for path, tree in files:
        name = module_name_for(Path(path))
        index.add(index_module(name, path, tree))
    return index


class ModuleResolver:
    """Resolves names and calls inside one module to project keys.

    Resolution results are tagged tuples:

    * ``("func", key)`` — a project function or method;
    * ``("class", key)`` — a project class (a call is its constructor);
    * ``("mod", name)`` — a project module;
    * ``None`` — outside the project (stdlib, numpy, unknown).
    """

    def __init__(self, index: ProjectIndex, module: ModuleInfo) -> None:
        self.index = index
        self.module = module

    # -- name resolution ----------------------------------------------

    def _resolve_head(self, head: str) -> Optional[Tuple[str, str]]:
        if head in self.module.functions:
            return ("func", self.module.functions[head].key)
        if head in self.module.classes:
            return ("class", self.module.classes[head].key)
        imported = self.module.imports.get(head)
        if imported is None:
            return None
        kind, target = imported
        if kind == "mod":
            if target in self.index.modules:
                return ("mod", target)
            return None
        # "obj": from X import Y — Y may be a function, class or module.
        return self._resolve_dotted_absolute(target)

    def _resolve_dotted_absolute(
        self, dotted: str
    ) -> Optional[Tuple[str, str]]:
        if dotted in self.index.modules:
            return ("mod", dotted)
        mod, _, attr = dotted.rpartition(".")
        info = self.index.modules.get(mod)
        if info is None:
            return None
        if attr in info.functions:
            return ("func", info.functions[attr].key)
        if attr in info.classes:
            return ("class", info.classes[attr].key)
        # Re-export (`from repro.sim import rng` style chains).
        imported = info.imports.get(attr)
        if imported is not None:
            kind, target = imported
            if kind == "mod" and target in self.index.modules:
                return ("mod", target)
            if kind == "obj":
                return self._resolve_dotted_absolute(target)
        return None

    def resolve_name(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Resolve ``a.b.c`` spelled inside this module."""
        parts = dotted.split(".")
        current = self._resolve_head(parts[0])
        for attr in parts[1:]:
            if current is None:
                return None
            kind, key = current
            if kind == "mod":
                current = self._resolve_dotted_absolute(f"{key}.{attr}")
            elif kind == "class":
                method = self.index.resolve_method(key, attr)
                current = ("func", method.key) if method else None
            else:
                return None
        return current

    # -- call resolution ----------------------------------------------

    def resolve_call(
        self,
        call: ast.Call,
        local_classes: Optional[Dict[str, str]] = None,
        self_class: Optional[str] = None,
        self_attr_classes: Optional[Dict[str, str]] = None,
    ) -> Optional[Tuple[str, str, bool]]:
        """Resolve a call node to ``(kind, key, bound)``.

        ``local_classes`` maps local variable names to class keys (from
        ``v = ClassName(...)`` or annotations); ``self_class`` is the
        enclosing class when resolving inside a method;
        ``self_attr_classes`` maps ``self.<attr>`` names to class keys.
        ``bound`` is True when the first declared parameter (``self``)
        is already bound by the receiver.
        """
        func = call.func
        # self.method(...) and self.attr.method(...)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "self" and self_class is not None:
                    method = self.index.resolve_method(self_class, func.attr)
                    if method is not None:
                        return ("func", method.key, True)
                    return None
                if local_classes and value.id in local_classes:
                    method = self.index.resolve_method(
                        local_classes[value.id], func.attr
                    )
                    if method is not None:
                        return ("func", method.key, True)
                    return None
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and self_attr_classes
                and value.attr in self_attr_classes
            ):
                method = self.index.resolve_method(
                    self_attr_classes[value.attr], func.attr
                )
                if method is not None:
                    return ("func", method.key, True)
                return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        resolved = self.resolve_name(dotted)
        if resolved is None:
            return None
        kind, key = resolved
        if kind == "mod":
            return None
        if kind == "class":
            return ("class", key, False)
        # Function reached through a dotted path: `mod.Class.meth(x)`
        # is an unbound method access, plain functions are unbound too.
        info = self.index.function(key)
        bound = False
        if info is not None and info.is_method and "." not in dotted:
            # `from mod import Class` then Class.meth — still unbound;
            # a bare imported method name cannot be bound either.
            bound = False
        return ("func", key, bound)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def collect_self_attr_classes(
    resolver: ModuleResolver, class_node: ast.ClassDef
) -> Dict[str, str]:
    """Map ``self.<attr>`` names to class keys for one class body.

    Sources: ``self.x = ClassName(...)`` assignments in any method and
    ``x: ClassName`` annotated assignments in the class body. Lets the
    flow passes resolve ``self.metrics.record(...)`` to the project's
    ``MetricsRecorder.record``.
    """
    out: Dict[str, str] = {}

    def note(attr: str, type_name: Optional[str]) -> None:
        if not type_name:
            return
        resolved = resolver.resolve_name(type_name)
        if resolved is not None and resolved[0] == "class":
            out[attr] = resolved[1]

    for stmt in class_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            note(stmt.target.id, _dotted(stmt.annotation))
    for node in ast.walk(class_node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                note(target.attr, _dotted(value.func))
    return out


def build_call_graph(
    index: ProjectIndex,
) -> Dict[str, Set[str]]:
    """Caller key → callee keys over every indexed module.

    Module-level calls are attributed to a ``<module>.<toplevel>``
    pseudo-caller so scripts (benchmarks, examples) appear in the graph.
    """
    edges: Dict[str, Set[str]] = {}
    for module in index.modules.values():
        if module.tree is None:
            continue
        resolver = ModuleResolver(index, module)
        _walk_calls(resolver, module, edges)
    return edges


def _caller_key(
    module: ModuleInfo, stack: List[str]
) -> str:
    if not stack:
        return f"{module.name}.<toplevel>"
    return f"{module.name}." + ".".join(stack)


def _walk_calls(
    resolver: ModuleResolver,
    module: ModuleInfo,
    edges: Dict[str, Set[str]],
) -> None:
    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.stack: List[str] = []
            self.class_stack: List[str] = []
            self.local_classes: Dict[str, str] = {}

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.class_stack.append(f"{module.name}.{node.name}")
            self.stack.append(node.name)
            self.generic_visit(node)
            self.stack.pop()
            self.class_stack.pop()

        def _visit_func(self, node) -> None:
            self.stack.append(node.name)
            saved, self.local_classes = self.local_classes, {}
            for arg in node.args.args + node.args.kwonlyargs:
                if arg.annotation is not None:
                    ann = _dotted(arg.annotation)
                    if ann:
                        resolved = resolver.resolve_name(ann)
                        if resolved and resolved[0] == "class":
                            self.local_classes[arg.arg] = resolved[1]
            self.generic_visit(node)
            self.local_classes = saved
            self.stack.pop()

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

        def visit_Assign(self, node: ast.Assign) -> None:
            if isinstance(node.value, ast.Call):
                resolved = resolver.resolve_call(
                    node.value, self.local_classes,
                    self.class_stack[-1] if self.class_stack else None,
                )
                if resolved and resolved[0] == "class":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.local_classes[target.id] = resolved[1]
            self.generic_visit(node)

        def visit_Call(self, node: ast.Call) -> None:
            resolved = resolver.resolve_call(
                node, self.local_classes,
                self.class_stack[-1] if self.class_stack else None,
            )
            if resolved is not None:
                kind, key, _ = resolved
                callee = f"{key}.__init__" if kind == "class" else key
                caller = _caller_key(module, self.stack)
                edges.setdefault(caller, set()).add(callee)
            self.generic_visit(node)

    Visitor().visit(module.tree)
