"""Inline suppression comments.

Two forms, parsed from real tokens (so string literals that look like
comments never trigger):

* ``# lint: ignore[TMO001]`` / ``# lint: ignore[TMO001, TMO004]`` —
  suppress the listed rules on this physical line; ``[*]`` suppresses
  every rule on the line.
* ``# lint: skip-file`` — skip the whole file.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set, Tuple

_IGNORE_RE = re.compile(
    r"#\s*lint:\s*ignore\[([A-Za-z0-9_*,\s]+)\]"
)
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file\b")

#: Marker meaning "every rule" in a per-line ignore set.
ALL_RULES = "*"


def collect_ignores(source: str) -> Tuple[Dict[int, Set[str]], bool]:
    """Parse ``source`` comments.

    Returns ``(line -> suppressed rule ids, skip_file)``. Tokenisation
    errors yield no suppressions — the engine reports the parse failure
    separately.
    """
    ignores: Dict[int, Set[str]] = {}
    skip_file = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            if _SKIP_FILE_RE.search(token.string):
                skip_file = True
            match = _IGNORE_RE.search(token.string)
            if match:
                rules = {
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                line = token.start[0]
                ignores.setdefault(line, set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, False
    return ignores, skip_file


def is_suppressed(
    ignores: Dict[int, Set[str]], line: int, rule_id: str
) -> bool:
    rules = ignores.get(line)
    if not rules:
        return False
    return rule_id in rules or ALL_RULES in rules
