"""Whole-program flow analysis driver (``tmo-lint --flow``).

Coordinates the interprocedural passes over every file the engine
would lint:

1. discover files and hash their contents;
2. reuse the per-file analysis facts from the on-disk cache when the
   file (and the project interface it was resolved against) is
   unchanged, otherwise parse and run phase A of
   :mod:`repro.lint.unitflow` and :mod:`repro.lint.taint`;
3. evaluate phase B over the combined facts and filter findings
   through the same scope configuration and ``# lint: ignore``
   machinery as the per-statement rules.

The cache (default ``.tmo-lint-cache.json``) is keyed by file content
hashes plus a digest of every module's *interface* (which functions,
classes and imports exist): editing a function body invalidates only
that file's facts, while renaming a function re-analyses everything
that could have resolved a call to it. Phase B is always recomputed —
it is pure expression evaluation and costs milliseconds.
"""

from __future__ import annotations

import ast
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from repro.lint import hotpath as _hotpath
from repro.lint import statecontract as _statecontract
from repro.lint import taint as _taint
from repro.lint import unitflow as _unitflow
from repro.lint.callgraph import (
    ModuleInfo,
    ProjectIndex,
    index_module,
    module_from_json,
    module_name_for,
    module_to_json,
)
from repro.lint.config import LintConfig, default_config
from repro.lint.engine import PARSE_ERROR_RULE, iter_python_files
from repro.lint.ignores import collect_ignores, is_suppressed
from repro.lint.registry import RULES
from repro.lint.violations import Violation

CACHE_VERSION = 3
DEFAULT_CACHE = ".tmo-lint-cache.json"


def flow_rule_ids() -> Set[str]:
    return {rule_id for rule_id, cls in RULES.items() if cls.flow}


@dataclass
class FlowResult:
    """Outcome of one whole-program analysis run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: wall seconds per flow pass (phase A collection + phase B check),
    #: keyed "unitflow"/"taint"/"state"/"hotpath" — surfaced by --stats.
    pass_wall_s: Dict[str, float] = field(default_factory=dict)
    #: profile cross-check results (``tmo-lint --flow --profile``):
    #: functions measured hot but outside the static hot region, each
    #: ``{"key", "share", "path", "line"}``.
    hot_unanalyzed: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.hot_unanalyzed


@dataclass
class _FileState:
    path: Path
    rel: str
    digest: str
    source: Optional[str] = None
    tree: Optional[ast.Module] = None
    module: Optional[ModuleInfo] = None
    facts: Optional[Dict[str, Any]] = None          # {"unit":…, "taint":…}
    ignores: Dict[int, Set[str]] = field(default_factory=dict)
    skip_file: bool = False
    parse_error: Optional[Violation] = None
    from_cache: bool = False
    cached_interface_digest: str = ""


def _hash_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _load_cache(cache_path: Optional[Path]) -> Dict[str, Any]:
    if cache_path is None:
        return {}
    try:
        data = json.loads(cache_path.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(
    cache_path: Optional[Path],
    states: Sequence[_FileState],
    interface_digest: str,
) -> None:
    if cache_path is None:
        return
    files: Dict[str, Any] = {}
    for state in states:
        if state.facts is None or state.module is None:
            continue
        files[state.rel] = {
            "hash": state.digest,
            "interface_digest": interface_digest,
            "interface": module_to_json(state.module),
            "facts": state.facts,
            "ignores": {
                str(line): sorted(rules)
                for line, rules in state.ignores.items()
            },
            "skip_file": state.skip_file,
        }
    payload = {"version": CACHE_VERSION, "files": files}
    try:
        cache_path.write_text(json.dumps(payload) + "\n")
    except OSError:
        pass  # a read-only checkout just runs uncached


def _parse_state(state: _FileState) -> None:
    """Read + parse one file into its state; record parse failures."""
    try:
        state.source = state.path.read_text()
        state.tree = ast.parse(state.source, filename=str(state.path))
    except (SyntaxError, ValueError) as exc:
        state.parse_error = Violation(
            path=state.rel,
            line=getattr(exc, "lineno", 1) or 1,
            col=(getattr(exc, "offset", 1) or 1) - 1,
            rule_id=PARSE_ERROR_RULE,
            message=f"file could not be parsed: {exc}",
        )
        state.tree = None


def _options_digest(config: LintConfig) -> str:
    flow_options = {
        rule_id: config.options_for(rule_id)
        for rule_id in sorted(flow_rule_ids())
    }
    return _hash_bytes(
        json.dumps(flow_options, sort_keys=True, default=sorted).encode()
    )


def analyze_flow(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
    cache_path: Optional[Path] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> FlowResult:
    """Run the interprocedural passes over ``paths``.

    ``select`` restricts reported rules (same contract as the engine's
    ``--select``); the analysis itself always runs in full so the
    cache stays coherent regardless of rule selection. ``profile`` is
    a loaded tick-share document (:func:`repro.lint.hotpath.
    load_profile`): findings in measured-hot functions are escalated
    and ``FlowResult.hot_unanalyzed`` is populated.
    """
    config = config or default_config()
    result = FlowResult()
    files = iter_python_files(paths, config)
    result.files_checked = len(files)
    if not files:
        return result

    cached_files = _load_cache(cache_path)
    options_digest = _options_digest(config)

    # -- pass 1: hash, and decide reuse-vs-parse per file -------------
    states: List[_FileState] = []
    for path in files:
        rel = path.as_posix()
        try:
            raw = path.read_bytes()
        except OSError:
            continue
        state = _FileState(path=path, rel=rel, digest=_hash_bytes(raw))
        entry = cached_files.get(rel)
        if entry is not None and entry.get("hash") == state.digest:
            state.module = module_from_json(entry["interface"])
            state.facts = entry.get("facts")
            state.ignores = {
                int(line): set(rules)
                for line, rules in entry.get("ignores", {}).items()
            }
            state.skip_file = bool(entry.get("skip_file"))
            state.from_cache = True
            state.cached_interface_digest = entry.get("interface_digest", "")
        else:
            _parse_state(state)
            if state.tree is not None:
                state.module = index_module(
                    module_name_for(path), rel, state.tree
                )
        states.append(state)

    # -- pass 2: assemble the project index and interface digest ------
    index = ProjectIndex()
    for state in states:
        if state.module is not None:
            index.add(state.module)
    interface_parts = [
        json.dumps(module_to_json(state.module), sort_keys=True)
        for state in states if state.module is not None
    ]
    interface_digest = _hash_bytes(
        ("\n".join(sorted(interface_parts)) + options_digest).encode()
    )

    # -- pass 3: (re-)collect facts where needed ----------------------
    sink_options = config.options_for("TMO012")
    state_options = {
        rule_id: config.options_for(rule_id)
        for rule_id in ("TMO014", "TMO015", "TMO016")
    }
    hot_options = {
        rule_id: config.options_for(rule_id)
        for rule_id in ("TMO017", "TMO018", "TMO019", "TMO020", "TMO021")
    }
    pass_wall = {"unitflow": 0.0, "taint": 0.0, "state": 0.0,
                 "hotpath": 0.0}

    def _timed(pass_name: str, thunk):
        start = time.perf_counter()  # lint: ignore[TMO002]
        value = thunk()
        pass_wall[pass_name] += time.perf_counter() - start  # lint: ignore[TMO002]
        return value

    for state in states:
        if state.module is None:
            continue
        stale = (
            state.from_cache
            and state.cached_interface_digest != interface_digest
        )
        if state.from_cache and not stale and state.facts is not None:
            result.cache_hits += 1
            continue
        result.cache_misses += 1
        if state.tree is None:
            _parse_state(state)
            if state.tree is None:
                state.module = None
                continue
            state.module = index_module(
                module_name_for(state.path), state.rel, state.tree
            )
            index.add(state.module)
        assert state.source is not None
        state.module.tree = state.tree
        module, source = state.module, state.source
        state.facts = {
            "unit": _timed("unitflow", lambda: _unitflow.collect_module(
                module, index, source
            )),
            "taint": _timed("taint", lambda: _taint.collect_module(
                module, index, source, sink_options
            )),
            "state": _timed("state", lambda: _statecontract.collect_module(
                module, index, source, state_options
            )),
            "hot": _timed("hotpath", lambda: _hotpath.collect_module(
                module, index, source, hot_options
            )),
        }
        ignores, skip_file = collect_ignores(state.source)
        state.ignores = ignores
        state.skip_file = skip_file
        state.module.tree = None  # keep cache entries AST-free

    # -- pass 4: evaluate and filter ----------------------------------
    facts_by_path = {
        state.rel: state.facts
        for state in states
        if state.facts is not None
    }
    flow_ids = flow_rule_ids()
    if select is not None:
        selected = set(select) & flow_ids
    else:
        selected = None

    ignore_map = {state.rel: state for state in states}
    findings: List[Violation] = []
    for state in states:
        if state.parse_error is not None:
            findings.append(state.parse_error)

    raw = _timed("unitflow", lambda: list(_unitflow.check(facts_by_path)))
    raw.extend(_timed("taint", lambda: list(_taint.check(facts_by_path))))
    raw.extend(_timed("state", lambda: list(
        _statecontract.check(facts_by_path, state_options)
    )))
    raw.extend(_timed("hotpath", lambda: list(
        _hotpath.check(facts_by_path, hot_options, profile=profile)
    )))
    for violation in raw:
        state = ignore_map.get(violation.path)
        if state is None or state.skip_file:
            continue
        if selected is not None:
            if violation.rule_id not in selected:
                continue
        else:
            enabled = config.rules_for(violation.path) & flow_ids
            if violation.rule_id not in enabled:
                continue
        if is_suppressed(state.ignores, violation.line, violation.rule_id):
            continue
        findings.append(violation)

    findings.sort(key=Violation.sort_key)
    result.violations = findings
    if profile is not None:
        result.hot_unanalyzed = _timed("hotpath", lambda: (
            _hotpath.hot_unanalyzed(facts_by_path, hot_options, profile)
        ))
    result.pass_wall_s = dict(pass_wall)

    _save_cache(cache_path, states, interface_digest)
    return result
