"""The rule registry.

Each rule is a class with a unique ``TMOxxx`` id, registered at import
time via the :func:`register` decorator. The engine instantiates one
rule object per file; rules receive a :class:`FileContext` and yield
:class:`~repro.lint.violations.Violation` findings.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Type

from repro.lint.astutil import ImportMap
from repro.lint.violations import Violation


class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    def __init__(
        self,
        path: str,
        tree: ast.Module,
        source: str,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.options = options or {}
        self._imports: Optional[ImportMap] = None

    @property
    def imports(self) -> ImportMap:
        if self._imports is None:
            self._imports = ImportMap(self.tree)
        return self._imports

    def path_exempt(self) -> bool:
        """Whether this file is on the rule's exempt list."""
        suffixes = self.options.get("exempt_path_suffixes", ())
        normalized = self.path.replace("\\", "/")
        return any(normalized.endswith(suffix) for suffix in suffixes)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class LintRule:
    """Base class for all rules."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    #: True for whole-program rules driven by the flow analyzer
    #: (``tmo-lint --flow``) rather than the per-file engine.
    flow: bool = False

    def check(self, ctx: FileContext) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            path=ctx.path,
            line=lineno,
            col=col,
            rule_id=self.rule_id,
            message=message,
            snippet=ctx.line_text(lineno),
        )


#: rule id -> rule class, populated by :func:`register`.
RULES: Dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def all_rule_ids() -> List[str]:
    return sorted(RULES)
