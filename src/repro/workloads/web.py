"""The Web application model (Sections 4.2-4.4).

Web is the paper's flagship A/B workload. Its memory profile: it starts
by loading the entire file-system cache into memory, then lazily grows
anonymous memory as requests arrive. As hosts approach their memory
limit, servers self-regulate — they throttle requests per second (RPS)
to meet a tail-latency target and avoid running out of memory; the
Figure 11 baseline loses more than 20% RPS over two hours this way.

The model closes the loop the same way: achieved RPS is the offered rate
scaled by (a) how much of the worker threads' time survives fault
stalls, and (b) a self-regulation factor that kicks in as free memory
vanishes. TMO recovers RPS by keeping free memory available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.mm import MemoryManager
from repro.workloads.apps import APP_CATALOG, AppProfile
from repro.workloads.base import TickResult, Workload

_GB = 1 << 30


@dataclass(frozen=True)
class WebConfig:
    """Tunables of the Web RPS model.

    Attributes:
        base_rps: the unthrottled request rate of a healthy host.
        anon_growth_frac_per_hour: anonymous footprint growth per hour as
            a fraction of the initial anon size (the lazy loading of
            request-driven state).
        headroom_throttle_frac: free-memory fraction of host RAM below
            which self-regulation begins.
        min_throttle: the floor of the self-regulation factor (servers
            never stop serving entirely).
        alloc_free_floor_frac: free-memory fraction below which the
            server stops admitting new allocations entirely — the last
            line of self-protection against running out of memory.
        stall_sensitivity: amplification of fault-stall time into lost
            request capacity. Web is CPU-frontend bound (Section 4.4):
            a page of evicted bytecode slows *every* request fetching
            through it, not just the single sampled fault, so a
            simulated fault's stall represents a correspondingly larger
            slice of lost serving capacity.
    """

    base_rps: float = 800.0
    anon_growth_frac_per_hour: float = 0.12
    headroom_throttle_frac: float = 0.08
    min_throttle: float = 0.55
    alloc_free_floor_frac: float = 0.03
    stall_sensitivity: float = 40.0


class WebWorkload(Workload):
    """Web with closed-loop RPS throttling."""

    def __init__(
        self,
        mm: MemoryManager,
        cgroup_name: str,
        seed: int,
        config: WebConfig = WebConfig(),
        profile: AppProfile = None,
    ) -> None:
        super().__init__(
            mm, profile if profile is not None else APP_CATALOG["Web"],
            cgroup_name, seed,
        )
        self.config = config
        self.rps = config.base_rps

    # ------------------------------------------------------------------

    def _stall_factor(self, tick: TickResult, dt: float) -> float:
        """Share of serving capacity that survives fault stalls."""
        thread_time = self.profile.nthreads * dt
        if thread_time <= 0:
            return 1.0
        lost = tick.total_stall_s * self.config.stall_sensitivity
        return max(0.05, 1.0 - min(lost, thread_time) / thread_time)

    def _memory_factor(self) -> float:
        """Self-regulation as free memory vanishes (avoid OOM)."""
        free_frac = self.mm.free_bytes() / self.mm.ram_bytes
        threshold = self.config.headroom_throttle_frac
        if free_frac >= threshold:
            return 1.0
        span = max(1e-9, threshold)
        factor = self.config.min_throttle + (
            1.0 - self.config.min_throttle
        ) * (free_frac / span)
        return max(self.config.min_throttle, factor)

    def tick(self, now: float, dt: float) -> TickResult:
        tick = super().tick(now, dt)

        stall_factor = self._stall_factor(tick, dt)
        memory_factor = self._memory_factor()
        self.rps = self.config.base_rps * min(stall_factor, memory_factor)
        requests = self.rps * dt
        tick.work_done = requests

        # Below the free-memory floor the server admits no new
        # allocations at all (self-protection against OOM).
        free_frac = self.mm.free_bytes() / self.mm.ram_bytes
        if free_frac < self.config.alloc_free_floor_frac:
            return tick

        # Request-driven anonymous growth: lazily loaded state, scaled
        # off the initial anon footprint and the achieved request rate.
        growth_rate = (
            self.config.anon_growth_frac_per_hour / 3600.0
        ) * self.profile.anon_frac * self._initial_pages * (
            self.rps / self.config.base_rps
        )
        self._growth_carry += growth_rate * dt
        n_new = int(self._growth_carry)
        if n_new > 0:
            self._growth_carry -= n_new
            self._allocate_more(n_new, now, tick)
        return tick
