"""Diurnal load patterns.

Datacenter services breathe with the day: request rates and memory
footprints swell at peak and shrink at trough. Senpai's design leans on
this asymmetry — contraction is reclaimed gradually, expansion is never
blocked — so a workload that cycles is the natural long-horizon
exercise for the controller.

:class:`DiurnalWorkload` wraps the standard driver with a sinusoidal
intensity curve that modulates both access intensity (hot pages are
touched more often at peak) and footprint (anonymous memory is
allocated toward the peak and released toward the trough).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.kernel.mm import MemoryManager
from repro.workloads.apps import AppProfile
from repro.workloads.base import TickResult, Workload


class DiurnalWorkload(Workload):
    """A workload whose load follows a day curve."""

    def __init__(
        self,
        mm: MemoryManager,
        profile: AppProfile,
        cgroup_name: str,
        seed: int,
        period_s: float = 86400.0,
        amplitude: float = 0.3,
        footprint_swing: float = 0.2,
        phase_s: float = 0.0,
    ) -> None:
        """
        Args:
            period_s: cycle length (compress it for simulations).
            amplitude: peak-to-mean ratio of access intensity
                (0.3 = ±30% around the profile's base intensity).
            footprint_swing: fraction of the initial anon footprint
                allocated at peak and released at trough.
            phase_s: offset of the peak within the cycle.
        """
        super().__init__(mm, profile, cgroup_name, seed)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0,1), got {amplitude}")
        if not 0.0 <= footprint_swing < 1.0:
            raise ValueError(
                f"footprint_swing must be in [0,1), got {footprint_swing}"
            )
        self.period_s = period_s
        self.amplitude = amplitude
        self.footprint_swing = footprint_swing
        self.phase_s = phase_s
        #: Pages allocated above the base population (the swing pool).
        self._swing_pages: List = []

    def intensity(self, now: float) -> float:
        """Current load multiplier (1.0 = the profile's base level)."""
        angle = 2.0 * math.pi * (now - self.phase_s) / self.period_s
        return 1.0 + self.amplitude * math.sin(angle)

    def _target_swing(self, now: float) -> int:
        """How many swing pages the current phase wants resident."""
        angle = 2.0 * math.pi * (now - self.phase_s) / self.period_s
        # 0 at trough, max at peak.
        level = 0.5 * (1.0 + math.sin(angle))
        max_swing = int(
            self._initial_pages * self.profile.anon_frac
            * self.footprint_swing
        )
        return int(level * max_swing)

    def _select_touches(self, dt: float) -> np.ndarray:
        # Intensity scales the effective quantum: hotter phases touch
        # more pages (a Poisson thinning/boosting of the base process).
        return super()._select_touches(dt * self._current_intensity)

    def _breathe(self, now: float, tick: TickResult) -> None:
        """Allocate toward the peak, release toward the trough."""
        target = self._target_swing(now)
        have = len(self._swing_pages)
        if target > have:
            start = len(self._pages)
            grown = self._allocate_more(target - have, now, tick)
            self._swing_pages.extend(self._pages[start:start + grown])
        elif target < have:
            doomed = {
                id(self._swing_pages.pop()) for _ in range(have - target)
            }
            keep_mask = np.ones(len(self._pages), dtype=bool)
            for idx in range(len(self._pages) - 1, -1, -1):
                if not doomed:
                    break
                page = self._pages[idx]
                if id(page) in doomed:
                    doomed.discard(id(page))
                    self.mm.release_page(page)
                    keep_mask[idx] = False
            self._pages = [
                p for p, keep in zip(self._pages, keep_mask) if keep
            ]
            self._intervals = self._intervals[keep_mask]

    def tick(self, now: float, dt: float) -> TickResult:
        self._current_intensity = self.intensity(now)
        tick = super().tick(now, dt)
        self._breathe(now, tick)
        return tick
