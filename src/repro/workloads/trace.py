"""Access-trace recording and replay.

The paper's A/B methodology relies on identically loaded tiers. For
open-loop workloads, identical seeds already give identical access
sequences; for closed-loop ones (Web throttles its own request rate,
and request-driven growth feeds back into the access stream), the
sequences diverge with the substrate. Recording a trace on one run and
replaying it bit-exactly on another removes that confound entirely:
*the same accesses*, different memory system.

Usage::

    recorder = RecordingWorkload(mm_a, profile, "app", seed=7)
    recorder.start(now=0.0, size_scale=0.05)
    ... drive host A ...
    trace = recorder.trace

    replayer = ReplayWorkload(mm_b, trace, "app")
    replayer.start(now=0.0)
    ... drive host B: it touches exactly the recorded pages ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.kernel.mm import MemoryManager
from repro.workloads.apps import AppProfile
from repro.workloads.base import TickResult, Workload


@dataclass
class TraceEvent:
    """One quantum's recorded behaviour."""

    touched: List[int]
    grown: int = 0


@dataclass
class AccessTrace:
    """A complete recorded run of one workload."""

    profile: AppProfile
    seed: int
    size_scale: float
    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def total_touches(self) -> int:
        return sum(len(e.touched) for e in self.events)


class RecordingWorkload(Workload):
    """A workload that records its touch/growth sequence as it runs."""

    def __init__(
        self,
        mm: MemoryManager,
        profile: AppProfile,
        cgroup_name: str,
        seed: int,
    ) -> None:
        super().__init__(mm, profile, cgroup_name, seed)
        self._seed = seed
        self.trace: Optional[AccessTrace] = None
        self._current_event: Optional[TraceEvent] = None

    def start(self, now: float, size_scale: float = 1.0) -> None:
        super().start(now, size_scale=size_scale)
        self.trace = AccessTrace(
            profile=self.profile, seed=self._seed, size_scale=size_scale
        )

    def _select_touches(self, dt: float) -> np.ndarray:
        touched = super()._select_touches(dt)
        self._current_event = TraceEvent(touched=[int(i) for i in touched])
        self.trace.events.append(self._current_event)
        return touched

    def _allocate_more(self, n_new: int, now: float, tick: TickResult) -> int:
        allocated = super()._allocate_more(n_new, now, tick)
        if self._current_event is not None:
            self._current_event.grown += allocated
        return allocated


class ReplayWorkload(Workload):
    """A workload that replays a recorded trace, touch for touch.

    The page population is rebuilt from the trace's profile, seed and
    scale (so page kinds and compressibilities match the recording);
    each tick touches exactly the recorded indices and repeats the
    recorded growth. Replaying past the end of the trace raises.
    """

    def __init__(
        self,
        mm: MemoryManager,
        trace: AccessTrace,
        cgroup_name: str,
    ) -> None:
        super().__init__(mm, trace.profile, cgroup_name, trace.seed)
        self.trace = trace
        self._cursor = 0
        #: Touches referencing pages the replay host could not allocate
        #: (it OOMed where the recording host did not). Nonzero values
        #: mean the A/B is not apples-to-apples — check it.
        self.dropped_touches = 0

    def start(self, now: float, size_scale: Optional[float] = None) -> None:
        scale = self.trace.size_scale if size_scale is None else size_scale
        super().start(now, size_scale=scale)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.trace.events)

    def _select_touches(self, dt: float) -> np.ndarray:
        if self.exhausted:
            raise IndexError(
                f"trace exhausted after {len(self.trace.events)} events"
            )
        event = self.trace.events[self._cursor]
        touched = np.asarray(event.touched, dtype=np.int64)
        in_range = touched < len(self._pages)
        self.dropped_touches += int((~in_range).sum())
        return touched[in_range]

    def _grow(self, now: float, dt: float, tick: TickResult) -> None:
        event = self.trace.events[self._cursor]
        self._cursor += 1
        if event.grown > 0:
            self._allocate_more(event.grown, now, tick)
