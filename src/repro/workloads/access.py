"""Memory access patterns: heat bands and re-access intervals.

Figure 2 describes each application's memory by how recently it was
touched: within 1 minute, within 2, within 5, or colder. We model each
page with a mean re-access interval drawn from its heat band; per tick, a
page is touched with probability ``1 - exp(-dt / interval)`` (a Poisson
re-access process), which reproduces the published recency histogram in
steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Mean re-access interval (seconds) representative of each heat band.
#: Band 1 re-accesses well inside a minute; band 2 inside two minutes;
#: band 3 inside five; cold pages are touched on the scale of hours.
BAND_INTERVALS_S = (12.0, 75.0, 200.0, 5400.0)

#: Lognormal jitter within the three warm bands.
WARM_SIGMA = 0.4

#: Lognormal spread of the cold band. Deliberately wide (heavy-tailed):
#: page coldness in production is a continuum, and it is exactly the
#: *marginal* cold page — re-accessed every handful of minutes — whose
#: fault cost differs between a fast and a slow backend. A sharp
#: warm/cold gap would erase the backend-speed sensitivity that
#: Figures 11-13 demonstrate.
COLD_SIGMA = 1.6

#: Fraction of cold pages that are never re-accessed at all (allocated
#: once and forgotten — the "used just once" memory Section 3.3 calls
#: out). Modelled with an effectively infinite interval.
NEVER_TOUCHED_SHARE_OF_COLD = 0.35

_NEVER = 1e18  # seconds; effectively never within any simulation


@dataclass(frozen=True)
class HeatBands:
    """Share of a workload's memory in each recency band (Figure 2).

    Attributes:
        used_1min: fraction touched within the last minute.
        used_2min: *additional* fraction touched within two minutes.
        used_5min: *additional* fraction touched within five minutes.

    The remainder (``cold``) is untouched past five minutes.
    """

    used_1min: float
    used_2min: float
    used_5min: float

    def __post_init__(self) -> None:
        total = self.used_1min + self.used_2min + self.used_5min
        if not (0.0 <= self.used_1min <= 1.0
                and 0.0 <= self.used_2min <= 1.0
                and 0.0 <= self.used_5min <= 1.0):
            raise ValueError(f"band fractions must be in [0,1]: {self}")
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"band fractions sum to {total:.3f} > 1: {self}"
            )

    @property
    def cold(self) -> float:
        """Fraction untouched in the last five minutes."""
        return max(0.0, 1.0 - self.used_1min - self.used_2min - self.used_5min)

    @property
    def warm(self) -> float:
        """Fraction touched within five minutes (the active working set)."""
        return 1.0 - self.cold


def assign_reaccess_intervals(
    n_pages: int,
    bands: HeatBands,
    rng: np.random.Generator,
    never_share: float = NEVER_TOUCHED_SHARE_OF_COLD,
) -> np.ndarray:
    """Draw a mean re-access interval for each of ``n_pages`` pages.

    Args:
        never_share: fraction of cold pages that are never re-accessed
            (default :data:`NEVER_TOUCHED_SHARE_OF_COLD`). Lower values
            mean the cold mass churns — every offloaded page eventually
            costs a fault, so the offload depth becomes a function of
            backend speed.

    Pages are assigned to bands according to the band fractions; within
    the warm bands, intervals are jittered lognormally (sigma 0.4)
    around the band's representative interval so the recency histogram
    is smooth rather than stepped. The cold band is a wide lognormal
    continuum (see :data:`COLD_SIGMA`).
    """
    if n_pages < 0:
        raise ValueError(f"n_pages must be >= 0, got {n_pages}")
    fractions = np.array(
        [bands.used_1min, bands.used_2min, bands.used_5min, bands.cold]
    )
    fractions = fractions / fractions.sum()
    band_idx = rng.choice(4, size=n_pages, p=fractions)
    base = np.array(BAND_INTERVALS_S)[band_idx]
    sigma = np.where(band_idx == 3, COLD_SIGMA, WARM_SIGMA)
    jitter = np.exp(rng.normal(loc=0.0, scale=1.0, size=n_pages) * sigma)
    intervals = base * jitter
    # Cold intervals never dip into the warm range: a "cold" page is by
    # definition not touched within the 5-minute window.
    cold_mask = band_idx == 3
    intervals[cold_mask] = np.maximum(intervals[cold_mask], 420.0)
    # A share of cold pages is never re-accessed at all.
    never = rng.random(n_pages) < never_share
    intervals[cold_mask & never] = _NEVER
    return intervals


def touch_probability(intervals: np.ndarray, dt: float) -> np.ndarray:
    """Per-page probability of at least one touch during ``dt`` seconds."""
    if dt < 0:
        raise ValueError(f"dt must be >= 0, got {dt}")
    return -np.expm1(-dt / intervals)
