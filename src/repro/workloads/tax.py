"""Memory-tax workloads (Section 2.3).

Datacenter memory tax — software packages, profiling, logging and other
supporting functions — averages 13% of server memory and is uniform
across workloads. Microservice tax — routing, proxying, service
discovery for disaggregated services — averages 7% and varies by app.
Both have much more relaxed performance SLAs than the applications they
support, which is why they were TMO's first offloading target.
"""

from __future__ import annotations

from typing import Dict

from repro.kernel.mm import MemoryManager
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

#: Tax footprints as a fraction of total server memory (Figure 3).
DATACENTER_TAX_FRAC = 0.13
MICROSERVICE_TAX_FRAC = 0.07

#: Sidecar profiles. Sizes here are per 64 GB host (13% / 7%); hosts
#: scale them via ``size_scale`` at start. The taxes are colder than the
#: applications (their working sets are sporadic — log flushes, routing
#: table refreshes) and compress well (text-heavy buffers).
TAX_PROFILES: Dict[str, AppProfile] = {
    "Datacenter Tax": AppProfile(
        name="Datacenter Tax",
        size_gb=64.0 * DATACENTER_TAX_FRAC,
        anon_frac=0.30,
        bands=HeatBands(0.20, 0.08, 0.10),  # 62% cold
        compress_ratio=3.5,
        preferred_backend="zswap",
        nthreads=4,
        cpu_cores=1.0,
    ),
    "Microservice Tax": AppProfile(
        name="Microservice Tax",
        size_gb=64.0 * MICROSERVICE_TAX_FRAC,
        anon_frac=0.55,
        bands=HeatBands(0.30, 0.10, 0.10),  # 50% cold
        compress_ratio=3.0,
        preferred_backend="zswap",
        nthreads=4,
        cpu_cores=1.0,
    ),
}


class TaxWorkload(Workload):
    """A sidecar container carrying one of the memory taxes."""

    def __init__(
        self,
        mm: MemoryManager,
        kind: str,
        cgroup_name: str,
        seed: int,
    ) -> None:
        if kind not in TAX_PROFILES:
            raise KeyError(
                f"unknown tax kind {kind!r}; have {sorted(TAX_PROFILES)}"
            )
        super().__init__(mm, TAX_PROFILES[kind], cgroup_name, seed)
        self.kind = kind
