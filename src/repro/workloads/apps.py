"""The application catalog.

Profiles for the applications named across the paper's figures, encoded
from the published characteristics:

* Figure 2 — recency (heat) bands for seven large applications; the cold
  share ranges 19-62% with a ~35% average.
* Figure 4 — anonymous vs file-backed split, which "varies wildly".
* Figure 9 — which backend each app uses (zswap for compressible data,
  SSD for e.g. quantised ML models at 1.3-1.4x) and its savings.

Values not published (exact band splits for apps only appearing in one
figure) are representative choices documented inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.access import HeatBands


@dataclass(frozen=True)
class AppProfile:
    """Memory behaviour of one application, as TMO observes it.

    Attributes:
        name: application name as used in the paper's figures.
        size_gb: nominal per-host resident footprint at start.
        anon_frac: share of the footprint that is anonymous memory.
        bands: recency heat bands (Figure 2).
        compress_ratio: zstd compression ratio of its anonymous data.
        preferred_backend: ``"zswap"`` or ``"ssd"`` — the offload backend
            chosen for it in production (Section 5.2: currently manual).
        file_preload: whether file pages are loaded up-front (Web) or
            faulted in lazily.
        dirty_file_frac: share of file pages that are dirty when evicted.
        nthreads: simulated request/worker threads.
        cpu_cores: average CPU cores the app consumes when unthrottled.
        growth_gb_per_hour: steady anonymous-memory growth (0 for
            size-stable services).
        cold_never_share: fraction of the cold band never re-accessed.
            Latency-sensitive apps whose cold memory still churns (Web)
            set this low; batch apps with write-once data set it high.
    """

    name: str
    size_gb: float
    anon_frac: float
    bands: HeatBands
    compress_ratio: float
    preferred_backend: str = "zswap"
    file_preload: bool = False
    dirty_file_frac: float = 0.02
    nthreads: int = 8
    cpu_cores: float = 8.0
    growth_gb_per_hour: float = 0.0
    cold_never_share: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.anon_frac <= 1.0:
            raise ValueError(f"{self.name}: anon_frac must be in [0,1]")
        if self.compress_ratio < 1.0:
            raise ValueError(f"{self.name}: compress_ratio must be >= 1")
        if self.preferred_backend not in ("zswap", "ssd"):
            raise ValueError(
                f"{self.name}: backend must be 'zswap' or 'ssd', "
                f"got {self.preferred_backend!r}"
            )


#: Figure 2's seven applications. Band splits chosen to match the
#: figure's described shape: Feed 50/8/12 with 30% cold; Cache B 81%
#: active in 5 min; Web only 38% active (62% cold); fleet average ~35%
#: cold.
FIG2_APPS: Tuple[str, ...] = (
    "Ads A", "Ads B", "Analytics", "Feed", "Cache A", "Cache B", "Web",
)

#: Figure 4's domains (two taxes plus applications). The tax entries
#: live in :mod:`repro.workloads.tax`.
FIG4_DOMAINS: Tuple[str, ...] = (
    "Datacenter Tax", "Microservice Tax",
    "Ads A", "Ads B", "Video", "Feed", "Cache", "RE", "Web",
)

#: Figure 9's eight applications, ordered as plotted: the first five use
#: the compressed-memory backend, the rest offload to SSD.
FIG9_APPS: Tuple[str, ...] = (
    "Ads A", "Ads C", "Web", "Warehouse", "Feed",
    "Ads B", "RE", "ML", "Reader",
)


APP_CATALOG: Dict[str, AppProfile] = {
    # ----- Figure 2 apps ------------------------------------------------
    "Ads A": AppProfile(
        name="Ads A", size_gb=40.0, anon_frac=0.75,
        bands=HeatBands(0.45, 0.10, 0.10),  # 35% cold
        compress_ratio=3.0, preferred_backend="zswap",
    ),
    "Ads B": AppProfile(
        name="Ads B", size_gb=45.0, anon_frac=0.80,
        bands=HeatBands(0.40, 0.10, 0.12),  # 38% cold
        # Quantised byte-encoded model values: 1.3-1.4x (Section 4.1).
        compress_ratio=1.4, preferred_backend="ssd",
    ),
    "Analytics": AppProfile(
        name="Analytics", size_gb=30.0, anon_frac=0.55,
        bands=HeatBands(0.30, 0.10, 0.15),  # 45% cold
        compress_ratio=2.5, preferred_backend="zswap",
    ),
    "Feed": AppProfile(
        name="Feed", size_gb=38.0, anon_frac=0.60,
        bands=HeatBands(0.50, 0.08, 0.12),  # 30% cold — Figure 2's example
        compress_ratio=3.5, preferred_backend="zswap",
    ),
    "Cache A": AppProfile(
        name="Cache A", size_gb=48.0, anon_frac=0.85,
        bands=HeatBands(0.60, 0.10, 0.08),  # 22% cold
        compress_ratio=2.2, preferred_backend="zswap",
    ),
    "Cache B": AppProfile(
        name="Cache B", size_gb=50.0, anon_frac=0.85,
        bands=HeatBands(0.65, 0.10, 0.06),  # 19% cold — hottest app
        compress_ratio=2.0, preferred_backend="zswap",
    ),
    "Web": AppProfile(
        name="Web", size_gb=48.0, anon_frac=0.65,
        bands=HeatBands(0.20, 0.08, 0.10),  # 62% cold — coldest app
        # Web's data compresses 4x (Section 4.2).
        compress_ratio=4.0, preferred_backend="zswap",
        file_preload=True, nthreads=16, cpu_cores=16.0,
        # Web is sensitive to memory-access slowdown (Section 4.2):
        # its large cold mass still churns on the scale of hours.
        cold_never_share=0.10,
    ),
    # ----- additional Figure 4 / Figure 9 apps -------------------------
    "Video": AppProfile(
        name="Video", size_gb=32.0, anon_frac=0.35,
        bands=HeatBands(0.40, 0.12, 0.13),
        compress_ratio=1.8, preferred_backend="zswap",
    ),
    "Cache": AppProfile(  # Figure 4's aggregate cache entry
        name="Cache", size_gb=48.0, anon_frac=0.85,
        bands=HeatBands(0.62, 0.10, 0.07),
        compress_ratio=2.1, preferred_backend="zswap",
    ),
    "RE": AppProfile(
        name="RE", size_gb=36.0, anon_frac=0.50,
        bands=HeatBands(0.42, 0.12, 0.13),
        compress_ratio=1.6, preferred_backend="ssd",
    ),
    "Ads C": AppProfile(
        name="Ads C", size_gb=42.0, anon_frac=0.70,
        bands=HeatBands(0.40, 0.12, 0.14),
        compress_ratio=3.2, preferred_backend="zswap",
    ),
    "Warehouse": AppProfile(
        name="Warehouse", size_gb=44.0, anon_frac=0.60,
        # Batch-leaning workload with a relaxed SLO and a lot of cold data.
        bands=HeatBands(0.30, 0.10, 0.14),
        compress_ratio=2.8, preferred_backend="zswap",
    ),
    "ML": AppProfile(
        name="ML", size_gb=46.0, anon_frac=0.85,
        bands=HeatBands(0.35, 0.12, 0.13),
        # Quantised byte-encoded model data: poor compressibility.
        compress_ratio=1.35, preferred_backend="ssd",
    ),
    "Reader": AppProfile(
        name="Reader", size_gb=34.0, anon_frac=0.55,
        bands=HeatBands(0.40, 0.12, 0.12),
        compress_ratio=1.5, preferred_backend="ssd",
    ),
}
