"""Synthetic workload models.

The paper characterises its production applications by memory coldness
(Figure 2), anonymous/file split (Figure 4), compressibility (Sections
4.1-4.2) and sensitivity to memory-access slowdown. The generators here
are parameterised by exactly those published characteristics, so the
controller sees the same statistical surface the production fleet
presented.
"""

from repro.workloads.access import HeatBands, assign_reaccess_intervals
from repro.workloads.apps import (
    APP_CATALOG,
    FIG2_APPS,
    FIG4_DOMAINS,
    FIG9_APPS,
    AppProfile,
)
from repro.workloads.base import TickResult, Workload
from repro.workloads.diurnal import DiurnalWorkload
from repro.workloads.tax import TAX_PROFILES, TaxWorkload
from repro.workloads.trace import (
    AccessTrace,
    RecordingWorkload,
    ReplayWorkload,
)
from repro.workloads.web import WebConfig, WebWorkload

__all__ = [
    "APP_CATALOG",
    "AccessTrace",
    "RecordingWorkload",
    "ReplayWorkload",
    "AppProfile",
    "DiurnalWorkload",
    "FIG2_APPS",
    "FIG4_DOMAINS",
    "FIG9_APPS",
    "HeatBands",
    "TAX_PROFILES",
    "TaxWorkload",
    "TickResult",
    "WebConfig",
    "WebWorkload",
    "Workload",
    "assign_reaccess_intervals",
]
