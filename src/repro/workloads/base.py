"""The generic workload driver.

A :class:`Workload` owns the pages of one application container and
drives accesses against the memory manager every tick. It reports how
much of the tick its threads spent stalled (split by pressure kind) plus
the fault events that occurred — everything the host needs to feed PSI
and the experiment metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.kernel.mm import MemoryManager, OutOfMemoryError
from repro.kernel.page import Page
from repro.sim.rng import derive_rng
from repro.workloads.access import (
    assign_reaccess_intervals,
    touch_probability,
)
from repro.workloads.apps import AppProfile

_GB = 1 << 30


@dataclass
class TickResult:
    """What one workload did during one tick.

    Stall buckets are wall-seconds of thread delay, split by which
    pressure they contribute to:

    * ``stall_mem_s`` — memory-only stalls (zswap loads, direct reclaim).
    * ``stall_io_s`` — IO-only stalls (cold file reads).
    * ``stall_both_s`` — stalls that are both (refaults, SSD swap-ins).
    """

    name: str
    cpu_seconds: float = 0.0
    stall_mem_s: float = 0.0
    stall_io_s: float = 0.0
    stall_both_s: float = 0.0
    events: Dict[str, int] = field(default_factory=dict)
    #: Application-level throughput this tick (requests for Web; touched
    #: pages otherwise).
    work_done: float = 0.0
    #: The workload hit an out-of-memory condition this tick.
    oom: bool = False

    @property
    def total_stall_s(self) -> float:
        return self.stall_mem_s + self.stall_io_s + self.stall_both_s

    def count(self, event: str) -> int:
        return self.events.get(event, 0)

    def _record(self, event: str) -> None:
        self.events[event] = self.events.get(event, 0) + 1


class Workload:
    """Drives one application's memory accesses.

    The page population is built from the profile's size, anon/file split
    and heat bands; each tick every page is touched independently with
    probability ``1 - exp(-dt/interval)`` and the resulting faults are
    resolved through the memory manager.
    """

    def __init__(
        self,
        mm: MemoryManager,
        profile: AppProfile,
        cgroup_name: str,
        seed: int,
    ) -> None:
        self.mm = mm
        self.profile = profile
        self.cgroup_name = cgroup_name
        self._rng = derive_rng(seed, f"workload:{profile.name}:{cgroup_name}")
        self._pages: List[Page] = []
        self._intervals = np.empty(0)
        # Touch-probability cache: valid while the interval array object
        # and dt are unchanged. Paths that replace ``_intervals`` (start,
        # growth, restart, resize) are caught by the identity check;
        # in-place mutation (shift_workingset) invalidates explicitly.
        self._probs = np.empty(0)  # tmo-lint: transient -- memo cache
        self._probs_for: object = None  # tmo-lint: transient -- memo cache
        self._probs_dt = -1.0  # tmo-lint: transient -- memo cache
        self._growth_carry = 0.0
        self._pending_spike_pages = 0
        self.started = False

    # ------------------------------------------------------------------

    @property
    def page_size_bytes(self) -> int:
        return self.mm.page_size_bytes

    @property
    def pages(self) -> List[Page]:
        """The workload's page population (all states)."""
        return self._pages

    @property
    def npages_total(self) -> int:
        return len(self._pages)

    def size_pages(self) -> int:
        """Nominal page count from the profile's footprint."""
        return max(1, int(self.profile.size_gb * _GB / self.page_size_bytes))

    def start(self, now: float, size_scale: float = 1.0) -> None:
        """Allocate the initial page population.

        Args:
            now: virtual time.
            size_scale: multiplier on the profile footprint, letting
                small test hosts run the same profiles.
        """
        if self.started:
            raise RuntimeError(f"workload {self.profile.name!r} already started")
        n_total = max(2, int(self.size_pages() * size_scale))
        n_anon = int(round(n_total * self.profile.anon_frac))
        n_file = n_total - n_anon

        anon_pages, _ = self.mm.alloc_anon(
            self.cgroup_name, n_anon, now,
            compressibility=self.profile.compress_ratio,
        )
        file_pages, _ = self.mm.register_file(
            self.cgroup_name, n_file, now,
            resident=self.profile.file_preload,
            compressibility=self.profile.compress_ratio,
        )
        dirty_count = int(round(n_file * self.profile.dirty_file_frac))
        for page in file_pages[:dirty_count]:
            page.dirty = True
        self._pages = anon_pages + file_pages
        self._intervals = assign_reaccess_intervals(
            len(self._pages), self.profile.bands, self._rng,
            never_share=self.profile.cold_never_share,
        )
        #: Population at start; growth models scale off this, not the
        #: (unscaled) profile footprint.
        self._initial_pages = len(self._pages)
        self.started = True

    def restart(self, now: float) -> None:
        """Container restart (e.g. a code push): drop and rebuild state.

        A restart into a host that cannot absorb the full footprint
        (say, memory exhausted while the swap device is down) comes
        back up smaller — the container manager's behaviour after an
        OOM kill during startup — rather than crashing the host.
        """
        scale = len(self._pages) / max(1, self.size_pages())
        while True:
            self.mm.release_cgroup_pages(self.cgroup_name)
            self._pages = []
            self._intervals = np.empty(0)
            self.started = False
            try:
                self.start(now, size_scale=scale)
                return
            except OutOfMemoryError:
                if max(2, int(self.size_pages() * scale)) <= 2:
                    raise  # even a minimal population will not fit
                scale /= 2.0

    # ------------------------------------------------------------------

    def _accumulate(self, result, tick: TickResult) -> None:
        """Fold one fault result into the tick's stall buckets."""
        tick._record(result.event)
        if result.stall_seconds <= 0:
            return
        if result.memstall and result.iostall:
            tick.stall_both_s += result.stall_seconds
        elif result.memstall:
            tick.stall_mem_s += result.stall_seconds
        elif result.iostall:
            tick.stall_io_s += result.stall_seconds

    def _grow(self, now: float, dt: float, tick: TickResult) -> None:
        """Steady anonymous growth, if the profile has any."""
        rate = self.profile.growth_gb_per_hour * _GB / 3600.0
        if rate <= 0:
            return
        self._growth_carry += rate * dt / self.page_size_bytes
        n_new = int(self._growth_carry)
        if n_new == 0:
            return
        self._growth_carry -= n_new
        self._allocate_more(n_new, now, tick)

    def _allocate_more(self, n_new: int, now: float, tick: TickResult) -> int:
        """Allocate ``n_new`` anon pages, tolerating OOM. Returns count."""
        try:
            new_pages, stall = self.mm.alloc_anon(
                self.cgroup_name, n_new, now,
                compressibility=self.profile.compress_ratio,
            )
        except OutOfMemoryError:
            tick.oom = True
            return 0
        tick.stall_mem_s += stall
        new_intervals = assign_reaccess_intervals(
            len(new_pages), self.profile.bands, self._rng,
            never_share=self.profile.cold_never_share,
        )
        self._pages.extend(new_pages)
        self._intervals = np.concatenate([self._intervals, new_intervals])
        return len(new_pages)

    def request_spike(self, grow_frac: float) -> int:
        """Queue a sudden footprint spike (``grow_frac`` of the current
        population in new anonymous pages).

        The allocation happens during the next :meth:`tick`, so its
        stalls — and an OOM, if the host cannot absorb the spike — are
        attributed to the workload exactly like organic growth. Returns
        the number of pages queued.
        """
        if grow_frac < 0.0:
            raise ValueError(f"grow_frac must be >= 0, got {grow_frac}")
        n_new = int(len(self._pages) * grow_frac)
        self._pending_spike_pages += n_new
        return n_new

    def shift_workingset(self, frac: float, now: float) -> int:
        """A working-set transition: re-deal the heat of ``frac`` of the
        page population.

        Section 3.2's critique of low-level metrics: a transition makes
        major-fault counts spike (the newly hot pages stream in from
        disk or swap) without the host being short on memory. Returns
        the number of pages whose heat changed.
        """
        if not 0.0 <= frac <= 1.0:
            raise ValueError(f"frac must be in [0,1], got {frac}")
        n = int(len(self._pages) * frac)
        if n == 0:
            return 0
        chosen = self._rng.choice(len(self._pages), size=n, replace=False)
        fresh = assign_reaccess_intervals(
            n, self.profile.bands, self._rng,
            never_share=self.profile.cold_never_share,
        )
        self._intervals[chosen] = fresh
        self._probs_for = None  # in-place heat change: drop cached probs
        return n

    def _select_touches(self, dt: float) -> np.ndarray:
        """Choose which page indices get touched this quantum.

        Separated from execution so traces can be recorded and replayed
        (see :mod:`repro.workloads.trace`).
        """
        if self._probs_for is not self._intervals or self._probs_dt != dt:
            self._probs = touch_probability(self._intervals, dt)
            self._probs_for = self._intervals
            self._probs_dt = dt
        mask = self._rng.random(len(self._pages)) < self._probs
        touched = np.nonzero(mask)[0]
        self._rng.shuffle(touched)
        return touched

    def tick(self, now: float, dt: float) -> TickResult:
        """Run one quantum: touch pages, resolve faults, grow."""
        if not self.started:
            raise RuntimeError(
                f"workload {self.profile.name!r} was never started"
            )
        tick = TickResult(name=self.profile.name)
        tick.cpu_seconds = self.profile.cpu_cores * dt

        touched = self._select_touches(dt)
        # Batched fault resolution: one call resolves the whole quantum.
        # On OOM the memory manager abandons the rest of the quantum's
        # touches (the app is thrashing, not progressing) and the tick
        # reports OOM.
        events, mem_s, io_s, both_s, work_done, oom = self.mm.touch_batch(
            self._pages, touched, now
        )
        for event, count in events.items():
            tick.events[event] = tick.events.get(event, 0) + count
        tick.stall_mem_s += mem_s
        tick.stall_io_s += io_s
        tick.stall_both_s += both_s
        if oom:
            tick.oom = True
        tick.work_done = float(work_done)

        self._grow(now, dt, tick)
        if self._pending_spike_pages > 0:
            n_spike = self._pending_spike_pages
            self._pending_spike_pages = 0
            self._allocate_more(n_spike, now, tick)
        return tick

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(profile={self.profile.name!r}, "
            f"cgroup={self.cgroup_name!r}, pages={len(self._pages)})"
        )
