"""The fleetd socket server: the daemon half of ``repro fleetd``.

The engine (:mod:`repro.fleetd.engine`) is pure simulation; this module
is the thin real-world shell around it — a tick thread that advances
the engine at a wall-clock cadence and an accept loop serving the
control protocol over a Unix domain socket. All engine access is
serialized through one lock, so a control command observes the fleet
between ticks, never mid-tick.

Wire protocol: one JSON object per connection, newline-terminated, one
JSON response back (``{"ok": true, ...}`` or ``{"ok": false, "error":
...}``). Requests carry ``{"cmd": ..., **params}``; see ``_COMMANDS``
for the verbs. JSON, not pickle: the socket is an operator surface and
must never execute its inputs.

This module legitimately reads the wall clock and sleeps — it paces a
*real* daemon around the simulation, like :mod:`repro.core.fleetres`
(the TMO002 lint exemption in ``repro.lint.config`` records this).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.fleetd.engine import FleetdEngine, FleetdError
from repro.fleetd.policy import PolicyError, PolicySpec
from repro.fleetd.registry import RegistryError
from repro.fleetd.rollup import RollupError

#: Hard cap on one request line (a malformed client must not OOM the
#: daemon).
_MAX_REQUEST_BYTES = 1 << 20


class FleetdServer:
    """Serves one engine over a Unix socket until stopped."""

    def __init__(
        self,
        engine: FleetdEngine,
        socket_path: str,
        tick_interval_s: float = 0.05,
    ) -> None:
        self.engine = engine
        self.socket_path = socket_path
        self.tick_interval_s = tick_interval_s
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: list = []

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and start the tick + accept threads."""
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        for target in (self._tick_loop, self._accept_loop):
            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop both loops and remove the socket."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    def serve_forever(self) -> None:
        """Run until a ``stop`` command (or :meth:`stop`) arrives."""
        self.start()
        try:
            while not self._stop.wait(0.2):
                pass
        finally:
            self.stop()

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------

    def _tick_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                self.engine.tick()
            time.sleep(self.tick_interval_s)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._serve_one(conn)
            finally:
                conn.close()

    def _serve_one(self, conn: socket.socket) -> None:
        conn.settimeout(5.0)
        chunks = []
        total = 0
        while not chunks or not chunks[-1].endswith(b"\n"):
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                return
            if not chunk:
                break
            total += len(chunk)
            if total > _MAX_REQUEST_BYTES:
                return
            chunks.append(chunk)
        raw = b"".join(chunks).strip()
        if not raw:
            return
        try:
            request = json.loads(raw.decode("utf-8"))
            response = self._dispatch(request)
        except (ValueError, KeyError, TypeError) as exc:
            response = {"ok": False, "error": str(exc)}
        try:
            # NaN-free wire discipline: the bare ``NaN`` token is
            # invalid JSON; a response carrying one is a server bug
            # surfaced as an error, not shipped for the client to choke
            # on.
            encoded = json.dumps(response, allow_nan=False)
        except ValueError as exc:
            encoded = json.dumps({
                "ok": False,
                "error": f"response carried a non-finite number: {exc}",
            })
        conn.sendall(encoded.encode("utf-8") + b"\n")

    # ------------------------------------------------------------------

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        cmd = request.get("cmd")
        handler = _COMMANDS.get(cmd)
        if handler is None:
            return {
                "ok": False,
                "error": f"unknown command {cmd!r}; "
                         f"have {sorted(_COMMANDS)}",
            }
        try:
            with self._lock:
                return {"ok": True, **handler(self, request)}
        except (FleetdError, RegistryError, PolicyError,
                RollupError) as exc:
            return {"ok": False, "error": str(exc)}

    # -- command handlers (called with the engine lock held) -----------

    def _cmd_ping(self, request) -> Dict[str, Any]:
        return {"pong": True, "tick": self.engine.tick_index}

    def _cmd_status(self, request) -> Dict[str, Any]:
        return {"status": self.engine.status()}

    def _cmd_register(self, request) -> Dict[str, Any]:
        spec = None
        if request.get("policy") is not None:
            spec = PolicySpec.from_json(request["policy"])
        entry = self.engine.register(
            request["host_id"],
            request["app"],
            spec=spec,
            size_scale=float(request.get("size_scale", 1.0)),
            include_tax=bool(request.get("include_tax", True)),
            region=str(request.get("region", "default")),
        )
        return {"host": entry.status()}

    def _cmd_deregister(self, request) -> Dict[str, Any]:
        self.engine.deregister(request["host_id"])
        return {"host_id": request["host_id"]}

    def _cmd_rollout(self, request) -> Dict[str, Any]:
        spec = PolicySpec.from_json(request["policy"])
        rollout_id = self.engine.begin_rollout(
            spec, host_ids=request.get("hosts")
        )
        return {"rollout_id": rollout_id}

    def _cmd_rollout_status(self, request) -> Dict[str, Any]:
        result = self.engine.rollout_result(int(request["rollout_id"]))
        if result is None:
            raise FleetdError(
                f"no rollout with id {request['rollout_id']}"
            )
        return {"result": result.to_json()}

    def _cmd_rollback(self, request) -> Dict[str, Any]:
        return {"rolled_back": self.engine.rollback_active()}

    def _cmd_kill_switch(self, request) -> Dict[str, Any]:
        return {"killed": self.engine.kill_switch()}

    def _cmd_reset_quarantine(self, request) -> Dict[str, Any]:
        return {
            "reset": self.engine.reset_quarantine(request["host_id"])
        }

    def _cmd_metrics(self, request) -> Dict[str, Any]:
        # Read-only: the rollup engine only touches non-registering
        # metric reads, so serving this verb never changes the fleet
        # digest a concurrent chaos/crash-equivalence check computes.
        window_s = float(request.get("window_s", 60.0))
        return {"rollup": self.engine.fleet_rollup(window_s).to_json()}

    def _cmd_top(self, request) -> Dict[str, Any]:
        return {"top": self.engine.top_hosts(
            request["signal"],
            n=int(request.get("n", 5)),
            window_s=float(request.get("window_s", 60.0)),
        )}

    def _cmd_run(self, request) -> Dict[str, Any]:
        # Synchronous extra ticks: lets tests and the smoke harness
        # advance simulated time deterministically faster than the
        # wall-paced tick thread.
        ticks = int(request.get("ticks", 1))
        if not 0 < ticks <= 100_000:
            raise FleetdError("ticks must be in [1, 100000]")
        self.engine.run_ticks(ticks)
        return {"tick": self.engine.tick_index}

    def _cmd_stop(self, request) -> Dict[str, Any]:
        self._stop.set()
        return {"stopping": True}


_COMMANDS = {
    "ping": FleetdServer._cmd_ping,
    "status": FleetdServer._cmd_status,
    "register": FleetdServer._cmd_register,
    "deregister": FleetdServer._cmd_deregister,
    "rollout": FleetdServer._cmd_rollout,
    "rollout-status": FleetdServer._cmd_rollout_status,
    "rollback": FleetdServer._cmd_rollback,
    "kill-switch": FleetdServer._cmd_kill_switch,
    "reset-quarantine": FleetdServer._cmd_reset_quarantine,
    "metrics": FleetdServer._cmd_metrics,
    "top": FleetdServer._cmd_top,
    "run": FleetdServer._cmd_run,
    "stop": FleetdServer._cmd_stop,
}
