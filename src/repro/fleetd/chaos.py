"""``chaos --fleetd``: rollout storms under injected faults.

The storm drives one :class:`~repro.fleetd.engine.FleetdEngine`
through a fixed choreography — register a small mixed fleet, start
guarded rollouts (good policy, deliberately bad policy, good policy,
then one the kill switch interrupts mid-flight), deregister and
re-admit a host while the fleet runs — while a seed-derived
:class:`~repro.faults.plan.FaultPlan` fires ``controller_crash`` /
``controller_hang`` faults into supervisors and ``worker_crash`` /
``worker_hang`` faults into whole hosts (recovered through the
fleetres spool path).

The graceful-degradation verdict:

* no unhandled exception escaped the storm;
* **no mixed policy**: every host ends on one single policy
  generation — crashes, hangs, rollbacks and the kill switch
  notwithstanding;
* **the kill switch always wins**: it reverts the in-flight rollout,
  empties the queue, and every later rollout attempt is refused;
* every rollout record is terminal (nothing left ``running``);
* **determinism**: the storm runs twice and both runs must produce
  byte-identical outcome digests (rollout results, final generations,
  per-host metric digests, recovery counts);
* **query neutrality**: the storm interleaves read-only rollup
  queries (``fleet_rollup`` + ``top_hosts``, envelope-encoded and
  validated) at every control round; a third run makes *zero* queries
  and must produce the same outcome digest — observing the fleet is
  provably free of side effects on the metrics it reads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import CONTROLLER_KINDS, FaultPlan
from repro.fleetd.engine import FleetdConfig, FleetdEngine, FleetdError
from repro.fleetd.policy import PolicySpec
from repro.fleetd.rollout import RolloutConfig
from repro.fleetd.rollup import (
    encode_envelope,
    parse_fleet_rollup,
    parse_top_report,
)
from repro.sim.host import HostConfig

_MB = 1 << 20

#: The deliberately bad policy: Senpai told to chase an unreachable
#: pressure target with a huge step — it shreds the page cache and
#: spikes PSI/refaults well past any healthy baseline, which is
#: exactly what the health gate must catch.
BAD_POLICY = PolicySpec.make("senpai", {
    "reclaim_ratio": 0.5,
    "max_step_frac": 0.5,
    "psi_threshold": 10.0,
    "interval_s": 2.0,
})


@dataclass(frozen=True)
class FleetdChaosConfig:
    """One control-plane storm's parameters."""

    seed: int
    hosts: int = 4
    duration_s: float = 420.0
    controller_faults: int = 3
    worker_faults: int = 3
    size_scale: float = 0.003
    checkpoint_every_s: float = 20.0
    #: Wedge length applied per ``worker_hang`` event.
    hang_wedge_s: float = 30.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "hosts": self.hosts,
            "duration_s": self.duration_s,
            "controller_faults": self.controller_faults,
            "worker_faults": self.worker_faults,
            "size_scale": self.size_scale,
            "checkpoint_every_s": self.checkpoint_every_s,
            "hang_wedge_s": self.hang_wedge_s,
        }


@dataclass
class FleetdChaosReport:
    """Outcome of one control-plane chaos storm."""

    seed: int
    hosts: int = 0
    #: Rollout statuses in id order (terminal states only when healthy).
    rollout_statuses: Tuple[str, ...] = ()
    #: Final policy generation per host id.
    final_generations: Dict[str, int] = field(default_factory=dict)
    #: Final policy spec (wire form) per host id.
    final_policies: Dict[str, Any] = field(default_factory=dict)
    #: Crash recoveries per host id.
    recoveries: Dict[str, int] = field(default_factory=dict)
    quarantined_hosts: int = 0
    #: Rollouts the kill switch reverted/killed.
    kill_switch_killed: int = 0
    frozen_after_kill: bool = False
    post_kill_refused: bool = False
    #: Read-only rollup queries interleaved into the storm (0 in the
    #: quiet control run).
    queries: int = 0
    #: SHA-256 over the storm's canonical outcome document.
    digest: str = ""
    #: Digest of the verification re-run (must equal ``digest``).
    rerun_digest: str = ""
    #: Digest of the zero-query control run (must equal ``digest`` —
    #: the query-neutrality witness).
    quiet_digest: str = ""
    plan_digest: str = ""
    error: Optional[str] = None

    @property
    def single_policy(self) -> bool:
        """No host left on a mixed/mid-rollout policy.

        Uniformity is judged on the *policy spec* every host ends on
        (a host re-admitted between rollouts carries a younger
        generation number for the same policy), plus consistency:
        hosts sharing a generation number must share a spec.
        """
        specs = {
            json.dumps(spec, sort_keys=True)
            for spec in self.final_policies.values()
        }
        if len(specs) > 1:
            return False
        by_generation: Dict[int, set] = {}
        for host_id, generation in self.final_generations.items():
            by_generation.setdefault(generation, set()).add(
                json.dumps(
                    self.final_policies.get(host_id), sort_keys=True
                )
            )
        return all(len(s) <= 1 for s in by_generation.values())

    @property
    def passed(self) -> bool:
        return (
            self.error is None
            and self.hosts > 0
            and self.single_policy
            and bool(self.rollout_statuses)
            and all(
                status in ("succeeded", "rolled_back", "killed")
                for status in self.rollout_statuses
            )
            and self.kill_switch_killed >= 1
            and self.frozen_after_kill
            and self.post_kill_refused
            and self.digest != ""
            and self.digest == self.rerun_digest
            and self.queries > 0
            and self.digest == self.quiet_digest
        )

    def failures(self) -> Tuple[str, ...]:
        reasons: List[str] = []
        if self.error is not None:
            reasons.append(f"unhandled error: {self.error}")
        if not self.single_policy:
            reasons.append(
                "hosts ended on mixed policies: "
                f"{self.final_policies} "
                f"(generations {self.final_generations})"
            )
        for status in self.rollout_statuses:
            if status not in ("succeeded", "rolled_back", "killed"):
                reasons.append(
                    f"rollout left non-terminal ({status})"
                )
        if self.kill_switch_killed < 1:
            reasons.append("kill switch reverted nothing")
        if not self.frozen_after_kill:
            reasons.append("fleet not frozen after kill switch")
        if not self.post_kill_refused:
            reasons.append("a post-kill rollout was accepted")
        if self.digest != self.rerun_digest:
            reasons.append(
                f"storm digests diverged across reruns: "
                f"{self.digest[:16]} != {self.rerun_digest[:16]}"
            )
        if self.queries < 1:
            reasons.append("storm interleaved no rollup queries")
        if self.digest != self.quiet_digest:
            reasons.append(
                f"rollup queries perturbed the storm "
                f"(query-neutrality violated): queried "
                f"{self.digest[:16]} != quiet {self.quiet_digest[:16]}"
            )
        return tuple(reasons)

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "hosts": self.hosts,
            "passed": self.passed,
            "rollout_statuses": list(self.rollout_statuses),
            "final_generations": dict(self.final_generations),
            "recoveries": dict(self.recoveries),
            "quarantined_hosts": self.quarantined_hosts,
            "kill_switch_killed": self.kill_switch_killed,
            "frozen_after_kill": self.frozen_after_kill,
            "post_kill_refused": self.post_kill_refused,
            "queries": self.queries,
            "digest": self.digest,
            "rerun_digest": self.rerun_digest,
            "quiet_digest": self.quiet_digest,
            "plan_digest": self.plan_digest,
            "error": self.error,
            "failures": list(self.failures()),
        }


# ----------------------------------------------------------------------


def _storm_choreography(duration_ticks: int) -> Dict[str, int]:
    """The fixed control-plane schedule, scaled to the storm length.

    Fractions of the storm: warmup, three policy rollouts, one rollout
    the kill switch interrupts, a deregister/re-register pair riding
    between them.
    """
    def at(frac: float) -> int:
        return max(1, int(duration_ticks * frac))

    return {
        "rollout_good": at(1 / 7),
        "deregister": at(1.6 / 7),
        "rollout_bad": at(2.5 / 7),
        "reregister": at(3.3 / 7),
        "rollout_good2": at(4 / 7),
        "rollout_interrupted": at(5.5 / 7),
        "kill_switch": at(6.2 / 7),
        "post_kill_attempt": at(6.5 / 7),
    }


def _run_storm(
    config: FleetdChaosConfig, interleave_queries: bool = True
) -> Dict[str, Any]:
    """Execute one storm; returns the canonical outcome document.

    With ``interleave_queries`` the storm runs the full read-only
    query surface (fleet rollup + top ranking, envelope-encoded and
    validated) at every control round. Query bookkeeping lands under
    ``_``-prefixed keys, which :func:`_outcome_digest` excludes — the
    digested outcome must be identical whether or not anyone watched.
    """
    outcome: Dict[str, Any] = {
        "error": None,
        "kill_switch_killed": 0,
        "frozen_after_kill": False,
        "post_kill_refused": False,
        "_queries": 0,
    }
    tick_s = 1.0
    duration_ticks = int(config.duration_s / tick_s)
    engine = FleetdEngine(FleetdConfig(
        seed=config.seed,
        base_config=HostConfig(
            ram_gb=0.25, page_size_bytes=1 * _MB, ncpu=4,
            tick_s=tick_s,
        ),
        rollout=RolloutConfig(
            canary_frac=0.25, wave_frac=0.5,
            baseline_s=30.0, soak_s=30.0,
        ),
        checkpoint_every_s=config.checkpoint_every_s,
    ))
    try:
        apps = ["Feed", "Web"]
        # Two regions, so the storm also exercises region-aware wave
        # planning (no region all-canary).
        regions = ["east", "west"]
        host_ids = [f"h{i}" for i in range(config.hosts)]
        for i, host_id in enumerate(host_ids):
            engine.register(
                host_id, apps[i % len(apps)],
                size_scale=config.size_scale,
                region=regions[i % len(regions)],
            )

        plan = FaultPlan.generate(
            config.seed, config.duration_s,
            extra_events=0,
            controller_faults=config.controller_faults,
            worker_faults=config.worker_faults,
            fleet_hosts=config.hosts,
        )
        outcome["plan_digest"] = hashlib.sha256(
            plan.digest_text().encode()
        ).hexdigest()

        # Fold the plan into per-tick actions. Controller faults carry
        # no host in their target; assign them round-robin so the
        # mapping is a pure function of the plan.
        starts: Dict[int, List[Tuple[str, str, float]]] = {}
        controller_i = 0
        for event in plan.events:
            tick = min(duration_ticks, max(1, int(event.start_s / tick_s)))
            if event.kind in CONTROLLER_KINDS:
                host_id = host_ids[controller_i % len(host_ids)]
                controller_i += 1
            elif event.target.startswith("host:"):
                slot = int(event.target.split(":", 1)[1])
                host_id = host_ids[slot % len(host_ids)]
            else:
                continue
            starts.setdefault(tick, []).append(
                (event.kind, host_id, event.duration_s)
            )

        times = _storm_choreography(duration_ticks)
        good = PolicySpec.make("autotune")
        good2 = PolicySpec.make("senpai", {"interval_s": 4.0})
        interrupted = PolicySpec.make(
            "gswap", {"target_promotion_rate": 50.0}
        )
        deregistered = host_ids[1]

        for tick in range(1, duration_ticks + 1):
            for kind, host_id, event_duration in starts.get(tick, ()):
                if host_id not in engine.registry:
                    continue
                if kind == "controller_crash":
                    entry = engine.registry.get(host_id)
                    entry.supervisor.faults.crash_pending = True
                elif kind == "controller_hang":
                    entry = engine.registry.get(host_id)
                    entry.supervisor.faults.hung = True
                    hang_ticks = max(1, int(event_duration / tick_s))
                    starts.setdefault(tick + hang_ticks, []).append(
                        ("controller_unhang", host_id, 0.0)
                    )
                elif kind == "controller_unhang":
                    entry = engine.registry.get(host_id)
                    entry.supervisor.faults.hung = False
                elif kind == "worker_crash":
                    engine.crash_host(host_id)
                elif kind in ("worker_hang", "worker_slow"):
                    engine.wedge_host(host_id, config.hang_wedge_s)
            if tick == times["rollout_good"]:
                engine.begin_rollout(good)
            elif tick == times["deregister"]:
                engine.deregister(deregistered)
            elif tick == times["rollout_bad"]:
                engine.begin_rollout(BAD_POLICY)
            elif tick == times["reregister"]:
                # Re-admission joins at the fleet's *committed* policy
                # (last succeeded rollout). Copying a live host's spec
                # here is wrong: mid-rollout a canary may be running a
                # candidate the gate is about to reject.
                engine.register(
                    deregistered, "Web",
                    size_scale=config.size_scale,
                    region=regions[1 % len(regions)],
                )
            elif tick == times["rollout_good2"]:
                engine.begin_rollout(good2)
            elif tick == times["rollout_interrupted"]:
                engine.begin_rollout(interrupted)
            elif tick == times["kill_switch"]:
                outcome["kill_switch_killed"] = engine.kill_switch()
                outcome["frozen_after_kill"] = engine.frozen
            elif tick == times["post_kill_attempt"]:
                try:
                    engine.begin_rollout(good)
                except FleetdError:
                    outcome["post_kill_refused"] = True
            engine.tick()
            if interleave_queries:
                # The full read-only query surface, every control
                # round: rollup + top, envelope-encoded (NaN rejection)
                # and validated on read. Any side effect on the fleet
                # shows up as a digest mismatch against the quiet run.
                rollup = engine.fleet_rollup(window_s=30.0)
                parse_fleet_rollup(
                    json.loads(encode_envelope(rollup.to_json()))
                )
                top = engine.top_hosts(
                    "psi_mem_some", n=3, window_s=30.0
                )
                parse_top_report(json.loads(encode_envelope(top)))
                outcome["_queries"] += 2

        outcome["rollout_statuses"] = [
            r.status for r in engine.results
        ]
        outcome["rollout_results"] = [
            r.to_json() for r in engine.results
        ]
        outcome["active_terminal"] = engine.active is None
        outcome["queue_empty"] = not engine.queue
        outcome["final_generations"] = {
            entry.host_id: entry.generation
            for entry in engine.registry.values()
        }
        outcome["final_policies"] = {
            entry.host_id: entry.spec.to_json()
            for entry in engine.registry.values()
        }
        outcome["recoveries"] = dict(engine.recoveries)
        outcome["quarantined_hosts"] = sum(
            1 for entry in engine.registry.values()
            if entry.supervisor.quarantined
        )
        outcome["fleet_digest"] = engine.fleet_digest()
    except Exception as exc:
        outcome["error"] = repr(exc)
    finally:
        engine.close()
    return outcome


def _outcome_digest(outcome: Dict[str, Any]) -> str:
    """Canonical digest over the outcome, minus ``_`` bookkeeping keys.

    The ``_``-prefixed keys (query counters) intentionally differ
    between the queried and quiet runs; everything the fleet actually
    *did* must digest identically.
    """
    digested = {
        key: value for key, value in outcome.items()
        if not key.startswith("_")
    }
    canonical = json.dumps(
        digested, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_fleetd_chaos(config: FleetdChaosConfig) -> FleetdChaosReport:
    """Run the storm three times and assemble its verdict.

    The second run is the determinism witness: both executions must
    produce byte-identical outcome digests. The third run is the
    query-neutrality witness: it interleaves *zero* rollup queries and
    must still produce the same digest — reading the fleet's metrics
    must never mutate them. Never raises for in-storm failures — they
    land in the report.
    """
    outcome = _run_storm(config)
    rerun = _run_storm(config)
    quiet = _run_storm(config, interleave_queries=False)
    report = FleetdChaosReport(
        seed=config.seed,
        hosts=config.hosts,
        rollout_statuses=tuple(outcome.get("rollout_statuses", ())),
        final_generations=dict(outcome.get("final_generations", {})),
        final_policies=dict(outcome.get("final_policies", {})),
        recoveries=dict(outcome.get("recoveries", {})),
        quarantined_hosts=int(outcome.get("quarantined_hosts", 0)),
        kill_switch_killed=int(outcome.get("kill_switch_killed", 0)),
        frozen_after_kill=bool(outcome.get("frozen_after_kill")),
        post_kill_refused=bool(outcome.get("post_kill_refused")),
        queries=int(outcome.get("_queries", 0)),
        plan_digest=str(outcome.get("plan_digest", "")),
        error=(
            outcome.get("error") or rerun.get("error")
            or quiet.get("error")
        ),
        digest=_outcome_digest(outcome),
        rerun_digest=_outcome_digest(rerun),
        quiet_digest=_outcome_digest(quiet),
    )
    return report


def format_fleetd_chaos(report: FleetdChaosReport) -> str:
    """Render one control-plane chaos verdict for the CLI."""
    status = "PASS" if report.passed else "FAIL"
    generations = sorted(set(report.final_generations.values()))
    lines = [
        f"fleetd-chaos seed={report.seed}: {status}",
        f"  rollouts: {', '.join(report.rollout_statuses) or 'none'}",
        f"  final generation(s): {generations} across "
        f"{len(report.final_generations)} hosts "
        f"({sum(report.recoveries.values())} crash recoveries, "
        f"{report.quarantined_hosts} quarantined)",
        f"  kill switch: killed {report.kill_switch_killed} "
        f"rollout(s), frozen={report.frozen_after_kill}, "
        f"post-kill refused={report.post_kill_refused}",
        f"  queries: {report.queries} read-only rollup queries "
        f"interleaved",
        f"  digest: {report.digest[:16]} "
        f"(rerun {report.rerun_digest[:16]}, "
        f"quiet {report.quiet_digest[:16]})",
    ]
    for reason in report.failures():
        lines.append(f"  !! {reason}")
    return "\n".join(lines)
