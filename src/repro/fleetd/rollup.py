"""Read-only streaming metric rollups: host → region → fleet.

The query half of the control plane (ROADMAP item 2, the vcmmd ldmgr
shape): operators watch fleet-wide pressure/refault/offload signals
live and act on them, so the query surface must be **provably
read-only** — observing a fleet must never perturb it. Every metric
lookup here goes through the recorder's non-registering path
(:meth:`~repro.sim.metrics.MetricsRecorder.read_window`), so querying
a live fleet is digest-neutral: query-twice == query-never, asserted
per storm by ``chaos --fleetd``.

Aggregation shape: each host's recent metric windows reduce to
fixed-size :class:`SignalSummary` records (count/sum/min/max/last) —
**mergeable**, so a :class:`HostRollup` folds into a
:class:`RegionRollup` folds into a :class:`FleetRollup` by pure
summary merges, and the sharded aggregation planned in ROADMAP item 3
can ship the same summaries across worker boundaries verbatim instead
of full series. Merge caveat: ``count``/``min``/``max``/``last`` merge
exactly in any association order; ``mean`` is ``sum/count`` and float
addition is not bitwise-associative, so merged means are equal only to
float tolerance.

The wire form is a versioned JSON envelope (kinds ``fleetd-rollup``
and ``fleetd-top``), validated on read like the rollout artifacts, and
encoded NaN-free: empty windows serialize as ``null`` with an explicit
``samples: 0``, and :func:`encode_envelope` refuses non-finite numbers
loudly rather than emitting the bare ``NaN`` token (invalid JSON for
the one-request-per-line socket protocol).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Schema version of the rollup/top JSON envelopes.
ROLLUP_SCHEMA_VERSION = 1

#: The cgroup whose signals the rollups watch (the fleet host recipe
#: names the application container ``app``).
_APP_CGROUP = "app"

#: Query-surface signal name -> per-cgroup metric suffix (all declared
#: in :mod:`repro.sim.metric_names`). The rollups *read* these; they
#: record nothing.
ROLLUP_SIGNALS: Dict[str, str] = {
    "psi_mem_some": "psi_mem_some_avg10",
    "psi_io_some": "psi_io_some_avg10",
    "refault_rate": "refaults",
    "promotion_rate": "promotion_rate",
    "swap_bytes": "swap_bytes",
    "zswap_bytes": "zswap_bytes",
}


class RollupError(ValueError):
    """A rollup query the engine refuses (unknown signal, bad window)."""


@dataclass(frozen=True)
class SignalSummary:
    """Fixed-size mergeable reduction of one signal's window.

    The empty summary (``count == 0``) is the merge identity; its
    aggregates serialize as ``null``, never NaN.
    """

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    last: Optional[float] = None
    #: Time of ``last``, for merge ordering; ``-inf`` when empty so any
    #: real sample wins.
    last_t: float = float("-inf")

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @classmethod
    def of(cls, series) -> "SignalSummary":
        """Reduce one (windowed) :class:`~repro.sim.metrics.Series`."""
        times, values = series.as_arrays()
        n = len(values)
        if not n:
            return cls()
        return cls(
            count=n,
            total=float(values.sum()),
            min=float(values.min()),
            max=float(values.max()),
            last=float(values[-1]),
            last_t=float(times[-1]),
        )

    def merge(self, other: "SignalSummary") -> "SignalSummary":
        """Combine two summaries as if reduced from the concatenation.

        Exact and order-independent for count/min/max/last; the mean is
        ``sum/count`` so it is associative only to float tolerance. A
        ``last_t`` tie picks ``other`` — deterministic given a fixed
        fold order (hosts merge in registration order, regions in
        first-appearance order).
        """
        if not other.count:
            return self
        if not self.count:
            return other
        if other.last_t >= self.last_t:
            last, last_t = other.last, other.last_t
        else:
            last, last_t = self.last, self.last_t
        return SignalSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            last=last,
            last_t=last_t,
        )

    def to_json(self) -> Dict[str, Any]:
        """JSON-clean form: empty aggregates are ``null``, never NaN."""
        return {
            "samples": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }


def _signals_json(
    signals: Mapping[str, SignalSummary]
) -> Dict[str, Dict[str, Any]]:
    return {name: summary.to_json() for name, summary in signals.items()}


def _merge_signals(
    a: Mapping[str, SignalSummary], b: Mapping[str, SignalSummary]
) -> Dict[str, SignalSummary]:
    return {
        name: a.get(name, SignalSummary()).merge(
            b.get(name, SignalSummary())
        )
        for name in ROLLUP_SIGNALS
    }


@dataclass(frozen=True)
class HostRollup:
    """One host's window reduced to fixed-size summaries."""

    host_id: str
    region: str
    app: str
    window_s: float
    signals: Dict[str, SignalSummary]
    oom_kills: int = 0
    breaker_open: bool = False
    quarantined: bool = False
    alive: bool = True
    generation: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "host_id": self.host_id,
            "region": self.region,
            "app": self.app,
            "window_s": self.window_s,
            "signals": _signals_json(self.signals),
            "oom_kills": self.oom_kills,
            "breaker_open": self.breaker_open,
            "quarantined": self.quarantined,
            "alive": self.alive,
            "generation": self.generation,
        }


@dataclass(frozen=True)
class RegionRollup:
    """All of one region's hosts folded into one summary set."""

    region: str
    hosts: int = 0
    signals: Dict[str, SignalSummary] = field(default_factory=dict)
    oom_kills: int = 0
    breaker_open_hosts: int = 0
    quarantined_hosts: int = 0

    @classmethod
    def of_host(cls, rollup: HostRollup) -> "RegionRollup":
        return cls(
            region=rollup.region,
            hosts=1,
            signals=dict(rollup.signals),
            oom_kills=rollup.oom_kills,
            breaker_open_hosts=int(rollup.breaker_open),
            quarantined_hosts=int(rollup.quarantined),
        )

    def merge(self, other: "RegionRollup") -> "RegionRollup":
        if self.region != other.region:
            raise RollupError(
                f"cannot merge rollups across regions "
                f"({self.region!r} vs {other.region!r})"
            )
        return RegionRollup(
            region=self.region,
            hosts=self.hosts + other.hosts,
            signals=_merge_signals(self.signals, other.signals),
            oom_kills=self.oom_kills + other.oom_kills,
            breaker_open_hosts=(
                self.breaker_open_hosts + other.breaker_open_hosts
            ),
            quarantined_hosts=(
                self.quarantined_hosts + other.quarantined_hosts
            ),
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "region": self.region,
            "hosts": self.hosts,
            "signals": _signals_json(self.signals),
            "oom_kills": self.oom_kills,
            "breaker_open_hosts": self.breaker_open_hosts,
            "quarantined_hosts": self.quarantined_hosts,
        }


@dataclass(frozen=True)
class FleetRollup:
    """The full query answer: hosts, regions, and the fleet fold."""

    now_s: float
    tick: int
    window_s: float
    hosts: Tuple[HostRollup, ...] = ()
    regions: Dict[str, RegionRollup] = field(default_factory=dict)
    signals: Dict[str, SignalSummary] = field(default_factory=dict)
    oom_kills: int = 0
    breaker_open_hosts: int = 0
    quarantined_hosts: int = 0

    def to_json(self) -> Dict[str, Any]:
        """Versioned JSON envelope (kind ``fleetd-rollup``)."""
        return {
            "schema_version": ROLLUP_SCHEMA_VERSION,
            "kind": "fleetd-rollup",
            "now_s": self.now_s,
            "tick": self.tick,
            "window_s": self.window_s,
            "hosts": [h.to_json() for h in self.hosts],
            "regions": {
                region: rollup.to_json()
                for region, rollup in self.regions.items()
            },
            "fleet": {
                "hosts": len(self.hosts),
                "signals": _signals_json(self.signals),
                "oom_kills": self.oom_kills,
                "breaker_open_hosts": self.breaker_open_hosts,
                "quarantined_hosts": self.quarantined_hosts,
            },
        }


class RollupEngine:
    """Aggregates a live :class:`~repro.fleetd.engine.FleetdEngine`.

    Pure reader: every lookup is a non-registering window read, so
    rolling a fleet up N times leaves every host's metrics digest
    byte-identical to never rolling it up. The engine lock (held by the
    server around each command) serializes reads against ticks; the
    rollup itself mutates nothing.
    """

    def __init__(self, engine) -> None:
        self.engine = engine

    def host_rollup(
        self, host_id: str, window_s: float = 60.0
    ) -> HostRollup:
        """Reduce one host's trailing ``window_s`` of signals."""
        if not window_s > 0.0:
            raise RollupError("window_s must be positive")
        entry = self.engine.registry.get(host_id)
        metrics = entry.host.metrics
        # Host series run on the host's own clock (zero at
        # registration): window against it, not engine time.
        t1 = entry.host.clock.now
        t0 = max(0.0, t1 - window_s)
        # One read per ROLLUP_SIGNALS entry, unrolled: the state
        # contract (TMO016) resolves metric names from literal
        # ``/suffix`` tails at the read site, which a loop over the
        # mapping cannot provide. ``_merge_signals`` iterates
        # ROLLUP_SIGNALS, so a key drifting out of sync fails loudly.
        signals = {
            "psi_mem_some": SignalSummary.of(metrics.read_window(
                f"{_APP_CGROUP}/psi_mem_some_avg10", t0, t1
            )),
            "psi_io_some": SignalSummary.of(metrics.read_window(
                f"{_APP_CGROUP}/psi_io_some_avg10", t0, t1
            )),
            "refault_rate": SignalSummary.of(metrics.read_window(
                f"{_APP_CGROUP}/refaults", t0, t1
            )),
            "promotion_rate": SignalSummary.of(metrics.read_window(
                f"{_APP_CGROUP}/promotion_rate", t0, t1
            )),
            "swap_bytes": SignalSummary.of(metrics.read_window(
                f"{_APP_CGROUP}/swap_bytes", t0, t1
            )),
            "zswap_bytes": SignalSummary.of(metrics.read_window(
                f"{_APP_CGROUP}/zswap_bytes", t0, t1
            )),
        }
        oom = metrics.read_window(f"{_APP_CGROUP}/oom", t0, t1)
        degraded = metrics.read_window("senpai/degraded", t0, t1)
        quarantine_edges = metrics.read_window(
            "supervisor/quarantined", t0, t1
        )
        return HostRollup(
            host_id=entry.host_id,
            region=entry.region,
            app=entry.app,
            window_s=window_s,
            signals=signals,
            oom_kills=int(sum(oom.values)),
            breaker_open=bool(len(degraded) and degraded.max() > 0.0),
            quarantined=(
                bool(len(quarantine_edges))
                or entry.supervisor.quarantined
            ),
            alive=entry.supervisor.alive,
            generation=entry.generation,
        )

    def fleet_rollup(self, window_s: float = 60.0) -> FleetRollup:
        """Reduce every registered host, folded by region and fleet."""
        host_rollups = tuple(
            self.host_rollup(host_id, window_s)
            for host_id in self.engine.registry.ids()
        )
        regions: Dict[str, RegionRollup] = {}
        for rollup in host_rollups:
            piece = RegionRollup.of_host(rollup)
            if rollup.region in regions:
                regions[rollup.region] = (
                    regions[rollup.region].merge(piece)
                )
            else:
                regions[rollup.region] = piece
        fleet_signals: Dict[str, SignalSummary] = {
            name: SignalSummary() for name in ROLLUP_SIGNALS
        }
        for region_rollup in regions.values():
            fleet_signals = _merge_signals(
                fleet_signals, region_rollup.signals
            )
        return FleetRollup(
            now_s=self.engine.now,
            tick=self.engine.tick_index,
            window_s=window_s,
            hosts=host_rollups,
            regions=regions,
            signals=fleet_signals,
            oom_kills=sum(r.oom_kills for r in regions.values()),
            breaker_open_hosts=sum(
                r.breaker_open_hosts for r in regions.values()
            ),
            quarantined_hosts=sum(
                r.quarantined_hosts for r in regions.values()
            ),
        )

    def top(
        self, signal: str, n: int = 5, window_s: float = 60.0
    ) -> Dict[str, Any]:
        """Rank hosts by a signal's window mean; returns an envelope.

        Unknown signals are refused loudly — a typo must not rank a
        fleet by a silently-empty series. Hosts whose window holds no
        samples rank last (their mean is ``null``, not a fabricated 0).
        """
        if signal not in ROLLUP_SIGNALS:
            raise RollupError(
                f"unknown signal {signal!r}; have {sorted(ROLLUP_SIGNALS)}"
            )
        if n < 1:
            raise RollupError("n must be at least 1")
        rollups = [
            self.host_rollup(host_id, window_s)
            for host_id in self.engine.registry.ids()
        ]
        ranked = sorted(
            rollups,
            key=lambda rollup: (
                rollup.signals[signal].mean is None,
                -(rollup.signals[signal].mean or 0.0),
                rollup.host_id,
            ),
        )
        return {
            "schema_version": ROLLUP_SCHEMA_VERSION,
            "kind": "fleetd-top",
            "signal": signal,
            "n": n,
            "window_s": window_s,
            "now_s": self.engine.now,
            "tick": self.engine.tick_index,
            "hosts": [
                {
                    "host_id": rollup.host_id,
                    "region": rollup.region,
                    "app": rollup.app,
                    **rollup.signals[signal].to_json(),
                }
                for rollup in ranked[:n]
            ],
        }


# ----------------------------------------------------------------------
# envelope encode / validate-on-read


def _reject_non_finite(value: Any, path: str) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(
            f"rollup envelope carries a non-finite number at {path}: "
            f"{value!r}"
        )
    if isinstance(value, Mapping):
        for key, item in value.items():
            _reject_non_finite(item, f"{path}.{key}")
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _reject_non_finite(item, f"{path}[{i}]")


def encode_envelope(doc: Mapping[str, Any]) -> str:
    """Serialize an envelope, refusing NaN/Inf loudly.

    ``json.dumps`` would otherwise emit the bare ``NaN`` token —
    invalid JSON that a strict peer cannot parse off the socket.
    """
    try:
        return json.dumps(doc, allow_nan=False, sort_keys=True)
    except ValueError as exc:
        raise ValueError(
            f"refusing to encode rollup envelope with non-finite "
            f"numbers: {exc}"
        ) from exc


def _parse_envelope(doc: Mapping[str, Any], kind: str) -> Dict[str, Any]:
    if not isinstance(doc, Mapping):
        raise ValueError(f"{kind} envelope must be a JSON object")
    version = doc.get("schema_version")
    if version != ROLLUP_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {kind} schema_version {version!r} "
            f"(expected {ROLLUP_SCHEMA_VERSION})"
        )
    if doc.get("kind") != kind:
        raise ValueError(
            f"not a {kind} document (kind={doc.get('kind')!r})"
        )
    _reject_non_finite(doc, kind)
    return dict(doc)


def parse_fleet_rollup(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a ``fleetd-rollup`` envelope read off the wire/disk."""
    parsed = _parse_envelope(doc, "fleetd-rollup")
    if not isinstance(parsed.get("hosts"), list):
        raise ValueError("fleet rollup is missing its host list")
    if not isinstance(parsed.get("fleet"), Mapping):
        raise ValueError("fleet rollup is missing its fleet fold")
    return parsed


def parse_top_report(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a ``fleetd-top`` envelope read off the wire/disk."""
    parsed = _parse_envelope(doc, "fleetd-top")
    if not isinstance(parsed.get("hosts"), list):
        raise ValueError("top report is missing its ranked host list")
    if parsed.get("signal") not in ROLLUP_SIGNALS:
        raise ValueError(
            f"top report ranks unknown signal {parsed.get('signal')!r}"
        )
    return parsed
