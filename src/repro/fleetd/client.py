"""Client for the fleetd control socket.

One request per connection, newline-delimited JSON both ways (the
protocol :mod:`repro.fleetd.server` documents). The client raises
:class:`FleetdClientError` for transport failures and for ``ok: false``
responses, so CLI verbs can surface daemon-side refusals (unknown
host, kill switch engaged, invalid policy) as ordinary errors.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

from repro.fleetd.rollup import parse_fleet_rollup, parse_top_report


class FleetdClientError(RuntimeError):
    """The daemon refused a request or could not be reached."""


class FleetdClient:
    """Talks to a running fleetd over its Unix socket."""

    def __init__(self, socket_path: str, timeout_s: float = 10.0) -> None:
        self.socket_path = socket_path
        self.timeout_s = timeout_s

    def request(self, cmd: str, **params: Any) -> Dict[str, Any]:
        """Send one command; returns the response payload.

        Raises :class:`FleetdClientError` on connection failure, a
        malformed response, or an ``ok: false`` reply.
        """
        payload = dict(params)
        payload["cmd"] = cmd
        line = json.dumps(payload).encode("utf-8") + b"\n"
        try:
            with socket.socket(
                socket.AF_UNIX, socket.SOCK_STREAM
            ) as conn:
                conn.settimeout(self.timeout_s)
                conn.connect(self.socket_path)
                conn.sendall(line)
                chunks = []
                while not chunks or not chunks[-1].endswith(b"\n"):
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
        except OSError as exc:
            raise FleetdClientError(
                f"cannot reach fleetd at {self.socket_path}: {exc}"
            ) from exc
        raw = b"".join(chunks).strip()
        if not raw:
            raise FleetdClientError(
                "fleetd closed the connection without a response"
            )
        try:
            response = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise FleetdClientError(
                f"malformed fleetd response: {exc}"
            ) from exc
        if not response.get("ok"):
            raise FleetdClientError(
                response.get("error", "fleetd refused the request")
            )
        return response

    # -- convenience verbs ---------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def status(self) -> Dict[str, Any]:
        return self.request("status")["status"]

    def register(
        self,
        host_id: str,
        app: str,
        policy: Optional[Dict[str, Any]] = None,
        size_scale: float = 1.0,
        region: str = "default",
    ) -> Dict[str, Any]:
        return self.request(
            "register", host_id=host_id, app=app, policy=policy,
            size_scale=size_scale, region=region,
        )["host"]

    def deregister(self, host_id: str) -> None:
        self.request("deregister", host_id=host_id)

    def rollout(
        self,
        policy: Dict[str, Any],
        hosts: Optional[List[str]] = None,
    ) -> int:
        return int(
            self.request("rollout", policy=policy, hosts=hosts)
            ["rollout_id"]
        )

    def rollout_status(self, rollout_id: int) -> Dict[str, Any]:
        return self.request(
            "rollout-status", rollout_id=rollout_id
        )["result"]

    def rollback(self) -> bool:
        return bool(self.request("rollback")["rolled_back"])

    def kill_switch(self) -> int:
        return int(self.request("kill-switch")["killed"])

    def reset_quarantine(self, host_id: str) -> bool:
        return bool(
            self.request("reset-quarantine", host_id=host_id)["reset"]
        )

    def metrics(self, window_s: float = 60.0) -> Dict[str, Any]:
        """Fetch the fleet rollup envelope, validated on read."""
        doc = self.request("metrics", window_s=window_s)["rollup"]
        try:
            return parse_fleet_rollup(doc)
        except ValueError as exc:
            raise FleetdClientError(
                f"malformed fleet rollup from daemon: {exc}"
            ) from exc

    def top(
        self, signal: str, n: int = 5, window_s: float = 60.0
    ) -> Dict[str, Any]:
        """Fetch the ranked-hosts envelope, validated on read."""
        doc = self.request(
            "top", signal=signal, n=n, window_s=window_s
        )["top"]
        try:
            return parse_top_report(doc)
        except ValueError as exc:
            raise FleetdClientError(
                f"malformed top report from daemon: {exc}"
            ) from exc

    def run_ticks(self, ticks: int) -> int:
        return int(self.request("run", ticks=ticks)["tick"])

    def stop(self) -> None:
        self.request("stop")
