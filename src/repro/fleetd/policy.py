"""JSON-clean policy specifications for live controller swaps.

A :class:`PolicySpec` is the unit the control plane rolls out: a
controller kind (``senpai`` / ``autotune`` / ``gswap``) plus a flat,
JSON-clean parameter dict overriding that kind's config defaults. Specs
travel over the fleetd socket protocol, live in rollout records, and
are rebuilt into real controller instances with
:func:`build_controller` — per host, so no two hosts ever share a
controller object.

Validation is loud and early: an unknown kind or parameter raises
:class:`PolicyError` at spec construction, before a rollout touches any
host.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.core.autotune import AutoTuneConfig, AutoTuneSenpai
from repro.core.gswap import GSwapConfig, GSwapController
from repro.core.senpai import Senpai, SenpaiConfig

#: Controller kinds the control plane can roll out, mapped to their
#: config dataclass.
POLICY_KINDS: Dict[str, Any] = {
    "senpai": SenpaiConfig,
    "autotune": AutoTuneConfig,
    "gswap": GSwapConfig,
}

#: Config fields a JSON-flat spec cannot carry (tuples of tuples, nested
#: configs); they keep their defaults unless a richer caller sets them
#: programmatically.
_UNSETTABLE_FIELDS: Tuple[str, ...] = ("slo_tiers", "cgroups", "base")


class PolicyError(ValueError):
    """A policy spec that cannot be validated or built."""


def _field_names(config_cls) -> Tuple[str, ...]:
    return tuple(
        f.name for f in dataclasses.fields(config_cls)
        if f.name not in _UNSETTABLE_FIELDS
    )


@dataclass(frozen=True)
class PolicySpec:
    """One rollout-able controller policy.

    Attributes:
        kind: one of :data:`POLICY_KINDS`.
        params: JSON-clean overrides for that kind's config defaults.
            For ``autotune``, parameters of the wrapped
            :class:`~repro.core.senpai.SenpaiConfig` are passed under
            the ``base.`` prefix (``{"base.reclaim_ratio": 0.001}``).
    """

    kind: str = "senpai"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise PolicyError(
                f"unknown policy kind {self.kind!r}; "
                f"have {sorted(POLICY_KINDS)}"
            )
        config_cls = POLICY_KINDS[self.kind]
        allowed = set(_field_names(config_cls))
        base_allowed = (
            set(_field_names(SenpaiConfig))
            if self.kind == "autotune" else set()
        )
        for name, value in self.params:
            if name.startswith("base."):
                if name[len("base."):] not in base_allowed:
                    raise PolicyError(
                        f"policy kind {self.kind!r} has no "
                        f"parameter {name!r}"
                    )
            elif name not in allowed:
                raise PolicyError(
                    f"policy kind {self.kind!r} has no parameter "
                    f"{name!r}; allowed: {sorted(allowed)}"
                )
            if not isinstance(value, (int, float, bool, str)) and \
                    value is not None:
                raise PolicyError(
                    f"parameter {name!r} must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )

    @classmethod
    def make(cls, kind: str, params: Mapping[str, Any] = ()) -> "PolicySpec":
        """Build a spec from a plain mapping (sorted, canonical order)."""
        items = tuple(sorted(dict(params).items()))
        return cls(kind=kind, params=items)

    def to_json(self) -> Dict[str, Any]:
        """The wire/document form: ``{"kind": ..., "params": {...}}``."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "PolicySpec":
        """Parse and validate the wire form; raises PolicyError."""
        if not isinstance(doc, Mapping):
            raise PolicyError(
                f"policy document must be an object, got "
                f"{type(doc).__name__}"
            )
        kind = doc.get("kind")
        params = doc.get("params", {})
        if not isinstance(kind, str):
            raise PolicyError("policy document is missing 'kind'")
        if not isinstance(params, Mapping):
            raise PolicyError("policy 'params' must be an object")
        return cls.make(kind, params)

    def describe(self) -> str:
        """One-line human form for logs and CLI tables."""
        if not self.params:
            return f"{self.kind}(defaults)"
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"


def build_controller(spec: PolicySpec):
    """Construct a fresh controller instance from ``spec``.

    Every call returns a new object; controllers are never shared
    between hosts (their state is per-host).
    """
    params = dict(spec.params)
    try:
        if spec.kind == "senpai":
            return Senpai(SenpaiConfig(**params))
        if spec.kind == "autotune":
            base_params = {
                name[len("base."):]: value
                for name, value in params.items()
                if name.startswith("base.")
            }
            own = {
                name: value for name, value in params.items()
                if not name.startswith("base.")
            }
            return AutoTuneSenpai(AutoTuneConfig(
                base=SenpaiConfig(**base_params), **own
            ))
        if spec.kind == "gswap":
            return GSwapController(GSwapConfig(**params))
    except (TypeError, ValueError) as exc:
        raise PolicyError(
            f"cannot build {spec.describe()}: {exc}"
        ) from exc
    raise PolicyError(f"unknown policy kind {spec.kind!r}")
