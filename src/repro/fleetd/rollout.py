"""The guarded rollout engine: canary waves, health gates, rollback.

A policy change is never applied fleet-wide at once. The engine stages
it:

1. **baseline** — at start, every target host's health is rolled up
   over the window *before* the rollout touched anything;
2. **canary** — a configurable fraction of hosts gets the new
   controller first; the prior controller's state is encoded (the
   :mod:`repro.checkpoint.controllers` codec) before being replaced,
   per host;
3. **soak + gate** — after ``soak_s`` of simulated time the wave's
   hosts are judged against their own pre-rollout baselines
   (:func:`repro.fleetd.health.evaluate_gate`); a host that crashed
   out of the window, quarantined, or regressed trips the gate;
4. **waves** — a passing gate admits the next, larger wave; the last
   passing gate completes the rollout;
5. **rollback** — a tripped gate (or the fleet kill switch) decodes
   every already-applied host's saved controller state back into its
   supervisor. Controller state only: the simulation keeps running
   throughout — exactly TMO's constraint that policy redeployment must
   not restart the fleet.

Every rollout leaves a structured :class:`RolloutResult` (waves, gate
verdicts, rollback reason) in a versioned JSON envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.checkpoint.controllers import (
    decode_controller,
    encode_controller,
)
from repro.fleetd.health import (
    GateVerdict,
    HealthGateConfig,
    HealthSample,
    evaluate_gate,
    sample_host,
)
from repro.fleetd.policy import PolicySpec, build_controller
from repro.fleetd.registry import HostRegistry

#: Schema version of the RolloutResult JSON envelope.
ROLLOUT_SCHEMA_VERSION = 1

#: The cgroup whose health the gate watches (the fleet host recipe
#: names the application container ``app``).
_APP_CGROUP = "app"


@dataclass(frozen=True)
class RolloutConfig:
    """Staging and gating knobs for guarded rollouts.

    Attributes:
        canary_frac: fraction of target hosts in the first wave
            (at least one host).
        wave_frac: fraction of *remaining* hosts admitted per
            subsequent wave (at least one host per wave).
        baseline_s: how much pre-rollout history the baselines roll up.
        soak_s: simulated time a wave runs before its gate is judged.
        gate: the health-gate thresholds.
    """

    canary_frac: float = 0.25
    wave_frac: float = 0.5
    baseline_s: float = 60.0
    soak_s: float = 60.0
    gate: HealthGateConfig = field(default_factory=HealthGateConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.canary_frac <= 1.0:
            raise ValueError("canary_frac must be in (0, 1]")
        if not 0.0 < self.wave_frac <= 1.0:
            raise ValueError("wave_frac must be in (0, 1]")
        if self.soak_s <= 0.0:
            raise ValueError("soak_s must be positive")


def plan_waves(
    host_ids: Tuple[str, ...],
    canary_frac: float,
    wave_frac: float,
    regions: Optional[Mapping[str, str]] = None,
) -> List[List[str]]:
    """Split target hosts into canary + follow-up waves, in order.

    With ``regions`` (host id -> region label) spanning more than one
    distinct region, planning becomes region-aware: the canary draws
    round-robin across regions (in first-appearance order) and **no
    region is all-canary** — a multi-host region contributes at most
    ``size - 1`` hosts to the canary and a single-host region
    contributes none, so every region keeps at least one host on the
    incumbent policy while the canary soaks. Follow-up waves interleave
    the remaining hosts round-robin across regions, so each wave
    spreads risk instead of burning one region at a time. Degenerate
    all-single-host fleets fall back to canarying the first host (some
    host must go first).

    Without ``regions`` — or when every host shares one region — the
    legacy order-preserving split applies, byte-identical to the
    pre-region planner.
    """
    remaining = [h for h in host_ids]
    waves: List[List[str]] = []
    if not remaining:
        return waves
    region_of = {
        host_id: (regions or {}).get(host_id, "default")
        for host_id in remaining
    }
    ordered_regions: List[str] = []
    for host_id in remaining:
        if region_of[host_id] not in ordered_regions:
            ordered_regions.append(region_of[host_id])
    if len(ordered_regions) <= 1:
        take = max(1, int(len(remaining) * canary_frac))
        waves.append(remaining[:take])
        remaining = remaining[take:]
        while remaining:
            take = max(1, int(len(remaining) * wave_frac))
            waves.append(remaining[:take])
            remaining = remaining[take:]
        return waves
    by_region = {
        region: [h for h in remaining if region_of[h] == region]
        for region in ordered_regions
    }
    canary_target = max(1, int(len(remaining) * canary_frac))
    cap = {
        region: max(0, len(by_region[region]) - 1)
        for region in ordered_regions
    }
    taken = {region: 0 for region in ordered_regions}
    canary: List[str] = []
    progressed = True
    while len(canary) < canary_target and progressed:
        progressed = False
        for region in ordered_regions:
            if len(canary) >= canary_target:
                break
            if taken[region] < cap[region]:
                canary.append(by_region[region][taken[region]])
                taken[region] += 1
                progressed = True
    if not canary:
        canary = [remaining[0]]
    in_canary = set(canary)
    pending = {
        region: [h for h in by_region[region] if h not in in_canary]
        for region in ordered_regions
    }
    rest: List[str] = []
    while any(pending.values()):
        for region in ordered_regions:
            if pending[region]:
                rest.append(pending[region].pop(0))
    waves.append(canary)
    while rest:
        take = max(1, int(len(rest) * wave_frac))
        waves.append(rest[:take])
        rest = rest[take:]
    return waves


@dataclass
class WaveRecord:
    """One staged wave: who, when, and how the gate judged it."""

    index: int
    host_ids: List[str]
    applied_at_s: float
    gated_at_s: Optional[float] = None
    verdicts: List[GateVerdict] = field(default_factory=list)
    passed: Optional[bool] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "host_ids": list(self.host_ids),
            "applied_at_s": self.applied_at_s,
            "gated_at_s": self.gated_at_s,
            "verdicts": [v.to_json() for v in self.verdicts],
            "passed": self.passed,
        }


@dataclass
class RolloutResult:
    """The structured record one rollout leaves behind."""

    rollout_id: int
    spec: PolicySpec
    generation: int
    #: ``succeeded`` | ``rolled_back`` | ``killed`` | ``pending`` |
    #: ``running``.
    status: str
    started_at_s: float = 0.0
    finished_at_s: Optional[float] = None
    waves: List[WaveRecord] = field(default_factory=list)
    rollback_reason: str = ""

    def to_json(self) -> Dict[str, Any]:
        """Versioned JSON envelope (the CI artifact format)."""
        return {
            "schema_version": ROLLOUT_SCHEMA_VERSION,
            "kind": "fleetd-rollout",
            "rollout_id": self.rollout_id,
            "policy": self.spec.to_json(),
            "generation": self.generation,
            "status": self.status,
            "started_at_s": self.started_at_s,
            "finished_at_s": self.finished_at_s,
            "waves": [w.to_json() for w in self.waves],
            "rollback_reason": self.rollback_reason,
        }


@dataclass
class _SavedController:
    """Pre-apply state of one host, for rollback."""

    doc: Dict[str, Any]
    generation: int
    spec: PolicySpec


class Rollout:
    """One in-flight guarded rollout, advanced by the engine's tick."""

    def __init__(
        self,
        rollout_id: int,
        spec: PolicySpec,
        generation: int,
        host_ids: Tuple[str, ...],
        config: RolloutConfig,
    ) -> None:
        self.spec = spec
        self.generation = generation
        self.config = config
        self.host_ids = list(host_ids)
        self.result = RolloutResult(
            rollout_id=rollout_id,
            spec=spec,
            generation=generation,
            status="pending",
        )
        self._waves: List[List[str]] = []
        self._wave_index = 0
        self._baselines: Dict[str, HealthSample] = {}
        self._saved: Dict[str, _SavedController] = {}

    @property
    def done(self) -> bool:
        return self.result.status in ("succeeded", "rolled_back", "killed")

    # ------------------------------------------------------------------

    def start(self, registry: HostRegistry, now: float) -> None:
        """Capture baselines and apply the canary wave."""
        self.host_ids = [h for h in self.host_ids if h in registry]
        self.result.status = "running"
        self.result.started_at_s = now
        t0 = max(0.0, now - self.config.baseline_s)
        for host_id in self.host_ids:
            entry = registry.get(host_id)
            # Host metric series run on the host's own clock (zero at
            # registration); shift the engine-time window into it.
            self._baselines[host_id] = sample_host(
                entry.host, _APP_CGROUP,
                max(0.0, t0 - entry.epoch_s),
                max(0.0, now - entry.epoch_s),
                quarantined_now=entry.supervisor.quarantined,
            )
        self._waves = plan_waves(
            tuple(self.host_ids),
            self.config.canary_frac,
            self.config.wave_frac,
            regions={
                host_id: registry.get(host_id).region
                for host_id in self.host_ids
            },
        )
        if not self._waves:
            self.result.status = "succeeded"
            self.result.finished_at_s = now
            return
        self._apply_wave(registry, now)

    def _apply_wave(self, registry: HostRegistry, now: float) -> None:
        wave_hosts = [
            h for h in self._waves[self._wave_index] if h in registry
        ]
        for host_id in wave_hosts:
            entry = registry.get(host_id)
            self._saved[host_id] = _SavedController(
                doc=encode_controller(entry.supervisor.controller),
                generation=entry.generation,
                spec=entry.spec,
            )
            entry.supervisor.replace_controller(
                build_controller(self.spec)
            )
            entry.spec = self.spec
            entry.generation = self.generation
            entry.host.metrics.record(
                "fleetd/generation", entry.host.clock.now,
                float(self.generation),
            )
        self.result.waves.append(WaveRecord(
            index=self._wave_index,
            host_ids=wave_hosts,
            applied_at_s=now,
        ))

    # ------------------------------------------------------------------

    def advance(self, registry: HostRegistry, now: float) -> None:
        """One control round: gate a soaked wave, stage the next."""
        if self.done or not self.result.waves:
            return
        wave = self.result.waves[-1]
        if now < wave.applied_at_s + self.config.soak_s:
            return
        wave.gated_at_s = now
        for host_id in wave.host_ids:
            if host_id not in registry:
                continue
            entry = registry.get(host_id)
            observed = sample_host(
                entry.host, _APP_CGROUP,
                max(0.0, wave.applied_at_s - entry.epoch_s),
                max(0.0, now - entry.epoch_s),
                quarantined_now=entry.supervisor.quarantined,
            )
            wave.verdicts.append(evaluate_gate(
                host_id,
                self._baselines.get(host_id, HealthSample()),
                observed,
                self.config.gate,
            ))
        failed = [v for v in wave.verdicts if not v.passed]
        wave.passed = not failed
        if failed:
            reason = "; ".join(
                f"{v.host_id}: {', '.join(v.reasons)}" for v in failed
            )
            self.roll_back(
                registry, now, status="rolled_back",
                reason=f"health gate tripped on wave {wave.index} — "
                       f"{reason}",
            )
            return
        self._wave_index += 1
        if self._wave_index >= len(self._waves):
            self.result.status = "succeeded"
            self.result.finished_at_s = now
            return
        self._apply_wave(registry, now)

    # ------------------------------------------------------------------

    def roll_back(
        self,
        registry: HostRegistry,
        now: float,
        status: str = "rolled_back",
        reason: str = "",
    ) -> None:
        """Revert every applied host to its saved controller state.

        Controller state only: the host keeps running; its supervisor
        just swaps the candidate controller for a replica of the one it
        ran before this rollout touched it.
        """
        for host_id, saved in self._saved.items():
            if host_id not in registry:
                continue
            entry = registry.get(host_id)
            entry.supervisor.replace_controller(
                decode_controller(saved.doc)
            )
            entry.spec = saved.spec
            entry.generation = saved.generation
            entry.host.metrics.record(
                "fleetd/generation", entry.host.clock.now,
                float(saved.generation),
            )
        self.result.status = status
        self.result.rollback_reason = reason
        self.result.finished_at_s = now

    def forget_host(self, host_id: str) -> None:
        """Drop a deregistered host from all rollout bookkeeping."""
        self.host_ids = [h for h in self.host_ids if h != host_id]
        self._saved.pop(host_id, None)
        self._baselines.pop(host_id, None)
        for wave in self._waves:
            if host_id in wave:
                wave.remove(host_id)


def parse_rollout_result(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a RolloutResult envelope read back from disk.

    Returns the document as a plain dict; raises ``ValueError`` on a
    missing/unknown schema version or kind — the same
    validate-on-read discipline the BENCH_*.json artifacts follow.
    """
    if not isinstance(doc, Mapping):
        raise ValueError("rollout result must be a JSON object")
    version = doc.get("schema_version")
    if version != ROLLOUT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported rollout result schema_version {version!r} "
            f"(expected {ROLLOUT_SCHEMA_VERSION})"
        )
    if doc.get("kind") != "fleetd-rollout":
        raise ValueError(
            f"not a rollout result document (kind={doc.get('kind')!r})"
        )
    if not isinstance(doc.get("waves"), list):
        raise ValueError("rollout result is missing its wave list")
    return dict(doc)
