"""The control plane's host registry.

Each registered host is a full simulated server (one app container plus
the datacenter-tax sidecars, exactly the :mod:`repro.core.fleet` host
recipe) whose offloading controller runs under a
:class:`~repro.core.supervisor.Supervisor` so the control plane can
swap, restart and un-quarantine it live. The registry is pure
bookkeeping — the :class:`~repro.fleetd.engine.FleetdEngine` owns the
tick loop and mutates entries through it.

Seeds derive per host id (``derive_seed(seed, "fleetd:<host_id>")``),
never from registration order, so registering hosts in a different
order — or re-admitting one after a crash — reproduces the same
streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.supervisor import Supervisor, SupervisorConfig
from repro.fleetd.policy import PolicySpec, build_controller
from repro.sim.host import Host, HostConfig
from repro.sim.rng import derive_seed
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload
from repro.workloads.tax import TAX_PROFILES, TaxWorkload
from repro.workloads.web import WebWorkload

_GB = 1 << 30


class RegistryError(ValueError):
    """A registry operation that cannot be honoured (dup/unknown id)."""


@dataclass
class HostEntry:
    """One registered host and its control-plane bookkeeping.

    Attributes:
        host_id: the operator-chosen registry key.
        app: app-catalog profile the host runs.
        region: operator-assigned placement label. Purely bookkeeping
            for the query surface (rollups fold host → region → fleet)
            and region-aware wave planning; it never reaches the
            simulation, so two fleets differing only in region labels
            produce identical metric digests.
        host: the live simulated server.
        supervisor: the supervisor wrapping the host's policy
            controller (also present in ``host.controllers()``).
        spec: the policy the host is *supposed* to run — the rollout
            engine's source of truth when a recovered host must
            converge.
        generation: monotonic policy generation this host is on;
            bumped on every applied rollout wave, reverted on rollback.
        registered_tick: engine tick index at registration; the
            engine's per-host tick target is measured from here.
        epoch_s: the engine's simulated time at registration. A host's
            metric series run on its own clock starting at zero, so
            anything comparing them against engine time (the rollout
            health gates) must shift windows by this offset.
        spool_path: where this host's snapshot envelope is spooled.
        spool_generation: the policy generation the latest spool was
            taken under (a recovery restoring an older spool uses this
            to detect a stale controller).
        wedged_until_tick: engine tick until which the host's worker is
            hung (the ``worker_hang`` chaos seam); the host does not
            tick while wedged and catches up after.
        size_scale / include_tax: the build parameters, kept so crash
            recovery can rebuild the host from scratch when no valid
            spool exists.
    """

    host_id: str
    app: str
    host: Host
    supervisor: Supervisor
    spec: PolicySpec
    region: str = "default"
    generation: int = 0
    registered_tick: int = 0
    epoch_s: float = 0.0
    spool_path: Optional[str] = None
    spool_generation: int = 0
    wedged_until_tick: int = 0
    size_scale: float = 1.0
    include_tax: bool = True

    @property
    def wedged(self) -> bool:
        return self.wedged_until_tick > 0

    def status(self) -> Dict[str, object]:
        """JSON-clean summary for ``fleetd status``."""
        return {
            "host_id": self.host_id,
            "app": self.app,
            "region": self.region,
            "policy": self.spec.to_json(),
            "generation": self.generation,
            "ticks": self.host.tick_count,
            "alive": self.supervisor.alive,
            "quarantined": self.supervisor.quarantined,
            "restarts": self.supervisor.restart_count,
            "wedged": self.wedged,
        }


def build_fleetd_host(
    base_config: HostConfig,
    fleet_seed: int,
    host_id: str,
    app: str,
    spec: PolicySpec,
    supervisor_config: SupervisorConfig,
    size_scale: float = 1.0,
    include_tax: bool = True,
) -> Host:
    """Construct one registered host with its derived seed.

    The :func:`repro.core.fleet.build_fleet_host` recipe (app container
    named ``app``, per-64GB-rescaled tax sidecars), except the
    controller comes from a :class:`~repro.fleetd.policy.PolicySpec`
    and runs supervised so the control plane can swap it live.
    """
    if app not in APP_CATALOG:
        raise RegistryError(
            f"unknown app {app!r}; have {sorted(APP_CATALOG)}"
        )
    profile = APP_CATALOG[app]
    config = replace(
        base_config,
        backend=base_config.backend or profile.preferred_backend,
        seed=derive_seed(fleet_seed, f"fleetd:{host_id}"),
    )
    host = Host(config)
    if profile.name == "Web":
        host.add_workload(WebWorkload, name="app", size_scale=size_scale)
    else:
        host.add_workload(
            Workload, profile=profile, name="app", size_scale=size_scale
        )
    if include_tax:
        tax_scale = config.ram_bytes / (64.0 * _GB)
        for kind in TAX_PROFILES:
            slug = kind.lower().replace(" ", "-")
            host.add_workload(
                TaxWorkload, name=slug, kind=kind, size_scale=tax_scale
            )
    host.add_controller(
        Supervisor(build_controller(spec), supervisor_config)
    )
    return host


@dataclass
class HostRegistry:
    """Insertion-ordered registry of live host entries."""

    entries: Dict[str, HostEntry] = field(default_factory=dict)

    def add(self, entry: HostEntry) -> None:
        if entry.host_id in self.entries:
            raise RegistryError(
                f"host {entry.host_id!r} is already registered"
            )
        self.entries[entry.host_id] = entry

    def remove(self, host_id: str) -> HostEntry:
        entry = self.entries.pop(host_id, None)
        if entry is None:
            raise RegistryError(f"host {host_id!r} is not registered")
        return entry

    def get(self, host_id: str) -> HostEntry:
        entry = self.entries.get(host_id)
        if entry is None:
            raise RegistryError(f"host {host_id!r} is not registered")
        return entry

    def __contains__(self, host_id: str) -> bool:
        return host_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def ids(self):
        """Registered host ids, in registration order."""
        return list(self.entries)

    def values(self):
        return list(self.entries.values())
