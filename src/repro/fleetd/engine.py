"""The deterministic control-plane core.

The engine owns the registry, the tick loop, the rollout queue and the
kill switch. It is *pure simulation*: no wall clock, no sockets, no
threads — one :meth:`FleetdEngine.tick` advances every registered host
by one simulated tick and runs one rollout control round. The server
(:mod:`repro.fleetd.server`) drives ``tick()`` from real time; the
chaos harness (:mod:`repro.fleetd.chaos`) drives it from a seeded
storm schedule; tests drive it directly. All three see identical
behaviour for identical call sequences — that is what makes the chaos
digests reproducible.

Crash recovery rides the PR 8 fleetres path: each host's snapshot
envelope is spooled periodically
(:func:`repro.core.fleetres.spool_snapshot`); :meth:`crash_host`
restores the latest valid spool, replays the missed ticks, and — when
the spool predates the host's current policy generation — converges
the recovered controller onto the generation the registry says the
host must run. No host is ever left on a stale policy by a crash.
"""

from __future__ import annotations

import hashlib
import os
import re
import shutil
import tempfile
from dataclasses import dataclass, field
from math import isfinite
from typing import Any, Dict, List, Optional, Sequence

from repro.core.fleetres import load_spooled_snapshot, spool_snapshot
from repro.core.supervisor import Supervisor, SupervisorConfig
from repro.fleetd.policy import PolicySpec, build_controller
from repro.fleetd.registry import (
    HostEntry,
    HostRegistry,
    RegistryError,
    build_fleetd_host,
)
from repro.fleetd.rollout import Rollout, RolloutConfig, RolloutResult
from repro.fleetd.rollup import FleetRollup, RollupEngine
from repro.sim.host import HostConfig
from repro.sim.metrics import metrics_digest

_HOST_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")


class FleetdError(RuntimeError):
    """A control-plane operation the engine refuses."""


@dataclass(frozen=True)
class FleetdConfig:
    """Engine-level configuration.

    Attributes:
        seed: fleet master seed; host seeds derive from it by host id.
        base_config: hardware template for registered hosts (each gets
            its own derived seed and backend).
        supervisor: watchdog config for every host's policy controller.
        rollout: staging/gating defaults for guarded rollouts.
        checkpoint_every_s: simulated seconds between snapshot spools
            per host (``inf`` disables spooling, and with it crash
            *recovery* — a crashed host then rebuilds from scratch).
        spool_dir: directory for the per-host spool files; ``None``
            provisions a temporary directory owned by the engine
            (removed by :meth:`FleetdEngine.close`).
    """

    seed: int = 7
    base_config: HostConfig = field(default_factory=HostConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    rollout: RolloutConfig = field(default_factory=RolloutConfig)
    checkpoint_every_s: float = 60.0
    spool_dir: Optional[str] = None


class FleetdEngine:
    """Registry + tick loop + guarded-rollout state machine."""

    def __init__(self, config: FleetdConfig = FleetdConfig()) -> None:
        self.config = config
        self.registry = HostRegistry()
        self.tick_index = 0
        #: The fleet kill switch: once engaged, no rollout starts or
        #: continues until the operator constructs a new engine.
        self.frozen = False
        self.active: Optional[Rollout] = None
        self.queue: List[Rollout] = []
        self.results: List[RolloutResult] = []
        #: The fleet's committed policy: what the last *succeeded*
        #: rollout deployed (initially the default spec). Hosts
        #: registered without an explicit spec join at this policy —
        #: never at a canary's, which may be mid-gate and about to be
        #: rolled back.
        self.committed_spec = PolicySpec()
        #: Hosts recovered through the crash path, by id (observability
        #: for status and the chaos verdict).
        self.recoveries: Dict[str, int] = {}
        self._next_rollout_id = 1
        self._next_generation = 1
        self._spool_root = config.spool_dir
        self._owns_spool = config.spool_dir is None
        if self._spool_root is None:
            self._spool_root = tempfile.mkdtemp(prefix="tmo-fleetd-")
        else:
            os.makedirs(self._spool_root, exist_ok=True)
        tick_s = config.base_config.tick_s
        if isfinite(config.checkpoint_every_s):
            self._spool_every_ticks: Optional[int] = max(
                1, int(round(config.checkpoint_every_s / tick_s))
            )
        else:
            self._spool_every_ticks = None

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Engine simulated time (ticks × tick quantum)."""
        return self.tick_index * self.config.base_config.tick_s

    def close(self) -> None:
        """Release the engine's spool directory (when it owns one)."""
        if self._owns_spool and self._spool_root is not None:
            shutil.rmtree(self._spool_root, ignore_errors=True)
            self._spool_root = None

    def __enter__(self) -> "FleetdEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # registry operations

    def register(
        self,
        host_id: str,
        app: str,
        spec: Optional[PolicySpec] = None,
        size_scale: float = 1.0,
        include_tax: bool = True,
        region: str = "default",
    ) -> HostEntry:
        """Admit a new host into the running fleet."""
        if not _HOST_ID_RE.match(host_id):
            raise RegistryError(
                f"host id {host_id!r} must match {_HOST_ID_RE.pattern}"
            )
        if not _HOST_ID_RE.match(region):
            raise RegistryError(
                f"region {region!r} must match {_HOST_ID_RE.pattern}"
            )
        spec = spec if spec is not None else self.committed_spec
        host = build_fleetd_host(
            self.config.base_config,
            self.config.seed,
            host_id,
            app,
            spec,
            self.config.supervisor,
            size_scale=size_scale,
            include_tax=include_tax,
        )
        supervisor = self._find_supervisor(host)
        entry = HostEntry(
            host_id=host_id,
            app=app,
            host=host,
            supervisor=supervisor,
            spec=spec,
            region=region,
            generation=0,
            registered_tick=self.tick_index,
            epoch_s=self.now,
            spool_path=os.path.join(
                self._spool_root, f"{host_id}.snapshot"
            ),
            size_scale=size_scale,
            include_tax=include_tax,
        )
        self.registry.add(entry)
        return entry

    def deregister(self, host_id: str) -> None:
        """Remove a host from the fleet (it stops ticking)."""
        entry = self.registry.remove(host_id)
        if self.active is not None:
            self.active.forget_host(host_id)
        for rollout in self.queue:
            rollout.forget_host(host_id)
        if entry.spool_path is not None:
            try:
                os.remove(entry.spool_path)
            except OSError:
                pass

    @staticmethod
    def _find_supervisor(host) -> Supervisor:
        for controller in host.controllers():
            if isinstance(controller, Supervisor):
                return controller
        raise FleetdError("fleetd host has no supervised controller")

    # ------------------------------------------------------------------
    # rollout surface

    def begin_rollout(
        self,
        spec: PolicySpec,
        host_ids: Optional[Sequence[str]] = None,
        config: Optional[RolloutConfig] = None,
    ) -> int:
        """Queue a guarded rollout; returns its rollout id."""
        if self.frozen:
            raise FleetdError(
                "fleet kill switch is engaged; no further policy "
                "changes are accepted"
            )
        targets = (
            tuple(host_ids) if host_ids is not None
            else tuple(self.registry.ids())
        )
        for host_id in targets:
            self.registry.get(host_id)  # raises for unknown ids
        rollout = Rollout(
            rollout_id=self._next_rollout_id,
            spec=spec,
            generation=self._next_generation,
            host_ids=targets,
            config=config if config is not None else self.config.rollout,
        )
        self._next_rollout_id += 1
        self._next_generation += 1
        self.queue.append(rollout)
        return rollout.result.rollout_id

    def rollback_active(self, reason: str = "manual rollback") -> bool:
        """Abort the in-flight rollout, reverting applied hosts."""
        if self.active is None:
            return False
        self.active.roll_back(
            self.registry, self.now, status="rolled_back", reason=reason
        )
        self.results.append(self.active.result)
        self.active = None
        return True

    def kill_switch(self) -> int:
        """Revert every in-flight rollout and freeze policy changes.

        Returns the number of rollouts (active + queued) killed. The
        freeze is permanent for this engine: the kill switch is the
        last word, not a pause.
        """
        killed = 0
        self.frozen = True
        if self.active is not None:
            self.active.roll_back(
                self.registry, self.now,
                status="killed", reason="fleet kill switch",
            )
            self.results.append(self.active.result)
            self.active = None
            killed += 1
        for rollout in self.queue:
            rollout.result.status = "killed"
            rollout.result.rollback_reason = "fleet kill switch"
            rollout.result.finished_at_s = self.now
            self.results.append(rollout.result)
            killed += 1
        self.queue.clear()
        return killed

    def rollout_result(self, rollout_id: int) -> Optional[RolloutResult]:
        """Look one rollout's result up, in-flight or finished."""
        if (
            self.active is not None
            and self.active.result.rollout_id == rollout_id
        ):
            return self.active.result
        for rollout in self.queue:
            if rollout.result.rollout_id == rollout_id:
                return rollout.result
        for result in self.results:
            if result.rollout_id == rollout_id:
                return result
        return None

    def reset_quarantine(self, host_id: str) -> bool:
        """Re-admit a quarantined host's controller (manual repair)."""
        entry = self.registry.get(host_id)
        return entry.supervisor.reset_quarantine(
            entry.host, entry.host.clock.now
        )

    # ------------------------------------------------------------------
    # the tick loop

    def tick(self) -> None:
        """Advance the fleet by one simulated tick."""
        self.tick_index += 1
        for entry in self.registry.values():
            if entry.wedged:
                if entry.wedged_until_tick > self.tick_index:
                    continue
                entry.wedged_until_tick = 0
            self._catch_up(entry)
            self._maybe_spool(entry)
        if self.active is not None:
            self.active.advance(self.registry, self.now)
            if self.active.done:
                if self.active.result.status == "succeeded":
                    self.committed_spec = self.active.spec
                self.results.append(self.active.result)
                self.active = None
        if self.active is None and self.queue and not self.frozen:
            self.active = self.queue.pop(0)
            self.active.start(self.registry, self.now)

    def run_ticks(self, n: int) -> None:
        for _ in range(n):
            self.tick()

    def _catch_up(self, entry: HostEntry) -> None:
        """Step the host to the engine's tick target for it."""
        target = self.tick_index - entry.registered_tick
        while entry.host.tick_count < target:
            entry.host.step()

    def _maybe_spool(self, entry: HostEntry) -> None:
        if self._spool_every_ticks is None or entry.spool_path is None:
            return
        if entry.host.tick_count % self._spool_every_ticks == 0:
            spool_snapshot(entry.host, entry.spool_path)
            entry.spool_generation = entry.generation

    # ------------------------------------------------------------------
    # chaos seams: host-level faults

    def crash_host(self, host_id: str) -> bool:
        """Kill a host's worker and recover it (the fleetres path).

        The latest valid spool is restored and the missed ticks
        replayed; without one the host rebuilds from scratch and
        replays its whole life. Either way the recovered host must end
        on the registry's policy generation: a spool taken before the
        current generation was applied restores a *stale* controller,
        which is immediately replaced with a fresh instance of the
        generation's policy — convergence beats preserving a dead
        host's mid-rollout state. Returns True when the recovery came
        from a spool.
        """
        entry = self.registry.get(host_id)
        restored = (
            load_spooled_snapshot(entry.spool_path)
            if entry.spool_path is not None else None
        )
        from_spool = restored is not None
        stale_generation = (
            from_spool and entry.spool_generation != entry.generation
        )
        if restored is None:
            restored = build_fleetd_host(
                self.config.base_config,
                self.config.seed,
                entry.host_id,
                entry.app,
                entry.spec,
                self.config.supervisor,
                size_scale=entry.size_scale,
                include_tax=entry.include_tax,
            )
        entry.host = restored
        entry.supervisor = self._find_supervisor(restored)
        if stale_generation:
            entry.supervisor.replace_controller(
                build_controller(entry.spec)
            )
        entry.wedged_until_tick = 0
        self._catch_up(entry)
        if stale_generation:
            entry.host.metrics.record(
                "fleetd/generation",
                entry.host.clock.now,
                float(entry.generation),
            )
        self.recoveries[host_id] = self.recoveries.get(host_id, 0) + 1
        return from_spool

    def wedge_host(self, host_id: str, duration_s: float) -> None:
        """Hang a host's worker for ``duration_s`` of engine time.

        The host stops ticking (its metric series go silent — a
        mid-soak wedge trips the health gate's no-samples check) and
        catches the missed ticks up once the wedge lifts.
        """
        entry = self.registry.get(host_id)
        tick_s = self.config.base_config.tick_s
        ticks = max(1, int(round(duration_s / tick_s)))
        entry.wedged_until_tick = self.tick_index + ticks

    # ------------------------------------------------------------------
    # observability

    def fleet_rollup(self, window_s: float = 60.0) -> FleetRollup:
        """Read-only host → region → fleet rollup (``metrics`` verb).

        Digest-neutral by construction: every lookup rides the
        recorder's non-registering path, so calling this N times
        leaves :meth:`fleet_digest` byte-identical to never calling it.
        """
        return RollupEngine(self).fleet_rollup(window_s)

    def top_hosts(
        self, signal: str, n: int = 5, window_s: float = 60.0
    ) -> Dict[str, Any]:
        """Rank hosts by a rollup signal (``top`` verb); read-only."""
        return RollupEngine(self).top(signal, n=n, window_s=window_s)

    def fleet_digest(self) -> str:
        """SHA-256 over every host's metric digest, order-independent."""
        lines = sorted(
            f"{entry.host_id} {metrics_digest(entry.host.metrics)}"
            for entry in self.registry.values()
        )
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def status(self) -> Dict[str, Any]:
        """JSON-clean control-plane status document."""
        return {
            "now_s": self.now,
            "tick": self.tick_index,
            "frozen": self.frozen,
            "committed_policy": self.committed_spec.to_json(),
            "hosts": [
                entry.status() for entry in self.registry.values()
            ],
            "active_rollout": (
                self.active.result.to_json()
                if self.active is not None else None
            ),
            "queued_rollouts": [
                r.result.rollout_id for r in self.queue
            ],
            "completed_rollouts": [r.to_json() for r in self.results],
            "recoveries": dict(self.recoveries),
        }
