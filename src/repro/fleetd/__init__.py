"""``repro.fleetd``: the fleet control-plane daemon.

TMO is not a batch job at Meta — it is a fleet service whose
per-application offloading policies are tuned and redeployed across
millions of running servers without restarting them (paper Section 6).
This package is that production shape for the reproduction:

* :mod:`repro.fleetd.engine` — the deterministic control-plane core: a
  registry of supervised, long-running hosts that can be registered and
  deregistered while the fleet ticks, with periodic snapshot spooling
  and crash recovery through the :mod:`repro.core.fleetres` path;
* :mod:`repro.fleetd.policy` — JSON-clean policy specifications
  (Senpai / AutoTuneSenpai / g-swap) that can be built into live
  controllers and swapped without restarting the host;
* :mod:`repro.fleetd.rollout` — the guarded rollout engine: staged
  canary waves, each watched by a health gate against the pre-rollout
  baseline, with automatic rollback of the canary hosts' controller
  state (via the :mod:`repro.checkpoint` codec) when a gate trips, and
  a fleet-wide kill switch;
* :mod:`repro.fleetd.health` — streaming per-host metric rollups (PSI,
  refaults, OOM kills, breaker state, supervisor quarantine) and the
  gate evaluation;
* :mod:`repro.fleetd.rollup` — the read-only query surface: fixed-size
  mergeable host → region → fleet signal summaries behind the
  ``metrics``/``top`` verbs, built entirely on non-registering metric
  reads so querying a live fleet never perturbs its digests
  (query-twice == query-never, asserted by ``chaos --fleetd``);
* :mod:`repro.fleetd.server` / :mod:`repro.fleetd.client` — the socket
  control surface (newline-delimited JSON over a Unix domain socket)
  and its client, driven by the ``repro fleetd`` CLI verbs;
* :mod:`repro.fleetd.chaos` — ``chaos --fleetd``: seeded rollout storms
  under injected controller/host faults with a graceful-degradation
  verdict (no host on a mixed policy generation, kill switch always
  wins, deterministic digests per seed).

See docs/RESILIENCE.md, "Control plane".
"""

from repro.fleetd.engine import FleetdConfig, FleetdEngine
from repro.fleetd.health import HealthGateConfig, HealthSample
from repro.fleetd.policy import PolicySpec, build_controller
from repro.fleetd.rollout import RolloutConfig, RolloutResult
from repro.fleetd.rollup import (
    FleetRollup,
    HostRollup,
    RegionRollup,
    RollupEngine,
    SignalSummary,
)

__all__ = [
    "FleetdConfig",
    "FleetdEngine",
    "FleetRollup",
    "HealthGateConfig",
    "HealthSample",
    "HostRollup",
    "PolicySpec",
    "build_controller",
    "RegionRollup",
    "RolloutConfig",
    "RolloutResult",
    "RollupEngine",
    "SignalSummary",
]
