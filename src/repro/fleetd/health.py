"""Per-host health rollups and the rollout health gate.

The gate's job during a guarded rollout (docs/RESILIENCE.md, "Control
plane"): after a wave of hosts switches to the candidate policy, watch
each wave host's streaming metrics over a soak window and compare them
to the same host's *pre-rollout baseline*. A policy that spikes
pressure, storms refaults, OOM-kills containers, trips the swap
circuit breaker, or quarantines its controller fails the gate, and the
rollout engine rolls the wave back automatically.

All signals come from the host's own :class:`~repro.sim.metrics`
series — the same streams the chaos verdicts digest — so the gate is
deterministic and replayable: two runs with the same seed see the same
samples and reach the same verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class HealthSample:
    """One host's metric rollup over a time window.

    All reads are **non-registering** (:meth:`MetricsRecorder.get` /
    ``read_window``): sampling a host's health never creates phantom
    series for names the host has not recorded (a gswap host has no
    ``senpai/degraded``), so health queries are digest-neutral.

    Attributes:
        psi_mem_some: mean memory ``some`` avg10 of the app container.
        psi_io_some: mean io ``some`` avg10 of the app container.
        refault_rate: mean file refaults/s of the app container.
        oom_kills: OOM events of the app container inside the window.
        breaker_open: the swap circuit breaker left the closed state
            inside the window (``senpai/degraded`` > 0).
        quarantined: the host's supervised controller was quarantined
            inside the window (``supervisor/quarantined`` edge seen) or
            is quarantined now.
        samples: total metric samples backing the rollup; 0 means
            the window saw no data at all and the rollup is
            meaningless.
        psi_mem_samples / psi_io_samples / refault_samples: per-signal
            sample counts, so a window with only refault data cannot
            masquerade as "has PSI data" (the pooled ``samples`` used
            to hide exactly that). ``None`` means "not tracked" —
            hand-built samples in tests and defaults skip the
            per-signal gate check.
    """

    psi_mem_some: float = 0.0
    psi_io_some: float = 0.0
    refault_rate: float = 0.0
    oom_kills: int = 0
    breaker_open: bool = False
    quarantined: bool = False
    samples: int = 0
    psi_mem_samples: Optional[int] = None
    psi_io_samples: Optional[int] = None
    refault_samples: Optional[int] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "psi_mem_some": self.psi_mem_some,
            "psi_io_some": self.psi_io_some,
            "refault_rate": self.refault_rate,
            "oom_kills": self.oom_kills,
            "breaker_open": self.breaker_open,
            "quarantined": self.quarantined,
            "samples": self.samples,
            "psi_mem_samples": self.psi_mem_samples,
            "psi_io_samples": self.psi_io_samples,
            "refault_samples": self.refault_samples,
        }


@dataclass(frozen=True)
class HealthGateConfig:
    """Gate thresholds: observed-vs-baseline tolerances per signal.

    A ratio-style signal passes while::

        observed <= max(floor, baseline * mult)

    so quiet fleets (baseline ~0) are judged against the absolute floor
    and loaded fleets against a multiple of their own baseline.

    The default floors are anchored to Senpai's own control targets: a
    policy is unhealthy when it pushes mean pressure past the avg10
    level Senpai deliberately regulates toward
    (``SenpaiConfig.psi_threshold``, 0.001), with io given 2x slack
    because reclaim traffic shares the filesystem device.

    Attributes:
        psi_mult / psi_floor: memory-pressure tolerance.
        io_mult / io_floor: io-pressure tolerance.
        refault_mult / refault_floor: refault-rate tolerance.
        max_new_ooms: OOM kills tolerated inside the soak window.
        allow_breaker_open: whether an open swap breaker passes.
        allow_quarantine: whether a quarantined controller passes.
    """

    psi_mult: float = 3.0
    psi_floor: float = 0.001
    io_mult: float = 3.0
    io_floor: float = 0.002
    refault_mult: float = 4.0
    refault_floor: float = 0.5
    max_new_ooms: int = 0
    allow_breaker_open: bool = False
    allow_quarantine: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "psi_mult": self.psi_mult,
            "psi_floor": self.psi_floor,
            "io_mult": self.io_mult,
            "io_floor": self.io_floor,
            "refault_mult": self.refault_mult,
            "refault_floor": self.refault_floor,
            "max_new_ooms": self.max_new_ooms,
            "allow_breaker_open": self.allow_breaker_open,
            "allow_quarantine": self.allow_quarantine,
        }


def _window_mean(host, name: str, t0: float, t1: float) -> Tuple[float, int]:
    # Non-registering read: an unrecorded name must not create a
    # phantom series and mutate the host's metrics digest.
    window = host.metrics.read_window(name, t0, t1)
    n = len(window)
    return (window.mean() if n else 0.0), n


def sample_host(host, cgroup: str, t0: float, t1: float,
                quarantined_now: bool = False) -> HealthSample:
    """Roll one host's metrics up over ``[t0, t1)``.

    Read-only: every lookup goes through the recorder's non-registering
    path, so sampling a host twice leaves its metrics digest
    byte-identical to never sampling it.

    ``quarantined_now`` folds in live supervisor state, so a host whose
    controller died before the window still reads as quarantined.
    """
    psi_mem, n_mem = _window_mean(
        host, f"{cgroup}/psi_mem_some_avg10", t0, t1
    )
    psi_io, n_io = _window_mean(
        host, f"{cgroup}/psi_io_some_avg10", t0, t1
    )
    refaults, n_ref = _window_mean(host, f"{cgroup}/refaults", t0, t1)
    oom = host.metrics.read_window(f"{cgroup}/oom", t0, t1)
    degraded = host.metrics.read_window("senpai/degraded", t0, t1)
    quarantine_edges = host.metrics.read_window(
        "supervisor/quarantined", t0, t1
    )
    return HealthSample(
        psi_mem_some=psi_mem,
        psi_io_some=psi_io,
        refault_rate=refaults,
        oom_kills=int(sum(oom.values)),
        breaker_open=bool(len(degraded) and degraded.max() > 0.0),
        quarantined=bool(len(quarantine_edges)) or quarantined_now,
        samples=n_mem + n_io + n_ref,
        psi_mem_samples=n_mem,
        psi_io_samples=n_io,
        refault_samples=n_ref,
    )


@dataclass
class GateVerdict:
    """One host's gate decision: observed-vs-baseline, with reasons."""

    host_id: str
    passed: bool
    reasons: Tuple[str, ...] = ()
    baseline: HealthSample = field(default_factory=HealthSample)
    observed: HealthSample = field(default_factory=HealthSample)

    def to_json(self) -> Dict[str, object]:
        return {
            "host_id": self.host_id,
            "passed": self.passed,
            "reasons": list(self.reasons),
            "baseline": self.baseline.to_json(),
            "observed": self.observed.to_json(),
        }


def evaluate_gate(
    host_id: str,
    baseline: HealthSample,
    observed: HealthSample,
    config: HealthGateConfig,
) -> GateVerdict:
    """Judge one wave host's soak window against its baseline."""
    reasons: List[str] = []
    if observed.samples == 0:
        reasons.append("no metric samples in the soak window")
    else:
        # Per-signal starvation: the pooled count above cannot see a
        # window where, say, only refaults arrived — the gate would
        # then judge pressure against a fabricated 0.0 mean. Name the
        # starved signal instead of trusting the fabricated value.
        for label, count in (
            ("psi_mem_some", observed.psi_mem_samples),
            ("psi_io_some", observed.psi_io_samples),
            ("refault_rate", observed.refault_samples),
        ):
            if count == 0:
                reasons.append(
                    f"no {label} samples in the soak window (its 0.0 "
                    "mean is fabricated, not observed)"
                )

    def ratio_check(name: str, base: float, seen: float,
                    mult: float, floor: float) -> None:
        limit = max(floor, base * mult)
        if seen > limit:
            reasons.append(
                f"{name} {seen:.4g} > limit {limit:.4g} "
                f"(baseline {base:.4g})"
            )

    ratio_check("psi_mem_some", baseline.psi_mem_some,
                observed.psi_mem_some, config.psi_mult, config.psi_floor)
    ratio_check("psi_io_some", baseline.psi_io_some,
                observed.psi_io_some, config.io_mult, config.io_floor)
    ratio_check("refault_rate", baseline.refault_rate,
                observed.refault_rate, config.refault_mult,
                config.refault_floor)
    if observed.oom_kills > config.max_new_ooms:
        reasons.append(
            f"{observed.oom_kills} OOM kill(s) in the soak window "
            f"(allowed {config.max_new_ooms})"
        )
    if observed.breaker_open and not config.allow_breaker_open:
        reasons.append("swap circuit breaker opened")
    if observed.quarantined and not config.allow_quarantine:
        reasons.append("supervised controller quarantined")
    return GateVerdict(
        host_id=host_id,
        passed=not reasons,
        reasons=tuple(reasons),
        baseline=baseline,
        observed=observed,
    )
