PYTHON ?= python
export PYTHONPATH := src

.PHONY: install test chaos fleet-chaos fleetd-chaos fleetd-smoke crash-equivalence bench bench-quick bench-pytest bench-tables examples docs lint profile all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The CI seed sweep: deterministic fault storms under full invariant
# checking (see docs/RESILIENCE.md). Seeds mirror
# tests/test_faults_chaos.py::CI_SEEDS.
chaos:
	TMO_CHECK_INVARIANTS=1 $(PYTHON) -m repro chaos --seeds 1 2 3 4 5

# Fleet-scale storms: parallel rollouts under seed-derived worker
# crash/hang/slowdown faults; the recovered fleet's merged digest must
# equal the fault-free control's (docs/RESILIENCE.md, "Fleet
# recovery"). Seeds mirror the CI fleet-chaos job.
fleet-chaos:
	TMO_CHECK_INVARIANTS=1 $(PYTHON) -m repro chaos --fleet --seeds 1 2 3

# Control-plane storms: guarded rollouts under controller/worker
# faults through the fleetd engine — every host must end on a single
# policy, the kill switch must always win, and each seed's outcome
# digest must be deterministic (docs/RESILIENCE.md, "Control plane").
# Seeds mirror the CI fleetd-smoke job.
fleetd-chaos:
	TMO_CHECK_INVARIANTS=1 $(PYTHON) -m repro chaos --fleetd --seeds 1 2 3

# Control-plane smoke: boot the fleetd daemon, register three hosts,
# run one passing rollout and one the health gate must trip and
# auto-roll-back, then shut down cleanly. Leaves the RolloutResult
# envelopes (fleetd-rollout-*.json) behind; CI uploads them.
fleetd-smoke:
	$(PYTHON) examples/fleetd_smoke.py

# Checkpoint -> kill -> restore -> continue must be digest-identical
# to never having crashed (docs/RESILIENCE.md, "Recovery"). The seed
# sweep fans out over worker processes; equivalence must hold there too.
crash-equivalence:
	TMO_CHECK_INVARIANTS=1 $(PYTHON) -m repro crash-equivalence --seeds 1 2 3 --workers 3

# ruff and mypy run only when installed (they are optional, see
# [project.optional-dependencies].lint); repro.lint always runs and
# is the gating check.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		echo "== ruff"; ruff check src benchmarks examples tests; \
	else \
		echo "== ruff not installed, skipping (pip install -e .[lint])"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		echo "== mypy"; mypy; \
	else \
		echo "== mypy not installed, skipping (pip install -e .[lint])"; \
	fi
	@echo "== repro.lint"
	$(PYTHON) -m repro.lint --flow --stats lint-stats.json

# Profile-guided hot-path lint (docs/LINTING.md, "Hot paths"): write
# the per-function tick-share profile of the warmed microbench, then
# check it against the static hot region — findings in measured-hot
# functions escalate, and measured-hot functions the call graph cannot
# reach fail the run.
profile:
	$(PYTHON) -m repro bench --profile
	$(PYTHON) -m repro.lint --flow --profile BENCH_profile.json

# The benchmark harness (docs/PERFORMANCE.md): run the scenario
# matrix, write BENCH_5.json and gate against the committed baseline's
# normalized scores (>20% drop fails).
bench:
	$(PYTHON) -m repro bench --out BENCH_5.json --check benchmarks/BENCH_baseline.json

# Smoke variant for quick local runs; too noisy to gate or commit.
bench-quick:
	$(PYTHON) -m repro bench --quick --out BENCH_5.json

# The pytest-benchmark microbenches (figure tables + timings).
bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Print every figure/table the benches regenerate (no timing).
bench-tables:
	$(PYTHON) -m pytest benchmarks/ -q -s --benchmark-disable

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

docs:
	$(PYTHON) docs/gen_api.py

all: install test lint bench
