PYTHON ?= python

.PHONY: install test bench bench-tables examples docs all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Print every figure/table the benches regenerate (no timing).
bench-tables:
	$(PYTHON) -m pytest benchmarks/ -q -s --benchmark-disable

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

docs:
	$(PYTHON) docs/gen_api.py

all: install test bench
