"""Unit tests for the A/B harness."""

import math

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.sim.ab import ABTest
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile() -> AppProfile:
    return AppProfile(
        name="app",
        size_gb=400 * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.3, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def build(seed=5, with_senpai=False):
    host = small_host(ram_gb=1.0, backend="zswap", seed=seed)
    host.add_workload(Workload, profile=profile(), name="app")
    if with_senpai:
        host.add_controller(
            Senpai(SenpaiConfig(reclaim_ratio=0.003, max_step_frac=0.02))
        )
    return host


def test_seed_mismatch_rejected():
    ab = ABTest(control=lambda: build(seed=1),
                treatment=lambda: build(seed=2))
    with pytest.raises(ValueError):
        ab.run(10.0)


def test_identical_arms_show_zero_delta():
    ab = ABTest(control=build, treatment=build)
    report = ab.run(120.0)
    delta = report.compare("app/resident_bytes")
    assert delta.delta == 0.0
    assert delta.delta_frac == 0.0


def test_treatment_effect_is_visible():
    ab = ABTest(
        control=lambda: build(with_senpai=False),
        treatment=lambda: build(with_senpai=True),
    )
    report = ab.run(600.0)
    delta = report.compare("app/resident_bytes", window=(300.0, 600.0))
    # Senpai shrank the treatment arm's resident set.
    assert delta.delta < 0
    assert delta.delta_frac < -0.01


def test_compare_unknown_series_raises():
    ab = ABTest(control=build, treatment=build)
    report = ab.run(10.0)
    with pytest.raises(KeyError):
        report.compare("nope/metric")


def test_delta_frac_nan_on_zero_control():
    ab = ABTest(
        control=lambda: build(with_senpai=False),
        treatment=lambda: build(with_senpai=True),
    )
    report = ab.run(60.0)
    delta = report.compare("app/zswap_bytes")  # control never offloads
    assert math.isnan(delta.delta_frac)
    assert delta.treatment_mean >= 0.0
